//! Ablation: count-weighted direct sampling vs rejection sampling.
//!
//! The direct sampler pays one exact counting pass up front and then draws
//! exactly-uniform survivors in O(depth) per draw with zero rejections; the
//! rejection sampler walks the plan and retries whenever a constraint
//! rejects the partial tuple. This benchmark first asserts the property the
//! ablation is meaningless without — every point either sampler produces is
//! a true survivor under an independent re-evaluation — and then times
//! draws/second for both on two GEMM space sizes, asserting the direct
//! sampler's advantage on the thin reduced(16) space (survival ≈ 2.2e-7)
//! before recording the medians into BENCH_sweep.json.

use criterion::{criterion_group, criterion_main, Criterion};

use beast_core::ir::{LStep, LoweredPlan};
use beast_core::plan::{Plan, PlanOptions};
use beast_engine::point::Point;
use beast_gemm::{build_gemm_space, GemmSpaceParams};
use beast_search::{DirectSampler, Sampler};
use rand::rngs::StdRng;
use rand::SeedableRng;

const DIMS: [i64; 2] = [16, 32];
/// Points each sampler must prove valid before any timing.
const VALIDATED: usize = 200;
/// Draws per timed round.
const TIMED: usize = 200;
/// Interleaved rounds per configuration (median reported).
const ROUNDS: usize = 5;

fn lower(dim: i64) -> LoweredPlan {
    let space = build_gemm_space(&GemmSpaceParams::reduced(dim)).unwrap();
    let plan = Plan::new(&space, PlanOptions::default()).unwrap();
    LoweredPlan::new(&plan).unwrap()
}

/// Iterator `(slot, value)` pairs of a sampled point, for re-validation.
fn iter_assignment(lp: &LoweredPlan, p: &Point) -> Vec<(u32, i64)> {
    lp.steps
        .iter()
        .filter_map(|s| match s {
            LStep::Bind { slot, .. } => Some((*slot, p.get_int(&lp.slot_names[*slot as usize]))),
            _ => None,
        })
        .collect()
}

fn median(mut s: Vec<f64>) -> f64 {
    s.sort_by(f64::total_cmp);
    s[s.len() / 2]
}

fn bench(c: &mut Criterion) {
    let mut record = String::from("\n{\"sampling_ablation\":{");
    for dim in DIMS {
        let lp = lower(dim);
        let mut direct = DirectSampler::new(&lp, StdRng::seed_from_u64(1)).unwrap();
        let mut rejection = Sampler::new(&lp, StdRng::seed_from_u64(1));
        let mut validator = Sampler::new(&lp, StdRng::seed_from_u64(0));

        // --- Validity first: both samplers must produce true survivors. ---
        for i in 0..VALIDATED {
            let p = direct.sample().unwrap().expect("space is nonempty");
            assert!(
                validator.evaluate_assignment(&iter_assignment(&lp, &p)).unwrap().is_some(),
                "reduced({dim}): direct draw {i} is not a survivor"
            );
            let p = rejection.sample(1_000_000).unwrap().expect("space is nonempty");
            assert!(
                validator.evaluate_assignment(&iter_assignment(&lp, &p)).unwrap().is_some(),
                "reduced({dim}): rejection draw {i} is not a survivor"
            );
        }
        assert_eq!(direct.stats.rejected, 0, "direct sampling must never reject");
        assert_eq!(direct.stats.dead_ends, 0, "direct sampling must never dead-end");
        eprintln!(
            "gemm reduced({dim}): {VALIDATED} draws/sampler validated; direct total {} \
             survivors, rejection discarded {} walks on the way",
            direct.total(),
            rejection.stats.rejected + rejection.stats.dead_ends,
        );

        // --- Interleaved samples/sec medians. ------------------------------
        let mut direct_s = Vec::new();
        let mut rejection_s = Vec::new();
        for _ in 0..ROUNDS {
            let start = std::time::Instant::now();
            for _ in 0..TIMED {
                direct.sample().unwrap().unwrap();
            }
            direct_s.push(start.elapsed().as_secs_f64());
            let start = std::time::Instant::now();
            for _ in 0..TIMED {
                rejection.sample(1_000_000).unwrap().unwrap();
            }
            rejection_s.push(start.elapsed().as_secs_f64());
        }
        let direct_sps = TIMED as f64 / median(direct_s);
        let rejection_sps = TIMED as f64 / median(rejection_s);
        let speedup = direct_sps / rejection_sps;
        eprintln!(
            "gemm reduced({dim}): direct {direct_sps:.0} samples/s, rejection \
             {rejection_sps:.0} samples/s ({speedup:.1}x)"
        );
        if dim == 16 {
            assert!(
                speedup >= 10.0,
                "direct sampling below the 10x bar on reduced(16): {speedup:.1}x"
            );
        }
        if dim != DIMS[0] {
            record.push(',');
        }
        record.push_str(&format!(
            "\"gemm_reduced{dim}_direct_sps\":{direct_sps:.1},\
             \"gemm_reduced{dim}_rejection_sps\":{rejection_sps:.1},\
             \"gemm_reduced{dim}_speedup\":{speedup:.3}"
        ));

        let mut group = c.benchmark_group(format!("ablation_sampling_{dim}"));
        group.sample_size(10);
        group.bench_function("direct", |b| {
            b.iter(|| direct.sample().unwrap().unwrap());
        });
        group.bench_function("rejection", |b| {
            b.iter(|| rejection.sample(1_000_000).unwrap().unwrap());
        });
        group.finish();
    }

    // --- Median record appended to BENCH_sweep.json. ----------------------
    record.push_str("}}");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    match std::fs::OpenOptions::new().append(true).open(path) {
        Ok(mut f) => {
            use std::io::Write as _;
            if let Err(e) = f.write_all(record.as_bytes()) {
                eprintln!("cannot append to {path}: {e}");
            } else {
                eprintln!("appended sampling_ablation record to {path}");
            }
        }
        Err(e) => {
            eprintln!("{path} not found ({e}); run the gemm_sweep bench first to create it")
        }
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
