//! Ablation: the compiled engine's interval-based block pruning on vs off.
//!
//! The per-point engine already benefits from the paper's DAG hoisting; the
//! interval guards go one step further and cut whole loop subtrees whose
//! hoisted constraints are statically decided over the subdomain. This
//! benchmark runs the full GEMM sweep both ways and — before timing —
//! asserts the invariant the optimization is sold on: identical survivor
//! counts *and identical visit order* with intervals on and off, with a
//! nonzero number of subtrees actually skipped.

use criterion::{criterion_group, criterion_main, Criterion};

use beast_core::ir::LoweredPlan;
use beast_core::plan::{Plan, PlanOptions};
use beast_engine::compiled::{Compiled, EngineOptions};
use beast_engine::point::PointRef;
use beast_engine::visit::{CountVisitor, Visitor};
use beast_gemm::{build_gemm_space, GemmSpaceParams};

const DIM: i64 = 16;

/// Order-sensitive survivor fingerprint: an FNV-style rolling hash over the
/// visited points *in order*, so two sweeps agree only if they visit the
/// same survivors in the same sequence.
#[derive(Default)]
struct OrderHashVisitor {
    count: u64,
    hash: u64,
}

impl Visitor for OrderHashVisitor {
    fn visit(&mut self, point: &PointRef<'_>) {
        self.count += 1;
        for i in 0..point.names().len() {
            let v = point.value(i).as_int().unwrap() as u64;
            self.hash = (self.hash ^ v).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn merge(&mut self, other: Self) {
        // Chunk merges happen in chunk order, so folding the partial hash
        // keeps the fingerprint order-sensitive.
        self.count += other.count;
        self.hash = (self.hash ^ other.hash).wrapping_mul(0x0000_0100_0000_01b3);
    }
}

fn bench(c: &mut Criterion) {
    let params = GemmSpaceParams::reduced(DIM);
    let space = build_gemm_space(&params).unwrap();
    let plan = Plan::new(&space, PlanOptions::default()).unwrap();
    let lp = LoweredPlan::new(&plan).unwrap();

    let on = Compiled::new(lp.clone());
    let off = Compiled::with_options(lp.clone(), EngineOptions::no_intervals());

    // The ablation changes cost only: same survivors, same visit order.
    let a = on.run(OrderHashVisitor::default()).unwrap();
    let b = off.run(OrderHashVisitor::default()).unwrap();
    assert_eq!(a.visitor.count, b.visitor.count, "intervals changed the survivor count");
    assert_eq!(a.visitor.hash, b.visitor.hash, "intervals changed the visit order");
    assert!(
        a.blocks.subtree_skips > 0,
        "interval guards decided nothing on the GEMM space — ablation is vacuous"
    );
    eprintln!(
        "gemm reduced({DIM}): {} survivors; intervals skipped {} subtrees (≈ {} points), elided {} checks",
        a.visitor.count, a.blocks.subtree_skips, a.blocks.points_skipped, a.blocks.checks_elided
    );

    let mut group = c.benchmark_group("ablation_intervals");
    group.sample_size(10);
    group.bench_function("intervals_on", |bench| {
        bench.iter(|| on.run(CountVisitor::default()).unwrap().visitor.count);
    });
    group.bench_function("intervals_off", |bench| {
        bench.iter(|| off.run(CountVisitor::default()).unwrap().visitor.count);
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
