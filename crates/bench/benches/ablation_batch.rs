//! Ablation: the compiled engine's batched lane tier (and the fused
//! superinstruction dispatch that rides with it) on vs off.
//!
//! The batch tier materializes each innermost realized domain into
//! fixed-width `i64` lane blocks and runs every slab-translatable postfix
//! program once per block instead of once per point, falling back per-lane
//! to the scalar interpreter wherever a fallible op makes slab results
//! untrustworthy. This benchmark runs the full GEMM sweep both ways and —
//! before timing — asserts the invariant the optimization is sold on:
//! identical survivor counts *and identical visit order* (order-sensitive
//! FNV fingerprint), serially and under the parallel scheduler at 1 and 8
//! threads, on two space sizes, with the slab path actually exercised when
//! the tier is on and completely silent when it is off.

use criterion::{criterion_group, criterion_main, Criterion};

use beast_core::ir::LoweredPlan;
use beast_core::plan::{Plan, PlanOptions};
use beast_engine::compiled::{Compiled, EngineOptions};
use beast_engine::parallel::{run_parallel_report, ParallelOptions};
use beast_engine::point::PointRef;
use beast_engine::stats::LaneStats;
use beast_engine::visit::{CountVisitor, Visitor};
use beast_gemm::{build_gemm_space, GemmSpaceParams};

const DIMS: [i64; 2] = [16, 32];
const THREAD_COUNTS: [usize; 2] = [1, 8];

/// Order-sensitive survivor fingerprint: an FNV-style rolling hash over the
/// visited points *in order*, so two sweeps agree only if they visit the
/// same survivors in the same sequence.
#[derive(Default)]
struct OrderHashVisitor {
    count: u64,
    hash: u64,
}

impl Visitor for OrderHashVisitor {
    fn visit(&mut self, point: &PointRef<'_>) {
        self.count += 1;
        for i in 0..point.names().len() {
            let v = point.value(i).as_int().unwrap() as u64;
            self.hash = (self.hash ^ v).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn merge(&mut self, other: Self) {
        // Chunk merges happen in chunk order, so folding the partial hash
        // keeps the fingerprint order-sensitive.
        self.count += other.count;
        self.hash = (self.hash ^ other.hash).wrapping_mul(0x0000_0100_0000_01b3);
    }
}

fn lower(dim: i64) -> LoweredPlan {
    let space = build_gemm_space(&GemmSpaceParams::reduced(dim)).unwrap();
    let plan = Plan::new(&space, PlanOptions::default()).unwrap();
    LoweredPlan::new(&plan).unwrap()
}

fn bench(c: &mut Criterion) {
    for dim in DIMS {
        let lp = lower(dim);
        let on = Compiled::new(lp.clone());
        let off = Compiled::with_options(lp.clone(), EngineOptions::no_batch());

        // The ablation changes cost only: same survivors, same visit order,
        // same pruning statistics — and the lane counters prove which tier
        // actually ran.
        let a = on.run(OrderHashVisitor::default()).unwrap();
        let b = off.run(OrderHashVisitor::default()).unwrap();
        assert_eq!(
            a.visitor.count, b.visitor.count,
            "reduced({dim}): batching changed the survivor count"
        );
        assert_eq!(
            a.visitor.hash, b.visitor.hash,
            "reduced({dim}): batching changed the visit order"
        );
        assert_eq!(a.stats, b.stats, "reduced({dim}): batching changed PruneStats");
        assert!(
            a.lanes.lane_evals > 0,
            "reduced({dim}): the slab path never ran — ablation is vacuous"
        );
        assert_eq!(
            b.lanes,
            LaneStats::default(),
            "reduced({dim}): batch-off run counted lane activity"
        );

        // The parallel scheduler must reproduce the same fingerprint with
        // the tier on and off at every thread count. (The merged hash folds
        // per-chunk partials, so it is only comparable between runs with
        // the same chunk grid — on vs off at one thread count, which is
        // exactly the ablation axis.)
        for threads in THREAD_COUNTS {
            let mut fingerprints = Vec::new();
            for (mode, engine) in
                [("on", EngineOptions::default()), ("off", EngineOptions::no_batch())]
            {
                let opts = ParallelOptions { threads, engine, ..ParallelOptions::default() };
                let (par, report) =
                    run_parallel_report(&lp, &opts, OrderHashVisitor::default).unwrap();
                assert_eq!(
                    par.visitor.count, a.visitor.count,
                    "reduced({dim}): batch-{mode} survivor count diverged at {threads} threads"
                );
                fingerprints.push(par.visitor.hash);
                if mode == "on" {
                    assert!(
                        report.lanes.lane_evals > 0,
                        "reduced({dim}): parallel slab path never ran at {threads} threads"
                    );
                } else {
                    assert_eq!(
                        report.lanes,
                        LaneStats::default(),
                        "reduced({dim}): parallel batch-off counted lanes at {threads} threads"
                    );
                }
            }
            assert_eq!(
                fingerprints[0], fingerprints[1],
                "reduced({dim}): batch on/off fingerprints diverged at {threads} threads"
            );
        }

        eprintln!(
            "gemm reduced({dim}): {} survivors; batch tier ran {} lane evals, \
             {} tail lanes masked, {} scalar fallbacks, {} superinstruction hits",
            a.visitor.count,
            a.lanes.lane_evals,
            a.lanes.lanes_masked,
            a.lanes.scalar_fallbacks,
            a.lanes.total_super_hits()
        );

        let mut group = c.benchmark_group(format!("ablation_batch_{dim}"));
        group.sample_size(10);
        group.bench_function("batch_on", |bench| {
            bench.iter(|| on.run(CountVisitor::default()).unwrap().visitor.count);
        });
        group.bench_function("batch_off", |bench| {
            bench.iter(|| off.run(CountVisitor::default()).unwrap().visitor.count);
        });
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
