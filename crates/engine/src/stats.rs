//! Pruning statistics: how much of the search space each constraint removes.
//!
//! The paper motivates aggressive pruning ("sometimes by as much as 99%",
//! Section VI) and reports the GEMM sweep counts; the companion work \[7\]
//! visualizes how constraints carve the space. This module records, per
//! constraint, how many tuples it evaluated and how many it rejected, and
//! renders a textual pruning funnel.

use std::fmt::Write as _;

use beast_core::constraint::ConstraintClass;
use beast_core::space::Space;

use crate::fault::{FaultAction, FaultKind, FaultRecord};

/// Per-constraint pruning counters for one sweep.
///
/// The per-constraint split depends on *check order*: within a run of
/// checks, the first rejecting constraint gets the kill credit and later
/// ones are never evaluated for that tuple. Under non-declared constraint
/// scheduling ([`crate::compiled::EngineOptions::schedule`]) the engine
/// reorders reorder-safe runs, so `evaluated`/`pruned` shift between the
/// members of a group — while `survivors`, `total_pruned()` and the visit
/// order stay bit-for-bit identical.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Times each constraint was evaluated (indexed like
    /// [`Space::constraints`]).
    pub evaluated: Vec<u64>,
    /// Times each constraint rejected the current tuple.
    pub pruned: Vec<u64>,
    /// Number of surviving points.
    pub survivors: u64,
}

/// Counters for the interval-based block pruner (subtree skips and check
/// elisions). Kept separate from [`PruneStats`] so the per-constraint
/// funnel stays directly comparable across backends that do not block-prune
/// (walker, VM, generated code): elided checks are still *counted* as
/// evaluated-and-passed in `PruneStats`, and only genuinely skipped
/// subtrees make `evaluated` totals diverge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockStats {
    /// Loop subtrees skipped because a constraint was statically false
    /// (always rejecting) over the remaining subdomain.
    pub subtree_skips: u64,
    /// Subset of `subtree_skips` decided only by the congruence half of
    /// the reduced product (the interval hull alone was inconclusive) —
    /// divisibility pruning.
    pub congruence_skips: u64,
    /// Lower-bound estimate of points never enumerated thanks to subtree
    /// skips: skipped domain length × statically known inner fanout.
    pub points_skipped: u64,
    /// Per-point check evaluations avoided because a constraint was
    /// statically true (never rejecting) over the remaining subdomain.
    pub checks_elided: u64,
}

impl BlockStats {
    /// Merge counters from another sweep chunk (parallel workers).
    pub fn merge(&mut self, other: &BlockStats) {
        self.subtree_skips += other.subtree_skips;
        self.congruence_skips += other.congruence_skips;
        self.points_skipped = self.points_skipped.saturating_add(other.points_skipped);
        self.checks_elided += other.checks_elided;
    }
}

/// Telemetry counters for the compiled engine's batched lane tier and the
/// fused superinstruction dispatch. Purely observational: survivors, visit
/// order, [`PruneStats`] and [`BlockStats`] are bit-identical with batching
/// on or off, so these counters only describe *how* the work was executed
/// (slab-evaluated lanes vs per-lane scalar fallbacks). Backends without
/// the tier — walker, VM, the compiled engine with `batch` off — report the
/// default (all-zero) value.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LaneStats {
    /// Lane-point evaluations performed by slab (batched) program runs:
    /// each slab evaluation of one postfix program over an `n`-lane block
    /// adds `n`.
    pub lane_evals: u64,
    /// Tail lanes masked off in partial blocks (domain length not a
    /// multiple of the lane width).
    pub lanes_masked: u64,
    /// Lanes routed back to the scalar path because a fallible op (zero
    /// divisor, overflow the slab cannot prove absent, or a jumpy
    /// program's evaluation error) made slab results untrustworthy for
    /// that lane.
    pub scalar_fallbacks: u64,
    /// Per-superinstruction execution counts, indexed by fused-op id in
    /// program order (empty when the program has no fused Define→Check
    /// pairs).
    pub super_hits: Vec<u64>,
}

impl LaneStats {
    /// Merge counters from another sweep chunk (parallel workers).
    pub fn merge(&mut self, other: &LaneStats) {
        self.lane_evals += other.lane_evals;
        self.lanes_masked += other.lanes_masked;
        self.scalar_fallbacks += other.scalar_fallbacks;
        if self.super_hits.len() < other.super_hits.len() {
            self.super_hits.resize(other.super_hits.len(), 0);
        }
        for (a, b) in self.super_hits.iter_mut().zip(&other.super_hits) {
            *a += b;
        }
    }

    /// Total fused-superinstruction executions across all fused ops.
    pub fn total_super_hits(&self) -> u64 {
        self.super_hits.iter().sum()
    }
}

/// Per-policy fault counters for one sweep, aggregated from the structured
/// [`FaultRecord`] list the supervisor collects. Like the other stats these
/// are deterministic for a pinned chunk grid, so they can be asserted in
/// tests and compared across thread counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Points dropped under [`FaultPolicy::SkipPoint`](crate::fault::FaultPolicy).
    pub points_skipped: u64,
    /// Chunks dropped (quarantine policy, escalated skip-point faults, or
    /// retries running out).
    pub chunks_quarantined: u64,
    /// Chunk attempts re-run under [`FaultPolicy::Retry`](crate::fault::FaultPolicy)
    /// (in-process) or re-dealt after a worker-process fault (distributed).
    pub retries: u64,
    /// Panics caught at the chunk boundary.
    pub panics: u64,
    /// Worker processes launched by the distributed supervisor, including
    /// replacements ([`crate::distribute`]; zero for in-process sweeps).
    pub workers_spawned: u64,
    /// Replacement workers spawned after a worker died, stalled, or lied.
    pub worker_restarts: u64,
    /// Shards re-dealt to another worker after a worker-level fault
    /// (the [`FaultKind::is_worker`] subset of `retries`).
    pub shards_retried: u64,
    /// Workers killed because their heartbeat/read deadline expired.
    pub heartbeat_timeouts: u64,
}

impl FaultCounters {
    /// Aggregate the counters from a record list. `workers_spawned` and
    /// `worker_restarts` describe supervisor activity rather than faults, so
    /// they are not derivable from records — the distributed supervisor sets
    /// them after this.
    pub fn from_records(records: &[FaultRecord]) -> FaultCounters {
        let mut c = FaultCounters::default();
        for r in records {
            match r.action {
                FaultAction::SkippedPoint => c.points_skipped += 1,
                FaultAction::QuarantinedChunk => c.chunks_quarantined += 1,
                FaultAction::Retried => c.retries += 1,
            }
            if r.kind == FaultKind::Panic {
                c.panics += 1;
            }
            if r.kind.is_worker() && r.action == FaultAction::Retried {
                c.shards_retried += 1;
            }
            if r.kind == FaultKind::WorkerTimeout {
                c.heartbeat_timeouts += 1;
            }
        }
        c
    }

    /// Total number of recorded faults this summarizes.
    pub fn total(&self) -> u64 {
        self.points_skipped + self.chunks_quarantined + self.retries
    }
}

impl PruneStats {
    /// Fresh counters for a space with `n_constraints` constraints.
    pub fn new(n_constraints: usize) -> PruneStats {
        PruneStats {
            evaluated: vec![0; n_constraints],
            pruned: vec![0; n_constraints],
            survivors: 0,
        }
    }

    /// Record one constraint evaluation.
    #[inline]
    pub fn record(&mut self, constraint: usize, rejected: bool) {
        self.evaluated[constraint] += 1;
        self.pruned[constraint] += u64::from(rejected);
    }

    /// Record one survivor.
    #[inline]
    pub fn record_survivor(&mut self) {
        self.survivors += 1;
    }

    /// Total rejections across all constraints.
    pub fn total_pruned(&self) -> u64 {
        self.pruned.iter().sum()
    }

    /// Merge counters from another sweep chunk (parallel workers).
    pub fn merge(&mut self, other: &PruneStats) {
        assert_eq!(self.evaluated.len(), other.evaluated.len());
        for (a, b) in self.evaluated.iter_mut().zip(&other.evaluated) {
            *a += b;
        }
        for (a, b) in self.pruned.iter_mut().zip(&other.pruned) {
            *a += b;
        }
        self.survivors += other.survivors;
    }

    /// Kill rate of constraint `i`: rejected / evaluated (0 when never run).
    pub fn kill_rate(&self, i: usize) -> f64 {
        if self.evaluated[i] == 0 {
            0.0
        } else {
            self.pruned[i] as f64 / self.evaluated[i] as f64
        }
    }

    /// Overall pruning fraction: rejections / (rejections + survivors).
    ///
    /// With hoisted constraints a single rejection removes many raw tuples,
    /// so this understates the raw-space pruning factor; it measures work
    /// actually done, which is the quantity the engines optimize.
    pub fn pruned_fraction(&self) -> f64 {
        let total = self.total_pruned() + self.survivors;
        if total == 0 {
            0.0
        } else {
            self.total_pruned() as f64 / total as f64
        }
    }

    /// Render the pruning funnel as a text table, one row per constraint in
    /// plan order, with class, evaluations, rejections and kill rate.
    pub fn render_funnel(&self, space: &Space) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<24} {:<12} {:>14} {:>14} {:>9}",
            "constraint", "class", "evaluated", "pruned", "kill%"
        );
        let _ = writeln!(out, "{}", "-".repeat(78));
        for (i, c) in space.constraints().iter().enumerate() {
            let _ = writeln!(
                out,
                "{:<24} {:<12} {:>14} {:>14} {:>8.2}%",
                c.name,
                c.class.to_string(),
                self.evaluated[i],
                self.pruned[i],
                100.0 * self.kill_rate(i)
            );
        }
        let _ = writeln!(out, "{}", "-".repeat(78));
        let _ = writeln!(
            out,
            "survivors: {}   rejected tuples: {}   pruned fraction: {:.2}%",
            self.survivors,
            self.total_pruned(),
            100.0 * self.pruned_fraction()
        );
        out
    }

    /// Totals per constraint class: (evaluated, pruned).
    pub fn per_class(&self, space: &Space) -> Vec<(ConstraintClass, u64, u64)> {
        let mut classes: Vec<(ConstraintClass, u64, u64)> = Vec::new();
        for (i, c) in space.constraints().iter().enumerate() {
            match classes.iter_mut().find(|(cl, _, _)| *cl == c.class) {
                Some((_, e, p)) => {
                    *e += self.evaluated[i];
                    *p += self.pruned[i];
                }
                None => classes.push((c.class, self.evaluated[i], self.pruned[i])),
            }
        }
        classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beast_core::expr::var;
    use beast_core::space::Space;

    #[test]
    fn record_and_rates() {
        let mut s = PruneStats::new(2);
        s.record(0, true);
        s.record(0, false);
        s.record(1, true);
        s.record_survivor();
        assert_eq!(s.evaluated, vec![2, 1]);
        assert_eq!(s.pruned, vec![1, 1]);
        assert_eq!(s.kill_rate(0), 0.5);
        assert_eq!(s.total_pruned(), 2);
        assert!((s.pruned_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = PruneStats::new(1);
        a.record(0, true);
        a.record_survivor();
        let mut b = PruneStats::new(1);
        b.record(0, false);
        b.record_survivor();
        a.merge(&b);
        assert_eq!(a.evaluated, vec![2]);
        assert_eq!(a.pruned, vec![1]);
        assert_eq!(a.survivors, 2);
    }

    #[test]
    fn funnel_renders_rows() {
        let space = Space::builder("f")
            .range("x", 0, 10)
            .constraint(
                "odd",
                ConstraintClass::Soft,
                (var("x") % 2).ne(0),
            )
            .build()
            .unwrap();
        let mut s = PruneStats::new(1);
        for x in 0..10 {
            s.record(0, x % 2 != 0);
            if x % 2 == 0 {
                s.record_survivor();
            }
        }
        let text = s.render_funnel(&space);
        assert!(text.contains("odd"));
        assert!(text.contains("soft"));
        assert!(text.contains("50.00%"));
        assert!(text.contains("survivors: 5"));
        let per_class = s.per_class(&space);
        assert_eq!(per_class, vec![(ConstraintClass::Soft, 10, 5)]);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = PruneStats::new(0);
        assert_eq!(s.total_pruned(), 0);
        assert_eq!(s.pruned_fraction(), 0.0);
    }
}
