//! # beast-engine
//!
//! Evaluation backends for `beast-core` search spaces, reproducing the
//! performance study of *"Search Space Generation and Pruning System for
//! Autotuners"* (IPDPSW 2016), Sections X–XI:
//!
//! | Backend | Paper analog | Cost model |
//! |---|---|---|
//! | [`walker::Walker`] | Python (Fig. 17) | AST interpretation, hash-map variable access, three loop syntaxes |
//! | [`vm::Vm`] | Lua (Fig. 18) | register bytecode, dispatch per op, three loop syntaxes |
//! | [`compiled::Compiled`] | generated C (Fig. 19) | folded constants, flat `i64` slots, native loop control |
//! | [`parallel::run_parallel`] | multithreaded generated C (Section X-B) | compiled backend, dynamically scheduled over level-0 chunks |
//!
//! All backends execute the *same* plan and produce identical survivors and
//! pruning statistics (cross-checked by integration tests); they differ only
//! in evaluation machinery, which is exactly the variable the paper measures.
//!
//! ```
//! use beast_core::prelude::*;
//! use beast_engine::prelude::*;
//!
//! let space = Space::builder("demo")
//!     .range("a", 1, 9)
//!     .range_step("b", var("a"), 17, var("a"))
//!     .constraint("odd", ConstraintClass::Soft, (var("b") % 2).ne(0))
//!     .build()
//!     .unwrap();
//! let plan = Plan::new(&space, PlanOptions::default()).unwrap();
//! let lowered = LoweredPlan::new(&plan).unwrap();
//!
//! let compiled = Compiled::new(lowered);
//! let out = compiled.run(CountVisitor::default()).unwrap();
//! assert!(out.visitor.count > 0);
//! println!("{}", out.stats.render_funnel(&space));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod checkpoint;
pub mod compiled;
pub mod distribute;
pub mod fault;
pub mod lanes;
pub mod native;
pub mod parallel;
pub mod point;
pub mod postfix;
pub mod service;
pub mod stats;
pub mod sweep;
pub mod telemetry;
pub mod visit;
pub mod viz;
pub mod vm;
pub mod walker;

/// Commonly used items, re-exported.
pub mod prelude {
    pub use crate::checkpoint::{run_checkpointed, CheckpointConfig, SaveState};
    pub use crate::compiled::{Compiled, EngineOptions, EngineTier};
    pub use crate::distribute::{
        run_distributed, run_distributed_checkpointed, serve_worker, DistributeOptions,
        WorkerChaos,
    };
    pub use crate::fault::{CancelToken, FaultInjector, FaultPolicy, FaultRecord};
    pub use crate::native::{NativeContext, NativeStats};
    pub use crate::parallel::{run_parallel, run_parallel_report, ParallelOptions};
    pub use crate::point::{Point, PointRef};
    pub use crate::service::cache::{run_cached, CacheStats, SweepCache};
    pub use crate::service::{ResolvedSpace, ServiceConfig, SpaceResolver, SweepService};
    pub use crate::stats::{BlockStats, FaultCounters, LaneStats, PruneStats};
    pub use crate::sweep::SweepError;
    pub use crate::telemetry::{SweepProgress, SweepReport};
    pub use crate::visit::{
        BestK, CollectVisitor, CountVisitor, FingerprintVisitor, Reservoir, Visitor,
    };
    pub use crate::vm::{Vm, VmStyle};
    pub use crate::walker::{LoopStyle, SweepOutcome, Walker};
}
