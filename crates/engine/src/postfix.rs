//! Postfix-compiled expressions: the compiled backend's answer to
//! pointer-chasing tree evaluation.
//!
//! The lowered IR ([`IntExpr`]) is a boxed tree; evaluating it recursively
//! costs a cache miss and a `Result` frame per node. For the compiled
//! engine — the stand-in for the paper's generated C — expressions are
//! instead flattened once into a dense postfix program evaluated over a
//! reusable stack, preserving exact semantics including the short-circuit
//! guards (`&&`/`||`/ternary never evaluate their dead operand).

use beast_core::error::EvalError;
use beast_core::expr::Builtin;
use beast_core::ir::{IntBinOp, IntExpr};

/// One postfix operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PfOp {
    /// Push a literal.
    Const(i64),
    /// Push a slot value.
    Slot(u32),
    /// Pop b, pop a, push `a op b` (arithmetic/comparison, non-lazy).
    Bin(IntBinOp),
    /// Negate the top.
    Neg,
    /// Logical-not the top (0/1).
    Not,
    /// Absolute value of the top.
    Abs,
    /// Pop b, pop a, push `builtin(a, b)`.
    Call2(Builtin),
    /// Replace the top with `top != 0`.
    NormalizeBool,
    /// Pop the top.
    Pop,
    /// Skip the next `0` operations unconditionally.
    Jmp(u32),
    /// If the top is zero, skip the next ops (keeping the zero as the
    /// result) — the `&&` guard.
    JmpIfZeroKeep(u32),
    /// If the top is nonzero, skip the next ops (keeping it) — the `||`
    /// guard (top is pre-normalized to 1).
    JmpIfNonZeroKeep(u32),
    /// Pop the top; if it was zero, skip the next ops — the ternary guard.
    JmpIfZeroPop(u32),
}

/// A compiled postfix program.
#[derive(Debug, Clone, PartialEq)]
pub struct Postfix {
    ops: Vec<PfOp>,
    max_stack: usize,
}

impl Postfix {
    /// Flatten an [`IntExpr`] tree and run the peephole optimizer.
    pub fn compile(e: &IntExpr) -> Postfix {
        let mut ops = Vec::new();
        emit(e, &mut ops);
        while let Some(better) = peephole_pass(&ops) {
            ops = better;
        }
        let max_stack = stack_bound(&ops);
        Postfix { ops, max_stack }
    }

    /// Flatten without the peephole pass (diagnostics: lets tests and
    /// benchmarks measure how many ops the optimizer removes).
    pub fn compile_unoptimized(e: &IntExpr) -> Postfix {
        let mut ops = Vec::new();
        emit(e, &mut ops);
        let max_stack = stack_bound(&ops);
        Postfix { ops, max_stack }
    }

    /// Assemble from raw ops (crate-internal: the batched lane compiler in
    /// [`crate::lanes`] hoists lane-invariant subprograms into standalone
    /// scalar prologue programs). Callers must pass a well-formed postfix
    /// stream — segments sliced out of a compiled program qualify.
    pub(crate) fn from_ops(ops: Vec<PfOp>) -> Postfix {
        let max_stack = stack_bound(&ops);
        Postfix { ops, max_stack }
    }

    /// Number of operations (tests/diagnostics).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True for the empty program (never produced by `compile`).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Worst-case stack depth.
    pub fn max_stack(&self) -> usize {
        self.max_stack
    }

    /// The compiled op stream (crate-internal: the batched lane evaluator
    /// in [`crate::lanes`] translates it to slab form).
    pub(crate) fn ops(&self) -> &[PfOp] {
        &self.ops
    }

    /// Evaluate against a slot array, reusing `stack` as scratch.
    #[inline]
    pub fn eval(&self, slots: &[i64], stack: &mut Vec<i64>) -> Result<i64, EvalError> {
        stack.clear();
        stack.reserve(self.max_stack);
        let ops = &self.ops[..];
        let mut pc = 0usize;
        while pc < ops.len() {
            match ops[pc] {
                PfOp::Const(k) => stack.push(k),
                PfOp::Slot(s) => stack.push(slots[s as usize]),
                PfOp::Bin(op) => {
                    let b = stack.pop().expect("operand");
                    let a = stack.last_mut().expect("operand");
                    *a = match op {
                        IntBinOp::Add => a.wrapping_add(b),
                        IntBinOp::Sub => a.wrapping_sub(b),
                        IntBinOp::Mul => a.wrapping_mul(b),
                        IntBinOp::Div => {
                            if b == 0 {
                                return Err(EvalError::DivisionByZero);
                            }
                            a.wrapping_div(b)
                        }
                        IntBinOp::FloorDiv => {
                            if b == 0 {
                                return Err(EvalError::DivisionByZero);
                            }
                            a.div_euclid(b)
                        }
                        IntBinOp::Rem => {
                            if b == 0 {
                                return Err(EvalError::DivisionByZero);
                            }
                            a.wrapping_rem(b)
                        }
                        IntBinOp::Lt => i64::from(*a < b),
                        IntBinOp::Le => i64::from(*a <= b),
                        IntBinOp::Gt => i64::from(*a > b),
                        IntBinOp::Ge => i64::from(*a >= b),
                        IntBinOp::Eq => i64::from(*a == b),
                        IntBinOp::Ne => i64::from(*a != b),
                        IntBinOp::And | IntBinOp::Or => {
                            unreachable!("lazy ops compile to jumps")
                        }
                    };
                }
                PfOp::Neg => {
                    let a = stack.last_mut().expect("operand");
                    *a = a.wrapping_neg();
                }
                PfOp::Not => {
                    let a = stack.last_mut().expect("operand");
                    *a = i64::from(*a == 0);
                }
                PfOp::Abs => {
                    let a = stack.last_mut().expect("operand");
                    *a = a.wrapping_abs();
                }
                PfOp::Call2(f) => {
                    let b = stack.pop().expect("operand");
                    let a = stack.last_mut().expect("operand");
                    *a = match f {
                        Builtin::Min => (*a).min(b),
                        Builtin::Max => (*a).max(b),
                        Builtin::DivCeil => {
                            if b == 0 {
                                return Err(EvalError::DivisionByZero);
                            }
                            (*a + b - 1).div_euclid(b)
                        }
                        Builtin::Gcd => {
                            let (mut x, mut y) = (a.unsigned_abs(), b.unsigned_abs());
                            while y != 0 {
                                let t = x % y;
                                x = y;
                                y = t;
                            }
                            x as i64
                        }
                        Builtin::RoundUp => {
                            if b == 0 {
                                return Err(EvalError::DivisionByZero);
                            }
                            (*a + b - 1).div_euclid(b) * b
                        }
                        Builtin::Abs => unreachable!("unary"),
                    };
                }
                PfOp::NormalizeBool => {
                    let a = stack.last_mut().expect("operand");
                    *a = i64::from(*a != 0);
                }
                PfOp::Pop => {
                    stack.pop();
                }
                PfOp::Jmp(skip) => pc += skip as usize,
                PfOp::JmpIfZeroKeep(skip) => {
                    if *stack.last().expect("cond") == 0 {
                        pc += skip as usize;
                    }
                }
                PfOp::JmpIfNonZeroKeep(skip) => {
                    if *stack.last().expect("cond") != 0 {
                        pc += skip as usize;
                    }
                }
                PfOp::JmpIfZeroPop(skip) => {
                    if stack.pop().expect("cond") == 0 {
                        pc += skip as usize;
                    }
                }
            }
            pc += 1;
        }
        debug_assert_eq!(stack.len(), 1, "program must leave exactly one value");
        Ok(stack.pop().expect("result"))
    }
}

fn emit(e: &IntExpr, ops: &mut Vec<PfOp>) {
    match e {
        IntExpr::Const(k) => ops.push(PfOp::Const(*k)),
        IntExpr::Slot(s) => ops.push(PfOp::Slot(*s)),
        IntExpr::Neg(a) => {
            emit(a, ops);
            ops.push(PfOp::Neg);
        }
        IntExpr::Not(a) => {
            emit(a, ops);
            ops.push(PfOp::Not);
        }
        IntExpr::Abs(a) => {
            emit(a, ops);
            ops.push(PfOp::Abs);
        }
        IntExpr::Call2(f, a, b) => {
            emit(a, ops);
            emit(b, ops);
            ops.push(PfOp::Call2(*f));
        }
        IntExpr::Ternary(c, t, f) => {
            emit(c, ops);
            let guard = ops.len();
            ops.push(PfOp::JmpIfZeroPop(0));
            emit(t, ops);
            let jend = ops.len();
            ops.push(PfOp::Jmp(0));
            let else_start = ops.len();
            ops[guard] = PfOp::JmpIfZeroPop((else_start - guard - 1) as u32);
            emit(f, ops);
            let end = ops.len();
            ops[jend] = PfOp::Jmp((end - jend - 1) as u32);
        }
        IntExpr::Bin(op, a, b) => match op {
            IntBinOp::And => {
                emit(a, ops);
                let guard = ops.len();
                ops.push(PfOp::JmpIfZeroKeep(0));
                ops.push(PfOp::Pop);
                emit(b, ops);
                ops.push(PfOp::NormalizeBool);
                let end = ops.len();
                ops[guard] = PfOp::JmpIfZeroKeep((end - guard - 1) as u32);
            }
            IntBinOp::Or => {
                emit(a, ops);
                ops.push(PfOp::NormalizeBool);
                let guard = ops.len();
                ops.push(PfOp::JmpIfNonZeroKeep(0));
                ops.push(PfOp::Pop);
                emit(b, ops);
                ops.push(PfOp::NormalizeBool);
                let end = ops.len();
                ops[guard] = PfOp::JmpIfNonZeroKeep((end - guard - 1) as u32);
            }
            _ => {
                emit(a, ops);
                emit(b, ops);
                ops.push(PfOp::Bin(*op));
            }
        },
    }
}

/// One peephole rewrite pass; `None` when nothing changed (fixpoint).
///
/// Patterns, applied only where no jump lands mid-pattern so control flow
/// cannot observe the difference:
/// - `Const a, Const b, Bin op` → `Const (a op b)` (and the `Call2`
///   analog), skipped when evaluation would error or panic so runtime
///   error semantics are preserved bit for bit;
/// - `Const a, <unary>` → folded constant;
/// - `NormalizeBool` directly after an op that already produces 0/1
///   (comparisons, `Not`, another `NormalizeBool`) → removed — the common
///   case in `&&`-chains of comparisons like the GEMM constraints;
/// - `Jmp 0` → removed (arises when earlier folds shrink a branch).
///
/// Jump offsets are recomputed through an old-index → new-index map, so
/// removals inside a skipped region shorten the jump rather than break it.
fn peephole_pass(ops: &[PfOp]) -> Option<Vec<PfOp>> {
    /// What happens to the op at one old index.
    #[derive(Clone, Copy, PartialEq)]
    enum Act {
        Keep,
        Drop,
        Replace(PfOp),
    }

    let n = ops.len();
    let mut is_target = vec![false; n + 1];
    for (i, op) in ops.iter().enumerate() {
        if let PfOp::Jmp(s)
        | PfOp::JmpIfZeroKeep(s)
        | PfOp::JmpIfNonZeroKeep(s)
        | PfOp::JmpIfZeroPop(s) = op
        {
            is_target[i + 1 + *s as usize] = true;
        }
    }

    let mut acts = vec![Act::Keep; n];
    let mut changed = false;
    let mut i = 0usize;
    while i < n {
        // A no-op jump does nothing even if something jumps *to* it.
        if let PfOp::Jmp(0) = ops[i] {
            acts[i] = Act::Drop;
            changed = true;
            i += 1;
            continue;
        }
        if let PfOp::Const(a) = ops[i] {
            // Const Const Bin / Call2.
            if i + 2 < n && !is_target[i + 1] && !is_target[i + 2] {
                if let PfOp::Const(b) = ops[i + 1] {
                    let folded = match ops[i + 2] {
                        PfOp::Bin(op) => fold_bin(op, a, b),
                        PfOp::Call2(f) => fold_call2(f, a, b),
                        _ => None,
                    };
                    if let Some(r) = folded {
                        acts[i] = Act::Replace(PfOp::Const(r));
                        acts[i + 1] = Act::Drop;
                        acts[i + 2] = Act::Drop;
                        changed = true;
                        i += 3;
                        continue;
                    }
                }
            }
            // Const <unary>.
            if i + 1 < n && !is_target[i + 1] {
                let r = match ops[i + 1] {
                    PfOp::Neg => Some(a.wrapping_neg()),
                    PfOp::Not => Some(i64::from(a == 0)),
                    PfOp::Abs => Some(a.wrapping_abs()),
                    PfOp::NormalizeBool => Some(i64::from(a != 0)),
                    _ => None,
                };
                if let Some(r) = r {
                    acts[i] = Act::Replace(PfOp::Const(r));
                    acts[i + 1] = Act::Drop;
                    changed = true;
                    i += 2;
                    continue;
                }
            }
        }
        // NormalizeBool after a 0/1-producing op reached only by
        // fall-through.
        if matches!(ops[i], PfOp::NormalizeBool) && i > 0 && !is_target[i] {
            let boolish = matches!(
                ops[i - 1],
                PfOp::Bin(
                    IntBinOp::Lt
                        | IntBinOp::Le
                        | IntBinOp::Gt
                        | IntBinOp::Ge
                        | IntBinOp::Eq
                        | IntBinOp::Ne
                ) | PfOp::Not
                    | PfOp::NormalizeBool
            );
            if boolish && acts[i - 1] == Act::Keep {
                acts[i] = Act::Drop;
                changed = true;
                i += 1;
                continue;
            }
        }
        i += 1;
    }
    if !changed {
        return None;
    }

    // Old index → new index (monotone; index n maps to the new length).
    let mut map = vec![0usize; n + 1];
    let mut pos = 0usize;
    for i in 0..n {
        map[i] = pos;
        if acts[i] != Act::Drop {
            pos += 1;
        }
    }
    map[n] = pos;

    let retarget = |i: usize, s: u32| (map[i + 1 + s as usize] - map[i] - 1) as u32;
    let mut out = Vec::with_capacity(pos);
    for i in 0..n {
        match acts[i] {
            Act::Drop => {}
            Act::Replace(op) => out.push(op),
            Act::Keep => out.push(match ops[i] {
                PfOp::Jmp(s) => PfOp::Jmp(retarget(i, s)),
                PfOp::JmpIfZeroKeep(s) => PfOp::JmpIfZeroKeep(retarget(i, s)),
                PfOp::JmpIfNonZeroKeep(s) => PfOp::JmpIfNonZeroKeep(retarget(i, s)),
                PfOp::JmpIfZeroPop(s) => PfOp::JmpIfZeroPop(retarget(i, s)),
                op => op,
            }),
        }
    }
    Some(out)
}

/// Fold a strict binary op over constants, mirroring [`Postfix::eval`]
/// exactly; `None` when evaluation would error or panic at runtime.
fn fold_bin(op: IntBinOp, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        IntBinOp::Add => a.wrapping_add(b),
        IntBinOp::Sub => a.wrapping_sub(b),
        IntBinOp::Mul => a.wrapping_mul(b),
        IntBinOp::Div => {
            if b == 0 {
                return None;
            }
            a.wrapping_div(b)
        }
        IntBinOp::FloorDiv => a.checked_div_euclid(b)?,
        IntBinOp::Rem => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        IntBinOp::Lt => i64::from(a < b),
        IntBinOp::Le => i64::from(a <= b),
        IntBinOp::Gt => i64::from(a > b),
        IntBinOp::Ge => i64::from(a >= b),
        IntBinOp::Eq => i64::from(a == b),
        IntBinOp::Ne => i64::from(a != b),
        IntBinOp::And | IntBinOp::Or => return None,
    })
}

/// Fold a builtin call over constants; `None` when runtime evaluation
/// would error (zero divisor) or panic (intermediate overflow).
fn fold_call2(f: Builtin, a: i64, b: i64) -> Option<i64> {
    Some(match f {
        Builtin::Min => a.min(b),
        Builtin::Max => a.max(b),
        Builtin::DivCeil => {
            if b == 0 {
                return None;
            }
            a.checked_add(b)?.checked_sub(1)?.checked_div_euclid(b)?
        }
        Builtin::Gcd => {
            let (mut x, mut y) = (a.unsigned_abs(), b.unsigned_abs());
            while y != 0 {
                let t = x % y;
                x = y;
                y = t;
            }
            x as i64
        }
        Builtin::RoundUp => {
            if b == 0 {
                return None;
            }
            a.checked_add(b)?
                .checked_sub(1)?
                .checked_div_euclid(b)?
                .checked_mul(b)?
        }
        Builtin::Abs => return None,
    })
}

/// Conservative worst-case stack depth: simulate pushes/pops linearly
/// (jumps only skip forward, so the linear bound dominates every path).
fn stack_bound(ops: &[PfOp]) -> usize {
    let mut depth: isize = 0;
    let mut max: isize = 0;
    for op in ops {
        match op {
            PfOp::Const(_) | PfOp::Slot(_) => depth += 1,
            PfOp::Bin(_) | PfOp::Call2(_) | PfOp::Pop | PfOp::JmpIfZeroPop(_) => depth -= 1,
            _ => {}
        }
        max = max.max(depth);
    }
    max.max(1) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use beast_core::ir::IntExpr as E;

    fn b(op: IntBinOp, a: E, b2: E) -> E {
        E::Bin(op, Box::new(a), Box::new(b2))
    }

    fn eval(e: &E, slots: &[i64]) -> Result<i64, EvalError> {
        let pf = Postfix::compile(e);
        let mut stack = Vec::new();
        let got = pf.eval(slots, &mut stack);
        // Cross-check against the tree evaluator on every test.
        let expect = e.eval(slots);
        assert_eq!(got, expect, "postfix vs tree for {e:?}");
        got
    }

    #[test]
    fn arithmetic_and_slots() {
        let e = b(
            IntBinOp::Add,
            b(IntBinOp::Mul, E::Slot(0), E::Const(3)),
            E::Slot(1),
        );
        assert_eq!(eval(&e, &[5, 2]).unwrap(), 17);
    }

    #[test]
    fn comparisons_produce_bits() {
        let e = b(IntBinOp::Lt, E::Slot(0), E::Const(10));
        assert_eq!(eval(&e, &[3]).unwrap(), 1);
        assert_eq!(eval(&e, &[30]).unwrap(), 0);
    }

    #[test]
    fn short_circuit_and_guards_division() {
        // x != 0 && 12 % x == 0
        let e = b(
            IntBinOp::And,
            b(IntBinOp::Ne, E::Slot(0), E::Const(0)),
            b(
                IntBinOp::Eq,
                b(IntBinOp::Rem, E::Const(12), E::Slot(0)),
                E::Const(0),
            ),
        );
        assert_eq!(eval(&e, &[0]).unwrap(), 0); // no division by zero
        assert_eq!(eval(&e, &[4]).unwrap(), 1);
        assert_eq!(eval(&e, &[5]).unwrap(), 0);
    }

    #[test]
    fn short_circuit_or() {
        // x == 0 || 12 / x > 2
        let e = b(
            IntBinOp::Or,
            b(IntBinOp::Eq, E::Slot(0), E::Const(0)),
            b(
                IntBinOp::Gt,
                b(IntBinOp::Div, E::Const(12), E::Slot(0)),
                E::Const(2),
            ),
        );
        assert_eq!(eval(&e, &[0]).unwrap(), 1);
        assert_eq!(eval(&e, &[3]).unwrap(), 1);
        assert_eq!(eval(&e, &[6]).unwrap(), 0);
    }

    #[test]
    fn ternary_lazy_branches() {
        // x > 0 ? 100 / x : -1
        let e = E::Ternary(
            Box::new(b(IntBinOp::Gt, E::Slot(0), E::Const(0))),
            Box::new(b(IntBinOp::Div, E::Const(100), E::Slot(0))),
            Box::new(E::Const(-1)),
        );
        assert_eq!(eval(&e, &[4]).unwrap(), 25);
        assert_eq!(eval(&e, &[0]).unwrap(), -1); // dead division skipped
    }

    #[test]
    fn nested_ternaries() {
        let inner = E::Ternary(
            Box::new(E::Slot(1)),
            Box::new(E::Const(10)),
            Box::new(E::Const(20)),
        );
        let e = E::Ternary(Box::new(E::Slot(0)), Box::new(inner), Box::new(E::Const(30)));
        assert_eq!(eval(&e, &[1, 1]).unwrap(), 10);
        assert_eq!(eval(&e, &[1, 0]).unwrap(), 20);
        assert_eq!(eval(&e, &[0, 1]).unwrap(), 30);
    }

    #[test]
    fn builtins_and_unaries() {
        let e = E::Call2(
            Builtin::Min,
            Box::new(E::Abs(Box::new(E::Neg(Box::new(E::Slot(0)))))),
            Box::new(E::Const(7)),
        );
        assert_eq!(eval(&e, &[-12]).unwrap(), 7);
        assert_eq!(eval(&e, &[3]).unwrap(), 3);
        let g = E::Call2(Builtin::Gcd, Box::new(E::Const(18)), Box::new(E::Const(12)));
        assert_eq!(eval(&g, &[]).unwrap(), 6);
        let n = E::Not(Box::new(E::Slot(0)));
        assert_eq!(eval(&n, &[0]).unwrap(), 1);
        assert_eq!(eval(&n, &[5]).unwrap(), 0);
    }

    #[test]
    fn division_errors_propagate() {
        let e = b(IntBinOp::Div, E::Const(1), E::Slot(0));
        assert_eq!(eval(&e, &[0]), Err(EvalError::DivisionByZero));
        let e = b(IntBinOp::FloorDiv, E::Const(1), E::Slot(0));
        assert_eq!(eval(&e, &[0]), Err(EvalError::DivisionByZero));
    }

    #[test]
    fn peephole_folds_constant_subtrees() {
        // (2 * 3) + x: the constant product folds into one push.
        let e = b(
            IntBinOp::Add,
            b(IntBinOp::Mul, E::Const(2), E::Const(3)),
            E::Slot(0),
        );
        let raw = Postfix::compile_unoptimized(&e);
        let opt = Postfix::compile(&e);
        assert!(opt.len() < raw.len(), "{} !< {}", opt.len(), raw.len());
        let mut stack = Vec::new();
        assert_eq!(opt.eval(&[10], &mut stack).unwrap(), 16);
        // Cascading folds: ((1 + 2) + 3) + 4 collapses to a single Const.
        let mut chain = E::Const(1);
        for k in 2..5 {
            chain = b(IntBinOp::Add, chain, E::Const(k));
        }
        let opt = Postfix::compile(&chain);
        assert_eq!(opt.len(), 1);
        assert_eq!(opt.eval(&[], &mut stack).unwrap(), 10);
    }

    #[test]
    fn peephole_never_folds_runtime_errors_away() {
        // 1 / 0 must still error at eval time, not disappear at compile
        // time or panic the compiler.
        let e = b(IntBinOp::Div, E::Const(1), E::Const(0));
        let opt = Postfix::compile(&e);
        let mut stack = Vec::new();
        assert_eq!(opt.eval(&[], &mut stack), Err(EvalError::DivisionByZero));
    }

    #[test]
    fn peephole_drops_redundant_normalize_bool() {
        // (x < 3) && (x > 0): both comparison results are already 0/1, so
        // the &&'s NormalizeBool ops are dead weight.
        let e = b(
            IntBinOp::And,
            b(IntBinOp::Lt, E::Slot(0), E::Const(3)),
            b(IntBinOp::Gt, E::Slot(0), E::Const(0)),
        );
        let raw = Postfix::compile_unoptimized(&e);
        let opt = Postfix::compile(&e);
        assert!(opt.len() < raw.len(), "{} !< {}", opt.len(), raw.len());
        let mut stack = Vec::new();
        for x in -2..6 {
            assert_eq!(opt.eval(&[x], &mut stack), e.eval(&[x]), "x={x}");
        }
    }

    #[test]
    fn peephole_preserves_jump_targets() {
        // A constant condition inside a ternary: folds must retarget the
        // branch jumps, and the dead branch must stay dead.
        let e = E::Ternary(
            Box::new(b(IntBinOp::Gt, E::Slot(0), E::Const(0))),
            Box::new(b(IntBinOp::Add, b(IntBinOp::Mul, E::Const(2), E::Const(5)), E::Slot(0))),
            Box::new(b(IntBinOp::Div, E::Const(1), E::Slot(0))),
        );
        let opt = Postfix::compile(&e);
        let mut stack = Vec::new();
        assert_eq!(opt.eval(&[4], &mut stack).unwrap(), 14);
        assert_eq!(opt.eval(&[0], &mut stack), Err(EvalError::DivisionByZero));
        assert_eq!(opt.eval(&[-1], &mut stack).unwrap(), -1);
    }

    #[test]
    fn peephole_agrees_with_tree_eval_on_guarded_forms() {
        // The existing short-circuit tests go through `compile`; this one
        // additionally diffs optimized vs unoptimized op-for-op results.
        let e = b(
            IntBinOp::And,
            b(IntBinOp::Ne, E::Slot(0), E::Const(0)),
            b(
                IntBinOp::Eq,
                b(IntBinOp::Rem, E::Const(12), E::Slot(0)),
                E::Const(0),
            ),
        );
        let raw = Postfix::compile_unoptimized(&e);
        let opt = Postfix::compile(&e);
        let mut stack = Vec::new();
        for x in -13..14 {
            assert_eq!(
                raw.eval(&[x], &mut stack),
                opt.eval(&[x], &mut stack),
                "x={x}"
            );
        }
    }

    #[test]
    fn stack_bound_is_respected() {
        // Deep right-leaning tree: (1 + (2 + (3 + ...))). Compiled without
        // the peephole pass, which would otherwise fold it to one Const.
        let mut e = E::Const(0);
        for i in 1..20 {
            e = b(IntBinOp::Add, E::Const(i), e);
        }
        let pf = Postfix::compile_unoptimized(&e);
        assert!(pf.max_stack() >= 2);
        let mut stack = Vec::new();
        assert_eq!(pf.eval(&[], &mut stack).unwrap(), (1..20).sum::<i64>());
        assert!(stack.capacity() >= pf.max_stack());
    }
}
