//! Fault tolerance primitives for the sweep supervisor.
//!
//! At production scale a sweep runs for hours (the paper's headline GEMM
//! enumeration is 66 948 s in Python); a single bad point or a panicking
//! worker must not discard everything enumerated so far. This module defines
//! the vocabulary the supervisor in [`crate::parallel`] speaks:
//!
//! - [`FaultPolicy`] — what to do when evaluating a point raises an
//!   [`EvalError`](beast_core::error::EvalError) or a chunk panics.
//! - [`FaultRecord`] — a structured, deterministic account of one fault,
//!   surfaced in [`SweepReport`](crate::telemetry::SweepReport) JSON.
//! - [`CancelToken`] — cooperative cancellation, polled *inside* chunks so
//!   cancel latency is bounded by a poll interval rather than a chunk length.
//! - [`FaultInjector`] — a seeded, replayable source of artificial faults
//!   keyed on `(chunk index, point ordinal, attempt)`, so every policy and
//!   the resume path can be exercised deterministically in CI.
//!
//! # Determinism under faults
//!
//! Fault decisions are keyed on the *chunk grid*, not on thread scheduling:
//! the injector hashes `(seed, kind, chunk, ordinal)` and the recovery
//! actions (skip point, quarantine chunk) only ever remove work in units that
//! are merged in chunk order. Pinning the grid with
//! [`ParallelOptions::chunk_count`](crate::parallel::ParallelOptions) makes
//! the full fault set and the surviving-point sequence invariant across
//! thread counts — asserted in `tests/fault_tolerance.rs`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What the sweep does when evaluating a point fails or a chunk panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultPolicy {
    /// Stop the sweep and surface the first error (historical behaviour).
    /// Worker panics still surface as structured
    /// [`SweepError::WorkerPanic`](crate::sweep::SweepError) instead of
    /// poisoning the orchestrator.
    #[default]
    Abort,
    /// Drop the failing point, record a [`FaultRecord`], and continue with
    /// the next tuple of the innermost enclosing iterator. Errors that fire
    /// outside any loop (chunk preamble) escalate to a quarantined chunk.
    SkipPoint,
    /// Drop the whole chunk containing the fault (its survivors and stats are
    /// excluded) and continue with the remaining chunks.
    QuarantineChunk,
    /// Re-run the failing chunk up to `max` additional times, sleeping
    /// `backoff_ms` milliseconds between attempts; if every attempt fails the
    /// chunk is quarantined. Useful when evaluation calls out to flaky
    /// external oracles.
    Retry {
        /// Maximum number of *re*-tries after the initial attempt.
        max: u32,
        /// Constant sleep between attempts, in milliseconds.
        backoff_ms: u64,
    },
}

impl FaultPolicy {
    /// Stable lowercase name used in telemetry JSON and on the CLI.
    pub fn name(&self) -> String {
        match self {
            FaultPolicy::Abort => "abort".to_string(),
            FaultPolicy::SkipPoint => "skip_point".to_string(),
            FaultPolicy::QuarantineChunk => "quarantine_chunk".to_string(),
            FaultPolicy::Retry { max, backoff_ms } => {
                format!("retry(max={max},backoff_ms={backoff_ms})")
            }
        }
    }

    /// A spelling that [`FaultPolicy::parse`] accepts (unlike
    /// [`FaultPolicy::name`], whose `retry(max=…)` form is display-only).
    /// Used to forward the policy to distributed worker processes over the
    /// shard protocol ([`crate::distribute`]).
    pub fn spec(&self) -> String {
        match self {
            FaultPolicy::Retry { max, backoff_ms } => format!("retry:{max}:{backoff_ms}"),
            other => other.name(),
        }
    }

    /// Parse a CLI spelling: `abort`, `skip`, `skip_point`, `quarantine`,
    /// `quarantine_chunk`, `retry`, or `retry:MAX[:BACKOFF_MS]`.
    pub fn parse(s: &str) -> Option<FaultPolicy> {
        match s {
            "abort" => Some(FaultPolicy::Abort),
            "skip" | "skip_point" => Some(FaultPolicy::SkipPoint),
            "quarantine" | "quarantine_chunk" => Some(FaultPolicy::QuarantineChunk),
            "retry" => Some(FaultPolicy::Retry {
                max: 2,
                backoff_ms: 0,
            }),
            _ => {
                let rest = s.strip_prefix("retry:")?;
                let mut it = rest.splitn(2, ':');
                let max = it.next()?.parse().ok()?;
                let backoff_ms = match it.next() {
                    Some(b) => b.parse().ok()?,
                    None => 0,
                };
                Some(FaultPolicy::Retry { max, backoff_ms })
            }
        }
    }
}

/// What raised the fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// An [`EvalError`](beast_core::error::EvalError) during evaluation.
    Error,
    /// A panic caught at the chunk boundary.
    Panic,
    /// A distributed worker *process* died (crash, `kill -9`, or EOF on its
    /// pipe) while a shard was in flight ([`crate::distribute`]).
    WorkerExit,
    /// A distributed worker stopped sending frames: the per-worker
    /// heartbeat/read deadline expired and the supervisor killed it.
    WorkerTimeout,
    /// A worker reply failed validation (malformed frame, wrong chunk,
    /// mismatched counter shapes, or a failed handshake). The shard is
    /// re-dealt; nothing from the lying worker is folded.
    ProtocolError,
}

impl FaultKind {
    /// Stable lowercase name used in JSON.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Error => "error",
            FaultKind::Panic => "panic",
            FaultKind::WorkerExit => "worker_exit",
            FaultKind::WorkerTimeout => "worker_timeout",
            FaultKind::ProtocolError => "protocol_error",
        }
    }

    /// Inverse of [`FaultKind::name`].
    pub fn parse(s: &str) -> Option<FaultKind> {
        match s {
            "error" => Some(FaultKind::Error),
            "panic" => Some(FaultKind::Panic),
            "worker_exit" => Some(FaultKind::WorkerExit),
            "worker_timeout" => Some(FaultKind::WorkerTimeout),
            "protocol_error" => Some(FaultKind::ProtocolError),
            _ => None,
        }
    }

    /// Is this a worker-*process* fault (exit/timeout/protocol), as opposed
    /// to an in-process evaluation fault?
    pub fn is_worker(&self) -> bool {
        matches!(
            self,
            FaultKind::WorkerExit | FaultKind::WorkerTimeout | FaultKind::ProtocolError
        )
    }
}

/// How the supervisor recovered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The failing point was dropped; the sweep continued within the chunk.
    SkippedPoint,
    /// The whole chunk was dropped (directly, or after retries ran out).
    QuarantinedChunk,
    /// The chunk was re-run; a later attempt may have succeeded.
    Retried,
}

impl FaultAction {
    /// Stable lowercase name used in JSON.
    pub fn name(&self) -> &'static str {
        match self {
            FaultAction::SkippedPoint => "skipped_point",
            FaultAction::QuarantinedChunk => "quarantined_chunk",
            FaultAction::Retried => "retried",
        }
    }

    /// Inverse of [`FaultAction::name`].
    pub fn parse(s: &str) -> Option<FaultAction> {
        match s {
            "skipped_point" => Some(FaultAction::SkippedPoint),
            "quarantined_chunk" => Some(FaultAction::QuarantinedChunk),
            "retried" => Some(FaultAction::Retried),
            _ => None,
        }
    }
}

/// One recorded fault. Records are merged in chunk order (and, within a
/// chunk, in evaluation order), so with a pinned chunk grid the full record
/// sequence is identical at any thread count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// Index of the chunk the fault occurred in.
    pub chunk: usize,
    /// Per-chunk visit ordinal at the time of the fault (0 when the fault is
    /// not tied to a specific point, e.g. a panic).
    pub ordinal: u64,
    /// Which attempt at the chunk raised it (0 = first run).
    pub attempt: u32,
    /// Error or panic.
    pub kind: FaultKind,
    /// How the supervisor recovered.
    pub action: FaultAction,
    /// Name of the failing constraint/define/iterator, or a marker like
    /// `visit` (injected point faults) / `chunk` (panics).
    pub site: String,
    /// Root error display (context stripped — the context lives in
    /// [`FaultRecord::bindings`]).
    pub error: String,
    /// Iterator/define values bound when the fault fired.
    pub bindings: Vec<(String, i64)>,
}

/// Cooperative cancellation flag shared between a caller and a running
/// sweep. Cheap to poll; workers check it between chunks and (via an
/// internal probe) inside chunks every few thousand loop advances, so
/// cancel latency is bounded even when one chunk covers the whole domain.
#[derive(Debug, Default)]
pub struct CancelToken {
    flag: AtomicBool,
}

impl CancelToken {
    /// New, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Has [`CancelToken::cancel`] been called?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// A worker's view of "should I stop": an optional shared [`CancelToken`]
/// plus an optional wall-clock deadline. Both are polled together.
#[derive(Debug, Clone, Default)]
pub(crate) struct CancelProbe {
    token: Option<Arc<CancelToken>>,
    deadline: Option<Instant>,
}

impl CancelProbe {
    pub(crate) fn new(token: Option<Arc<CancelToken>>, deadline: Option<Instant>) -> Self {
        CancelProbe { token, deadline }
    }

    /// True when there is anything to poll; lets the engine skip the
    /// per-iteration countdown entirely for unsupervised runs.
    pub(crate) fn armed(&self) -> bool {
        self.token.is_some() || self.deadline.is_some()
    }

    pub(crate) fn cancelled(&self) -> bool {
        if let Some(t) = &self.token {
            if t.is_cancelled() {
                return true;
            }
        }
        if let Some(d) = &self.deadline {
            if Instant::now() >= *d {
                return true;
            }
        }
        false
    }
}

/// Deterministic, replayable fault source for tests and CI.
///
/// Decisions depend only on `(seed, kind, chunk, ordinal, attempt)` — never
/// on threads or timing — so a faulted sweep over a pinned chunk grid
/// produces the same fault set at any thread count, and a resumed sweep
/// re-injects exactly the faults the interrupted run would have seen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultInjector {
    seed: u64,
    error_rate: f64,
    panic_rate: f64,
    transient: bool,
}

impl FaultInjector {
    /// New injector with both rates at zero.
    pub fn new(seed: u64) -> Self {
        FaultInjector {
            seed,
            error_rate: 0.0,
            panic_rate: 0.0,
            transient: false,
        }
    }

    /// Probability that any given visited point raises an injected
    /// [`EvalError`](beast_core::error::EvalError).
    pub fn error_rate(mut self, rate: f64) -> Self {
        self.error_rate = rate;
        self
    }

    /// Probability that any given chunk panics at the start of execution.
    pub fn panic_rate(mut self, rate: f64) -> Self {
        self.panic_rate = rate;
        self
    }

    /// When set, faults only fire on the first attempt at a chunk — retries
    /// succeed, which makes [`FaultPolicy::Retry`] testable end to end.
    pub fn transient(mut self, transient: bool) -> Self {
        self.transient = transient;
        self
    }

    /// The seed this injector was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Should the `ordinal`-th visited point of `chunk` raise an error?
    pub fn point_error(&self, chunk: usize, ordinal: u64, attempt: u32) -> bool {
        if self.error_rate <= 0.0 || (self.transient && attempt > 0) {
            return false;
        }
        self.roll(1, chunk as u64, ordinal, if self.transient { 0 } else { attempt }) < self.error_rate
    }

    /// Should `chunk` panic on this attempt?
    pub fn chunk_panic(&self, chunk: usize, attempt: u32) -> bool {
        if self.panic_rate <= 0.0 || (self.transient && attempt > 0) {
            return false;
        }
        self.roll(2, chunk as u64, 0, if self.transient { 0 } else { attempt }) < self.panic_rate
    }

    /// Is either rate non-zero?
    pub fn armed(&self) -> bool {
        self.error_rate > 0.0 || self.panic_rate > 0.0
    }

    fn roll(&self, kind: u64, chunk: u64, ordinal: u64, attempt: u32) -> f64 {
        // One short-lived xoshiro256** per decision, seeded from a SplitMix64
        // mix of the coordinates. Constants are the SplitMix64 increment
        // multiplied by small odd numbers — only independence matters here.
        let mixed = self
            .seed
            .wrapping_add(kind.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(chunk.wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
            .wrapping_add(ordinal.wrapping_mul(0x1656_67B1_9E37_79F9))
            .wrapping_add((attempt as u64).wrapping_mul(0x2545_F491_4F6C_DD1D));
        StdRng::seed_from_u64(mixed).gen::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injector_is_deterministic_and_key_sensitive() {
        let a = FaultInjector::new(7).error_rate(0.5);
        let b = FaultInjector::new(7).error_rate(0.5);
        let mut hits = 0usize;
        for chunk in 0..8 {
            for ord in 0..64 {
                assert_eq!(a.point_error(chunk, ord, 0), b.point_error(chunk, ord, 0));
                if a.point_error(chunk, ord, 0) {
                    hits += 1;
                }
            }
        }
        // ~50% of 512 draws; loose bounds just prove both rails are live.
        assert!(hits > 128 && hits < 384, "hits = {hits}");
        let c = FaultInjector::new(8).error_rate(0.5);
        let differs = (0..64).any(|ord| a.point_error(0, ord, 0) != c.point_error(0, ord, 0));
        assert!(differs, "seed must change the decision stream");
    }

    #[test]
    fn transient_faults_clear_on_retry() {
        let inj = FaultInjector::new(3).error_rate(1.0).panic_rate(1.0).transient(true);
        assert!(inj.point_error(0, 0, 0));
        assert!(!inj.point_error(0, 0, 1));
        assert!(inj.chunk_panic(5, 0));
        assert!(!inj.chunk_panic(5, 1));
        // Non-transient: the decision for a fixed key ignores nothing.
        let hard = FaultInjector::new(3).error_rate(1.0);
        assert!(hard.point_error(0, 0, 0) && hard.point_error(0, 0, 1));
    }

    #[test]
    fn cancel_token_latches() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        t.cancel();
        t.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn policy_names_round_trip() {
        for p in [
            FaultPolicy::Abort,
            FaultPolicy::SkipPoint,
            FaultPolicy::QuarantineChunk,
            FaultPolicy::Retry { max: 3, backoff_ms: 10 },
        ] {
            if let FaultPolicy::Retry { max, backoff_ms } = p {
                assert_eq!(
                    FaultPolicy::parse(&format!("retry:{max}:{backoff_ms}")),
                    Some(p)
                );
            } else {
                assert_eq!(FaultPolicy::parse(&p.name()), Some(p));
            }
            // `spec()` is parseable for every policy, including retry.
            assert_eq!(FaultPolicy::parse(&p.spec()), Some(p));
        }
        assert_eq!(FaultPolicy::parse("retry"), Some(FaultPolicy::Retry { max: 2, backoff_ms: 0 }));
        assert_eq!(FaultPolicy::parse("nope"), None);
    }

    #[test]
    fn fault_kind_names_round_trip() {
        for k in [
            FaultKind::Error,
            FaultKind::Panic,
            FaultKind::WorkerExit,
            FaultKind::WorkerTimeout,
            FaultKind::ProtocolError,
        ] {
            assert_eq!(FaultKind::parse(k.name()), Some(k));
            assert_eq!(k.is_worker(), !matches!(k, FaultKind::Error | FaultKind::Panic));
        }
        assert_eq!(FaultKind::parse("nope"), None);
    }
}
