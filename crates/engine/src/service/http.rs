//! Minimal HTTP/1.1 support for the sweep service — hand-rolled over
//! [`std::net::TcpStream`], because the build environment cannot vendor an
//! HTTP crate (the registry mirror is unreachable; everything in this repo
//! is std-only).
//!
//! Scope is deliberately small: one request per connection, `Content-Length`
//! bodies on the way in, fixed-length or `chunked` transfer-encoding on the
//! way out. That covers the whole protocol in `docs/PROTOCOL.md` without
//! keep-alive or pipelining edge cases; clients that send
//! `Connection: keep-alive` simply get a closed socket after the response,
//! which HTTP/1.1 permits (`Connection: close` is always advertised).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Largest accepted request head (request line + headers), in bytes.
const MAX_HEAD: usize = 16 * 1024;
/// Largest accepted request body, in bytes.
const MAX_BODY: usize = 4 * 1024 * 1024;
/// Per-call socket I/O timeout applied to every accepted connection: a peer
/// that goes fully silent (or never drains a response) is cut off after this
/// long, instead of pinning a handler thread forever.
pub const IO_TIMEOUT: Duration = Duration::from_secs(10);
/// Hard ceiling on reading one complete request. The per-call timeout alone
/// does not stop a slow-loris client that drips one byte per poll — each
/// `read` succeeds, so no call ever times out. The deadline is checked
/// before every socket read, bounding the whole parse regardless of how the
/// bytes trickle in.
pub const MAX_REQUEST_DURATION: Duration = Duration::from_secs(30);

/// Apply the service's socket timeouts ([`IO_TIMEOUT`] in both directions)
/// to a freshly accepted connection.
pub fn configure_stream(stream: &TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))
}

/// A [`Read`] adapter that enforces an absolute deadline across every read
/// of one request: before each socket read the remaining window is checked
/// (and the socket read timeout shrunk to it), so neither silence nor a
/// byte-at-a-time drip can hold the parse open past the deadline.
struct DeadlineStream<'a> {
    inner: &'a mut TcpStream,
    deadline: Instant,
}

impl Read for DeadlineStream<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let now = Instant::now();
        if now >= self.deadline {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "request deadline exceeded",
            ));
        }
        let remaining = (self.deadline - now).min(IO_TIMEOUT).max(Duration::from_millis(1));
        let _ = self.inner.set_read_timeout(Some(remaining));
        self.inner.read(buf)
    }
}

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercased method (`GET`, `POST`, ...).
    pub method: String,
    /// Request path, query string stripped.
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// Body decoded as UTF-8.
    pub fn body_str(&self) -> Result<&str, String> {
        std::str::from_utf8(&self.body).map_err(|_| "body is not valid UTF-8".to_string())
    }
}

/// Read and parse one request from `stream`.
///
/// Returns `Ok(None)` when the peer closed the connection before sending a
/// request line (a common health-probe pattern), and `Err` with a short
/// diagnostic for malformed or oversized requests.
pub fn read_request(stream: &mut TcpStream) -> Result<Option<Request>, String> {
    read_request_deadline(stream, MAX_REQUEST_DURATION)
}

/// [`read_request`] with an explicit overall deadline (the production entry
/// point always uses [`MAX_REQUEST_DURATION`]; tests use shorter windows).
pub fn read_request_deadline(
    stream: &mut TcpStream,
    max_duration: Duration,
) -> Result<Option<Request>, String> {
    let deadline = Instant::now() + max_duration;
    let mut reader = BufReader::new(DeadlineStream { inner: stream, deadline });
    let mut line = String::new();
    let n = reader.read_line(&mut line).map_err(|e| format!("read request line: {e}"))?;
    if n == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_ascii_uppercase();
    let target = parts.next().unwrap_or_default().to_string();
    if method.is_empty() || target.is_empty() {
        return Err("malformed request line".to_string());
    }
    let path = target.split('?').next().unwrap_or("").to_string();

    let mut content_length = 0usize;
    let mut head_bytes = line.len();
    loop {
        let mut header = String::new();
        let n = reader.read_line(&mut header).map_err(|e| format!("read header: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-headers".to_string());
        }
        head_bytes += n;
        if head_bytes > MAX_HEAD {
            return Err("request head too large".to_string());
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse::<usize>()
                    .map_err(|_| "bad Content-Length".to_string())?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err("request body too large".to_string());
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| format!("read body: {e}"))?;
    Ok(Some(Request { method, path, body }))
}

/// Reason phrase for the handful of status codes the service emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write a complete fixed-length response and flush it.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status,
        reason(status),
        content_type,
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Shorthand for an `application/json` response.
pub fn write_json(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    write_response(stream, status, "application/json", body)
}

/// Shorthand for a JSON error payload `{"error": "..."}`.
pub fn write_error(stream: &mut TcpStream, status: u16, message: &str) -> std::io::Result<()> {
    let mut body = String::from("{");
    crate::telemetry::json_str(&mut body, "error", message);
    body.push('}');
    write_json(stream, status, &body)
}

/// Incremental `Transfer-Encoding: chunked` response writer, used by the
/// progress-stream endpoint so clients see updates while the sweep runs.
pub struct ChunkedWriter<'a> {
    stream: &'a mut TcpStream,
    open: bool,
}

impl<'a> ChunkedWriter<'a> {
    /// Send the response head and switch the connection to chunked mode.
    pub fn begin(
        stream: &'a mut TcpStream,
        status: u16,
        content_type: &str,
    ) -> std::io::Result<ChunkedWriter<'a>> {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
            status,
            reason(status),
            content_type
        );
        stream.write_all(head.as_bytes())?;
        stream.flush()?;
        Ok(ChunkedWriter { stream, open: true })
    }

    /// Send one chunk (empty input is skipped — a zero-length chunk would
    /// terminate the stream).
    pub fn chunk(&mut self, data: &str) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.stream, "{:x}\r\n", data.len())?;
        self.stream.write_all(data.as_bytes())?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Send the terminating zero-length chunk.
    pub fn end(mut self) -> std::io::Result<()> {
        self.open = false;
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

impl Drop for ChunkedWriter<'_> {
    fn drop(&mut self) {
        if self.open {
            // Best effort: terminate the stream so well-behaved clients do
            // not hang waiting for more chunks after a handler error.
            let _ = self.stream.write_all(b"0\r\n\r\n");
            let _ = self.stream.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn parses_post_with_body() {
        let (mut client, mut server) = pair();
        client
            .write_all(
                b"POST /sweeps?wait=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 9\r\n\r\n{\"a\": 1}\n",
            )
            .unwrap();
        let req = read_request(&mut server).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/sweeps");
        assert_eq!(req.body_str().unwrap(), "{\"a\": 1}\n");
    }

    #[test]
    fn get_without_body() {
        let (mut client, mut server) = pair();
        client.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        let req = read_request(&mut server).unwrap().unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn closed_connection_yields_none() {
        let (client, mut server) = pair();
        drop(client);
        assert!(read_request(&mut server).unwrap().is_none());
    }

    #[test]
    fn oversized_content_length_rejected() {
        let (mut client, mut server) = pair();
        client
            .write_all(b"POST /x HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n")
            .unwrap();
        assert!(read_request(&mut server).is_err());
    }

    /// A client that opens a connection, sends half a request, and then goes
    /// silent must not pin the handler: the per-request deadline cuts the
    /// parse off with an error in bounded time.
    #[test]
    fn stalling_client_is_cut_off_by_the_deadline() {
        let (mut client, mut server) = pair();
        client.write_all(b"POST /sweeps HTTP/1.1\r\nContent-Le").unwrap();
        // No more bytes — the client stalls with the head incomplete.
        let t = std::time::Instant::now();
        let result = read_request_deadline(&mut server, Duration::from_millis(200));
        assert!(result.is_err(), "a stalled request must not parse");
        assert!(
            t.elapsed() < Duration::from_secs(5),
            "the deadline must fire in bounded time, took {:?}",
            t.elapsed()
        );
        drop(client);
    }

    /// A slow-loris client that drips bytes fast enough to keep every
    /// individual read alive is still bounded by the absolute deadline.
    #[test]
    fn dripping_client_is_bounded_by_the_deadline() {
        let (mut client, mut server) = pair();
        let feeder = std::thread::spawn(move || {
            // One byte every 20 ms, forever (until the peer closes).
            for b in b"GET /healthz-but-very-slowly HTTP/1.1\r\nX: y\r\n".iter().cycle() {
                if client.write_all(&[*b]).is_err() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        });
        let t = std::time::Instant::now();
        let result = read_request_deadline(&mut server, Duration::from_millis(300));
        assert!(result.is_err(), "a dripped request must not parse past the deadline");
        assert!(
            t.elapsed() < Duration::from_secs(5),
            "the deadline must bound a dripping client, took {:?}",
            t.elapsed()
        );
        drop(server);
        feeder.join().unwrap();
    }

    #[test]
    fn chunked_stream_is_well_formed() {
        let (mut client, mut server) = pair();
        let writer_thread = std::thread::spawn(move || {
            let mut w = ChunkedWriter::begin(&mut server, 200, "application/json").unwrap();
            w.chunk("{\"n\":1}\n").unwrap();
            w.chunk("{\"n\":2}\n").unwrap();
            w.end().unwrap();
        });
        let mut raw = String::new();
        client.read_to_string(&mut raw).unwrap();
        writer_thread.join().unwrap();
        assert!(raw.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(raw.contains("Transfer-Encoding: chunked"));
        assert!(raw.contains("8\r\n{\"n\":1}\n\r\n"));
        assert!(raw.ends_with("0\r\n\r\n"));
    }
}
