//! Sweep-as-a-service: a std-only HTTP daemon that accepts space
//! descriptions over JSON, schedules sweeps on a shared fault-tolerant
//! worker pool, streams progress, and memoizes completed sub-sweeps in a
//! fingerprint-keyed cache so repeated or overlapping requests fold cached
//! chunk outcomes instead of re-enumerating them.
//!
//! The wire protocol (endpoints, JSON shapes, examples) is documented in
//! `docs/PROTOCOL.md`; the architecture and the cache-soundness argument in
//! `DESIGN.md` §8. In brief:
//!
//! | Route                      | Purpose                                    |
//! |----------------------------|--------------------------------------------|
//! | `GET  /healthz`            | liveness + job count                       |
//! | `POST /sweeps`             | submit a sweep (`"wait": true` to block)   |
//! | `GET  /sweeps`             | list all jobs                              |
//! | `GET  /sweeps/{id}`        | job state; full report once done           |
//! | `GET  /sweeps/{id}/progress` | chunked stream of progress JSON lines    |
//! | `GET  /cache/stats`        | sub-sweep cache counters                   |
//! | `POST /shutdown`           | graceful stop                              |
//!
//! The daemon is generic over *what spaces it can build*: callers supply a
//! [`SpaceResolver`] that turns the request's `"space"` JSON object into a
//! [`ResolvedSpace`] (lowered plan + cache scope). The engine crate stays
//! ignorant of concrete space families; the GEMM resolver lives in
//! `beast-gemm` and is wired up by `repro serve`.

pub mod cache;
pub mod http;

use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use beast_core::ir::LoweredPlan;

use crate::checkpoint::{JsonValue, SaveState};
use crate::compiled::EngineOptions;
use crate::parallel::ParallelOptions;
use crate::telemetry::{json_num, json_str, SweepProgress};
use crate::visit::FingerprintVisitor;

use cache::{run_cached, SweepCache};
use http::{read_request, write_error, write_json, ChunkedWriter, Request};

use beast_core::analyze::LintGate;

/// A space description resolved into something the engine can sweep.
#[derive(Debug)]
pub struct ResolvedSpace {
    /// Human-readable label echoed in job listings (e.g.
    /// `gemm reduced(16) on Reduced synthetic Kepler, sgemm NN`).
    pub label: String,
    /// Cache-scope component naming everything about the request that the
    /// lowered plan does not already pin (in practice: a stable rendering
    /// of the resolver inputs). Folded into every sub-sweep cache key.
    pub scope: String,
    /// The lowered plan to sweep.
    pub plan: LoweredPlan,
}

/// Callback that turns the request's `"space"` JSON object into a
/// [`ResolvedSpace`]. Errors become HTTP 400 responses verbatim.
pub type SpaceResolver =
    Arc<dyn Fn(&JsonValue) -> Result<ResolvedSpace, String> + Send + Sync>;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bind address, e.g. `127.0.0.1:7app` — port 0 picks a free port
    /// (the realized address is available from [`ServiceHandle::addr`]).
    pub addr: String,
    /// Worker threads per sweep (the `ParallelOptions::threads` each job
    /// runs with).
    pub threads: usize,
    /// Sweeps executed concurrently (executor pool size). Queued jobs wait.
    pub executors: usize,
    /// Pinned scheduler chunk count. Every job uses the same grid so that
    /// overlapping requests produce cache-compatible chunks; see
    /// `DESIGN.md` §8 for why the key tolerates grid changes anyway.
    pub chunk_count: usize,
    /// Optional on-disk store for the sub-sweep cache; persisted after
    /// every completed job and at shutdown.
    pub cache_path: Option<PathBuf>,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 4,
            executors: 2,
            chunk_count: 32,
            cache_path: None,
        }
    }
}

/// Lifecycle of one submitted sweep.
enum JobState {
    Queued,
    Running,
    /// Completed: the pre-rendered result JSON (see `job_json`).
    Done(String),
    Failed(String),
}

impl JobState {
    fn is_terminal(&self) -> bool {
        matches!(self, JobState::Done(_) | JobState::Failed(_))
    }

    fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
            JobState::Failed(_) => "failed",
        }
    }
}

/// One submitted sweep.
struct Job {
    id: u64,
    label: String,
    /// Consumed by the executor when the job starts; `None` afterwards.
    work: Mutex<Option<(LoweredPlan, String)>>,
    progress: Arc<SweepProgress>,
    state: Mutex<JobState>,
    state_cv: Condvar,
}

impl Job {
    /// Render the job as a JSON object for listings and result fetches.
    fn to_json(&self) -> String {
        let state = self.state.lock().unwrap();
        match &*state {
            JobState::Done(body) => body.clone(),
            other => {
                let mut out = String::from("{");
                json_num(&mut out, "id", self.id as f64);
                out.push(',');
                json_str(&mut out, "label", &self.label);
                out.push(',');
                json_str(&mut out, "state", other.name());
                if let JobState::Failed(err) = other {
                    out.push(',');
                    json_str(&mut out, "error", err);
                }
                if matches!(other, JobState::Running) {
                    let snap = self.progress.snapshot();
                    out.push(',');
                    json_num(&mut out, "chunks_done", snap.chunks_done as f64);
                    out.push(',');
                    json_num(&mut out, "chunks_total", snap.chunks_total as f64);
                    out.push(',');
                    json_num(&mut out, "tuples_decided", snap.tuples_decided as f64);
                }
                out.push('}');
                out
            }
        }
    }

    /// One progress-stream line: state plus the live counters.
    fn progress_line(&self) -> String {
        let snap = self.progress.snapshot();
        let state = self.state.lock().unwrap();
        let mut out = String::from("{");
        json_num(&mut out, "id", self.id as f64);
        out.push(',');
        json_str(&mut out, "state", state.name());
        out.push(',');
        json_num(&mut out, "chunks_done", snap.chunks_done as f64);
        out.push(',');
        json_num(&mut out, "chunks_total", snap.chunks_total as f64);
        out.push(',');
        json_num(&mut out, "tuples_decided", snap.tuples_decided as f64);
        out.push_str("}\n");
        out
    }

    fn set_state(&self, next: JobState) {
        *self.state.lock().unwrap() = next;
        self.state_cv.notify_all();
    }

    /// Block until the job reaches a terminal state, then return its JSON.
    fn wait_terminal(&self) -> String {
        let mut state = self.state.lock().unwrap();
        while !state.is_terminal() {
            state = self.state_cv.wait(state).unwrap();
        }
        drop(state);
        self.to_json()
    }
}

/// Everything the listener, connection handlers and executors share.
struct ServerState {
    cfg: ServiceConfig,
    resolver: SpaceResolver,
    cache: SweepCache<FingerprintVisitor>,
    jobs: Mutex<HashMap<u64, Arc<Job>>>,
    queue: Mutex<VecDeque<u64>>,
    queue_cv: Condvar,
    next_id: AtomicU64,
    shutdown: AtomicBool,
}

impl ServerState {
    fn job(&self, id: u64) -> Option<Arc<Job>> {
        self.jobs.lock().unwrap().get(&id).cloned()
    }
}

/// A running daemon: the realized bind address plus join handles for every
/// thread it owns. Dropping the handle without calling
/// [`ServiceHandle::wait`] detaches the threads (they still honor
/// `POST /shutdown`).
pub struct SweepService {
    addr: SocketAddr,
    state: Arc<ServerState>,
    listener: Option<JoinHandle<()>>,
    executors: Vec<JoinHandle<()>>,
}

/// Alias kept for readability at call sites: `serve` returns the handle
/// you shut the daemon down through.
pub type ServiceHandle = SweepService;

impl SweepService {
    /// Bind, spawn the executor pool and the listener, and return.
    ///
    /// Fails if the address cannot be bound or (when `cache_path` is set)
    /// the existing cache file is malformed.
    pub fn start(cfg: ServiceConfig, resolver: SpaceResolver) -> Result<SweepService, String> {
        let cache = match &cfg.cache_path {
            Some(path) => SweepCache::with_path(path, &FingerprintVisitor::new)?,
            None => SweepCache::new(),
        };
        let listener = TcpListener::bind(&cfg.addr)
            .map_err(|e| format!("cannot bind {}: {e}", cfg.addr))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("cannot read bound address: {e}"))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("cannot set nonblocking: {e}"))?;

        let executors = cfg.executors.max(1);
        let state = Arc::new(ServerState {
            cfg,
            resolver,
            cache,
            jobs: Mutex::new(HashMap::new()),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            next_id: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
        });

        let executor_joins: Vec<JoinHandle<()>> = (0..executors)
            .map(|i| {
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("sweep-exec-{i}"))
                    .spawn(move || executor_loop(&state))
                    .map_err(|e| format!("cannot spawn executor: {e}"))
            })
            .collect::<Result<_, _>>()?;

        let listener_state = Arc::clone(&state);
        let listener_join = std::thread::Builder::new()
            .name("sweep-listener".to_string())
            .spawn(move || listener_loop(listener, &listener_state))
            .map_err(|e| format!("cannot spawn listener: {e}"))?;

        Ok(SweepService {
            addr,
            state,
            listener: Some(listener_join),
            executors: executor_joins,
        })
    }

    /// The realized bind address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Request a graceful stop, exactly like `POST /shutdown`.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        self.state.queue_cv.notify_all();
    }

    /// Block until every daemon thread has exited (after a shutdown was
    /// requested via [`SweepService::shutdown`] or `POST /shutdown`), then
    /// persist the cache one final time.
    pub fn wait(mut self) -> Result<(), String> {
        if let Some(listener) = self.listener.take() {
            listener.join().map_err(|_| "listener thread panicked".to_string())?;
        }
        for join in self.executors.drain(..) {
            join.join().map_err(|_| "executor thread panicked".to_string())?;
        }
        self.state.cache.persist()
    }
}

/// Accept loop: poll the nonblocking listener, hand each connection to a
/// short-lived handler thread, exit when shutdown is flagged.
fn listener_loop(listener: TcpListener, state: &Arc<ServerState>) {
    while !state.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let state = Arc::clone(state);
                let _ = std::thread::Builder::new()
                    .name("sweep-conn".to_string())
                    .spawn(move || handle_connection(stream, &state));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Executor loop: pull job ids off the queue, run each sweep through the
/// cache, publish the result, persist the cache.
fn executor_loop(state: &Arc<ServerState>) {
    loop {
        let id = {
            let mut queue = state.queue.lock().unwrap();
            loop {
                if let Some(id) = queue.pop_front() {
                    break Some(id);
                }
                if state.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (q, _timeout) = state
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(50))
                    .unwrap();
                queue = q;
            }
        };
        let Some(id) = id else { return };
        let Some(job) = state.job(id) else { continue };
        run_job(state, &job);
    }
}

/// Run one job to a terminal state.
fn run_job(state: &ServerState, job: &Job) {
    let Some((plan, scope)) = job.work.lock().unwrap().take() else {
        job.set_state(JobState::Failed("job has no work attached".to_string()));
        return;
    };
    job.set_state(JobState::Running);
    let opts = ParallelOptions {
        chunk_count: state.cfg.chunk_count,
        progress: Some(Arc::clone(&job.progress)),
        engine: EngineOptions {
            // The daemon serves programmatic clients; linting belongs to
            // the space author's workflow, not the request path.
            lint: LintGate::Allow,
            ..EngineOptions::default()
        },
        ..ParallelOptions::new(state.cfg.threads)
    };
    match run_cached(&plan, &opts, &state.cache, &scope, FingerprintVisitor::new) {
        Ok((outcome, report)) => {
            let mut out = String::from("{");
            json_num(&mut out, "id", job.id as f64);
            out.push(',');
            json_str(&mut out, "label", &job.label);
            out.push(',');
            json_str(&mut out, "state", "done");
            out.push(',');
            json_num(&mut out, "survivors", report.survivors as f64);
            out.push(',');
            json_num(&mut out, "elapsed_s", report.elapsed.as_secs_f64());
            out.push(',');
            json_num(&mut out, "cache_hits", report.cache_hits as f64);
            out.push(',');
            json_num(&mut out, "cache_misses", report.cache_misses as f64);
            out.push_str(",\"fingerprint\":");
            out.push_str(&outcome.visitor.save_state());
            out.push_str(",\"report\":");
            out.push_str(&report.to_json());
            out.push('}');
            job.set_state(JobState::Done(out));
            if let Err(e) = state.cache.persist() {
                eprintln!("repro serve: cache persist failed: {e}");
            }
        }
        Err(e) => job.set_state(JobState::Failed(format!("sweep failed: {e}"))),
    }
}

/// Serve one connection: read a single request, dispatch, close.
fn handle_connection(mut stream: TcpStream, state: &Arc<ServerState>) {
    // Accepted sockets inherit O_NONBLOCK from the listener on some
    // platforms; request parsing needs blocking reads.
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    // Socket timeouts in both directions, so a silent or undraining client
    // cannot pin this handler thread indefinitely.
    if crate::service::http::configure_stream(&stream).is_err() {
        return;
    }
    let request = match read_request(&mut stream) {
        Ok(Some(request)) => request,
        Ok(None) => return,
        Err(e) => {
            let _ = write_error(&mut stream, 400, &e);
            return;
        }
    };
    let result = dispatch(&mut stream, &request, state);
    if let Err(e) = result {
        // Head may already be on the wire; best effort.
        let _ = write_error(&mut stream, 500, &e);
    }
}

/// Route one parsed request.
fn dispatch(
    stream: &mut TcpStream,
    request: &Request,
    state: &Arc<ServerState>,
) -> Result<(), String> {
    let io = |e: std::io::Error| format!("write response: {e}");
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => {
            let mut body = String::from("{\"ok\":true,");
            json_num(&mut body, "jobs", state.jobs.lock().unwrap().len() as f64);
            body.push('}');
            write_json(stream, 200, &body).map_err(io)
        }
        ("POST", ["sweeps"]) => submit(stream, request, state),
        ("GET", ["sweeps"]) => {
            let jobs = state.jobs.lock().unwrap();
            let mut ids: Vec<u64> = jobs.keys().copied().collect();
            ids.sort_unstable();
            let mut body = String::from("{\"jobs\":[");
            for (i, id) in ids.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                body.push_str(&jobs[id].to_json());
            }
            body.push_str("]}");
            drop(jobs);
            write_json(stream, 200, &body).map_err(io)
        }
        ("GET", ["sweeps", id]) => match parse_id(id) {
            Some(id) => match state.job(id) {
                Some(job) => write_json(stream, 200, &job.to_json()).map_err(io),
                None => write_error(stream, 404, &format!("no sweep {id}")).map_err(io),
            },
            None => write_error(stream, 400, "sweep id must be an integer").map_err(io),
        },
        ("GET", ["sweeps", id, "progress"]) => match parse_id(id) {
            Some(id) => match state.job(id) {
                Some(job) => stream_progress(stream, &job),
                None => write_error(stream, 404, &format!("no sweep {id}")).map_err(io),
            },
            None => write_error(stream, 400, "sweep id must be an integer").map_err(io),
        },
        ("GET", ["cache", "stats"]) => {
            write_json(stream, 200, &state.cache.stats().to_json()).map_err(io)
        }
        ("POST", ["shutdown"]) => {
            let reply = write_json(stream, 200, "{\"ok\":true,\"shutting_down\":true}");
            state.shutdown.store(true, Ordering::SeqCst);
            state.queue_cv.notify_all();
            reply.map_err(io)
        }
        ("GET" | "POST", _) => {
            write_error(stream, 404, &format!("no route for {}", request.path)).map_err(io)
        }
        _ => write_error(stream, 405, &format!("method {} not allowed", request.method))
            .map_err(io),
    }
}

fn parse_id(s: &str) -> Option<u64> {
    s.parse::<u64>().ok()
}

/// `POST /sweeps`: resolve the space, enqueue a job, answer `202` with the
/// queued job — or, with `"wait": true`, block until terminal and answer
/// `200` with the full result.
fn submit(
    stream: &mut TcpStream,
    request: &Request,
    state: &Arc<ServerState>,
) -> Result<(), String> {
    let io = |e: std::io::Error| format!("write response: {e}");
    if state.shutdown.load(Ordering::SeqCst) {
        return write_error(stream, 503, "service is shutting down").map_err(io);
    }
    let body = match request.body_str() {
        Ok(body) => body,
        Err(e) => return write_error(stream, 400, &e).map_err(io),
    };
    let doc = match JsonValue::parse(body) {
        Ok(doc) => doc,
        Err(e) => return write_error(stream, 400, &format!("malformed JSON: {e}")).map_err(io),
    };
    let Some(space) = doc.get("space") else {
        return write_error(stream, 400, "request must have a `space` object").map_err(io);
    };
    let resolved = match (state.resolver)(space) {
        Ok(resolved) => resolved,
        Err(e) => return write_error(stream, 400, &e).map_err(io),
    };
    let wait = doc.get("wait").and_then(JsonValue::as_bool).unwrap_or(false);

    let id = state.next_id.fetch_add(1, Ordering::Relaxed);
    let job = Arc::new(Job {
        id,
        label: resolved.label,
        work: Mutex::new(Some((resolved.plan, resolved.scope))),
        progress: Arc::new(SweepProgress::default()),
        state: Mutex::new(JobState::Queued),
        state_cv: Condvar::new(),
    });
    state.jobs.lock().unwrap().insert(id, Arc::clone(&job));
    state.queue.lock().unwrap().push_back(id);
    state.queue_cv.notify_one();

    if wait {
        write_json(stream, 200, &job.wait_terminal()).map_err(io)
    } else {
        write_json(stream, 202, &job.to_json()).map_err(io)
    }
}

/// `GET /sweeps/{id}/progress`: chunked JSON lines at ~25 ms cadence while
/// the job runs, then one terminal line with the full result.
fn stream_progress(stream: &mut TcpStream, job: &Job) -> Result<(), String> {
    let io = |e: std::io::Error| format!("stream progress: {e}");
    let mut writer = ChunkedWriter::begin(stream, 200, "application/json").map_err(io)?;
    loop {
        if job.state.lock().unwrap().is_terminal() {
            break;
        }
        writer.chunk(&job.progress_line()).map_err(io)?;
        std::thread::sleep(Duration::from_millis(25));
    }
    let mut terminal = job.to_json();
    terminal.push('\n');
    writer.chunk(&terminal).map_err(io)?;
    writer.end().map_err(io)
}
