//! Fingerprint-keyed sub-sweep cache: memoize completed scheduler chunks so
//! a repeated or overlapping sweep folds cached outcomes instead of
//! re-enumerating the subtree below each level-0 value.
//!
//! # Key derivation
//!
//! A chunk outcome depends on exactly three things, and the cache key covers
//! all of them:
//!
//! 1. **What program ran** — [`LoweredPlan::structural_hash`], which pins the
//!    loop nest, every folded constant (device parameters included: lowering
//!    folds them into `IntExpr::Const` leaves) and every constraint
//!    expression.
//! 2. **Which level-0 values the chunk covered** — an FNV digest of the
//!    bound-prefix value slice, so overlapping sweeps hit on shared chunks
//!    regardless of chunk *indices*.
//! 3. **The evaluation scope** — a caller-supplied string naming the device/
//!    request scope plus [`crate::compiled::EngineOptions::signature`] — the execution-options
//!    fingerprint (schedule mode, interval/congruence pruning, guard fanout,
//!    batching, engine tier) shared with the checkpoint compatibility check.
//!    This is belt-and-suspenders on top of (1): the structural hash already
//!    separates devices, but the scope string keeps the key auditable and
//!    protects against option changes that alter *statistics* without
//!    altering the plan.
//!
//! # Soundness
//!
//! A hit is bit-identical to recomputation because chunk evaluation is a
//! pure function of (plan, chunk values, engine options): the supervisor
//! folds per-chunk outcomes in chunk order, so replacing "evaluate chunk"
//! with "replay stored outcome of the same chunk" cannot change the merge.
//! Three guards keep that function pure in practice — plans with opaque
//! (closure-backed) steps are never cached, sweeps with a fault injector
//! bypass the cache entirely, and only fault-free chunks are stored (see
//! [`crate::parallel`]'s `ChunkMemo` contract). `tests/service.rs` asserts
//! the survivor fingerprint equality end to end.
//!
//! The on-disk store reuses the checkpoint machinery from
//! [`crate::checkpoint`]: the same hand-rolled [`JsonValue`] parser, the
//! same exact-integer stats/blocks encoding, the same atomic
//! `.tmp`-then-rename write protocol.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use beast_core::hash::Fnv1a;
use beast_core::ir::LoweredPlan;

use crate::checkpoint::{blocks_json, parse_blocks, parse_stats, stats_json, JsonValue, SaveState};
use crate::parallel::{run_supervised, ChunkMemo, ParallelOptions};
use crate::stats::{BlockStats, LaneStats, PruneStats};
use crate::sweep::SweepError;
use crate::telemetry::{json_num, json_str, SweepReport};
use crate::visit::Visitor;
use crate::walker::SweepOutcome;

/// Current cache file format version.
const FORMAT: i128 = 1;

/// One memoized chunk outcome.
#[derive(Debug, Clone)]
struct Entry<V> {
    stats: PruneStats,
    blocks: BlockStats,
    visitor: V,
}

/// Lifetime counters of one [`SweepCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Entries currently resident.
    pub entries: usize,
    /// Lookups that found a usable entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries inserted (first-time stores; idempotent re-stores of an
    /// existing key are not counted).
    pub stores: u64,
}

impl CacheStats {
    /// Render as a JSON object with stable key order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        json_num(&mut out, "entries", self.entries as f64);
        out.push(',');
        json_num(&mut out, "hits", self.hits as f64);
        out.push(',');
        json_num(&mut out, "misses", self.misses as f64);
        out.push(',');
        json_num(&mut out, "stores", self.stores as f64);
        out.push('}');
        out
    }
}

/// Shared, thread-safe store of memoized sub-sweep (chunk) outcomes.
///
/// Generic over the visitor state it memoizes; the sweep service uses
/// [`crate::visit::FingerprintVisitor`], whose mergeable rolling hash is what
/// makes "cached fold equals recomputed fold" independently checkable.
pub struct SweepCache<V> {
    entries: Mutex<HashMap<String, Entry<V>>>,
    path: Option<PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
}

impl<V: Visitor + SaveState + Clone> SweepCache<V> {
    /// Fresh in-memory cache with no persistence.
    pub fn new() -> SweepCache<V> {
        SweepCache {
            entries: Mutex::new(HashMap::new()),
            path: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
        }
    }

    /// Cache backed by `path`: existing entries are loaded eagerly (a
    /// missing file starts empty; a malformed one is an error so corruption
    /// never silently degrades to a cold cache), and [`SweepCache::persist`]
    /// writes back atomically.
    pub fn with_path(
        path: impl Into<PathBuf>,
        make_visitor: &dyn Fn() -> V,
    ) -> Result<SweepCache<V>, String> {
        let path = path.into();
        let mut cache = SweepCache::new();
        match std::fs::read_to_string(&path) {
            Ok(text) => cache.load(&text, make_visitor)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(format!("cannot read cache {}: {e}", path.display())),
        }
        cache.path = Some(path);
        Ok(cache)
    }

    fn load(&mut self, text: &str, make_visitor: &dyn Fn() -> V) -> Result<(), String> {
        let doc = JsonValue::parse(text).map_err(|e| format!("malformed cache: {e}"))?;
        if doc.get("format").and_then(JsonValue::as_i64) != Some(FORMAT as i64) {
            return Err("cache: unsupported format".to_string());
        }
        let items = doc
            .get("entries")
            .and_then(JsonValue::items)
            .ok_or_else(|| "cache: missing `entries`".to_string())?;
        let mut entries = HashMap::with_capacity(items.len());
        for item in items {
            let key = item
                .get("key")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| "cache: entry missing `key`".to_string())?
                .to_string();
            let stats = parse_stats(
                item.get("stats").ok_or_else(|| "cache: entry missing `stats`".to_string())?,
                "cache",
            )?;
            let blocks = parse_blocks(
                item.get("blocks").ok_or_else(|| "cache: entry missing `blocks`".to_string())?,
                "cache",
            )?;
            let mut visitor = make_visitor();
            visitor.load_state(
                item.get("visitor").ok_or_else(|| "cache: entry missing `visitor`".to_string())?,
            )?;
            entries.insert(key, Entry { stats, blocks, visitor });
        }
        self.entries = Mutex::new(entries);
        Ok(())
    }

    /// Atomically write all entries to the path given at construction
    /// (no-op for purely in-memory caches).
    pub fn persist(&self) -> Result<(), String> {
        let Some(path) = &self.path else { return Ok(()) };
        self.persist_to(path)
    }

    /// Atomically write all entries to `path` (checkpoint-style
    /// `.tmp`-then-rename, so a crash mid-write preserves the old file).
    pub fn persist_to(&self, path: &Path) -> Result<(), String> {
        let entries = self.entries.lock().unwrap();
        let mut keys: Vec<&String> = entries.keys().collect();
        keys.sort(); // stable output → diffable files, deterministic tests
        let mut out = String::with_capacity(256 + entries.len() * 160);
        out.push_str(&format!("{{\"format\":{FORMAT},\"entries\":["));
        for (i, key) in keys.iter().enumerate() {
            let e = &entries[*key];
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            json_str(&mut out, "key", key);
            out.push_str(",\"stats\":");
            stats_json(&mut out, &e.stats);
            out.push_str(",\"blocks\":");
            blocks_json(&mut out, &e.blocks);
            out.push_str(",\"visitor\":");
            out.push_str(&e.visitor.save_state());
            out.push('}');
        }
        out.push_str("]}");
        drop(entries);

        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        std::fs::write(&tmp, &out).map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, path)
            .map_err(|e| format!("cannot rename {} over {}: {e}", tmp.display(), path.display()))
    }

    /// Lifetime counters plus the current entry count.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.entries.lock().unwrap().len(),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
        }
    }

    /// Bind this cache to one (plan, scope) pair, yielding the `ChunkMemo`
    /// view [`run_supervised`] consults at each chunk boundary.
    fn scoped(&self, plan_hash: u64, scope: &str) -> ScopedMemo<'_, V> {
        ScopedMemo { cache: self, plan_hash, scope: scope.to_string() }
    }
}

impl<V: Visitor + SaveState + Clone> Default for SweepCache<V> {
    fn default() -> SweepCache<V> {
        SweepCache::new()
    }
}

/// A [`SweepCache`] bound to one (structural plan hash, scope string) pair.
struct ScopedMemo<'a, V> {
    cache: &'a SweepCache<V>,
    plan_hash: u64,
    scope: String,
}

impl<V> ScopedMemo<'_, V> {
    /// Full entry key: plan hash, digest + length of the chunk's level-0
    /// value slice, and the scope string. Chunk *indices* are deliberately
    /// absent so overlapping sweeps with different grids can still share
    /// chunks that cover the same values.
    fn key(&self, values: &[i64]) -> String {
        let mut h = Fnv1a::new();
        for &v in values {
            h.write_i64(v);
        }
        format!(
            "{:016x}|{:016x}x{}|{}",
            self.plan_hash,
            h.finish(),
            values.len(),
            self.scope
        )
    }
}

impl<V: Visitor + SaveState + Clone + Send + Sync> ChunkMemo<V> for ScopedMemo<'_, V> {
    fn lookup(&self, _chunk: usize, values: &[i64]) -> Option<SweepOutcome<V>> {
        let key = self.key(values);
        let entries = self.cache.entries.lock().unwrap();
        match entries.get(&key) {
            Some(e) => {
                self.cache.hits.fetch_add(1, Ordering::Relaxed);
                Some(SweepOutcome {
                    stats: e.stats.clone(),
                    blocks: e.blocks,
                    // Telemetry-only, like `schedule`: lane counters describe
                    // work actually executed, and a replayed chunk executed
                    // none, so the default (all-zero) value is reported.
                    lanes: LaneStats::default(),
                    // Telemetry-only: the adaptive-schedule final order is
                    // not stored, so replayed chunk 0 reports no reorder.
                    schedule: None,
                    visitor: e.visitor.clone(),
                })
            }
            None => {
                self.cache.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn store(&self, _chunk: usize, values: &[i64], outcome: &SweepOutcome<V>) {
        let key = self.key(values);
        let mut entries = self.cache.entries.lock().unwrap();
        if let std::collections::hash_map::Entry::Vacant(slot) = entries.entry(key) {
            self.cache.stores.fetch_add(1, Ordering::Relaxed);
            slot.insert(Entry {
                stats: outcome.stats.clone(),
                blocks: outcome.blocks,
                visitor: outcome.visitor.clone(),
            });
        }
    }
}

/// [`crate::parallel::run_parallel_report`] with chunk-level memoization.
///
/// Cache-eligible sweeps consult `cache` before evaluating each chunk and
/// offer fault-free chunk outcomes back to it; the merged outcome is
/// bit-identical to an uncached run (see the module-level soundness
/// argument). Two kinds of sweep bypass the cache entirely and run exactly
/// like [`crate::parallel::run_parallel_report`]:
///
/// * plans with opaque (closure-backed) steps — their behavior is not pinned
///   by the structural hash;
/// * sweeps with a fault injector — replaying a clean outcome would skip the
///   injection a cold run performs.
///
/// The report's [`SweepReport::cache_hits`] / `cache_misses` count this
/// run's chunk-level cache traffic; `cache.stats()` tracks lifetime totals.
pub fn run_cached<V, F>(
    lp: &LoweredPlan,
    opts: &ParallelOptions,
    cache: &SweepCache<V>,
    scope: &str,
    make_visitor: F,
) -> Result<(SweepOutcome<V>, SweepReport), SweepError>
where
    V: Visitor + SaveState + Clone + Send + Sync,
    F: Fn() -> V + Sync,
{
    if lp.has_opaque_steps() || opts.injector.is_some() {
        return run_supervised(lp, opts, make_visitor, None, None, None);
    }
    // [`EngineOptions::signature`] is the single execution-options
    // fingerprint shared with the checkpoint compatibility check; folding it
    // into the scope keeps any two option sets (including engine tiers,
    // whose PruneStats accounting differs) from sharing cache entries.
    let scope = format!("{scope}|{}", opts.engine.signature());
    let memo = cache.scoped(lp.structural_hash(), &scope);
    run_supervised(lp, opts, make_visitor, None, None, Some(&memo))
}

#[cfg(test)]
mod tests {
    use super::*;
    use beast_core::constraint::ConstraintClass;
    use beast_core::expr::var;
    use beast_core::plan::{Plan, PlanOptions};
    use beast_core::space::Space;

    use crate::parallel::run_parallel_report;
    use crate::visit::FingerprintVisitor;

    fn lowered(cap: i64) -> LoweredPlan {
        let s = Space::builder("cache-unit")
            .constant("cap", cap)
            .range("a", 1, 33)
            .range("b", 1, 33)
            .derived("ab", var("a") * var("b"))
            .constraint("over", ConstraintClass::Hard, var("ab").gt(var("cap")))
            .build()
            .unwrap();
        let plan = Plan::new(&s, PlanOptions::default()).unwrap();
        LoweredPlan::new(&plan).unwrap()
    }

    fn opts() -> ParallelOptions {
        ParallelOptions { threads: 2, chunk_count: 8, ..ParallelOptions::default() }
    }

    #[test]
    fn warm_run_hits_every_chunk_and_matches_cold() {
        let lp = lowered(300);
        let cache: SweepCache<FingerprintVisitor> = SweepCache::new();
        let (cold_ref, _) =
            run_parallel_report(&lp, &opts(), FingerprintVisitor::new).unwrap();
        let (cold, cold_rep) =
            run_cached(&lp, &opts(), &cache, "unit", FingerprintVisitor::new).unwrap();
        assert_eq!(cold.visitor, cold_ref.visitor, "caching must not change a cold run");
        assert_eq!(cold_rep.cache_hits, 0);
        assert_eq!(cold_rep.cache_misses, 8);

        let (warm, warm_rep) =
            run_cached(&lp, &opts(), &cache, "unit", FingerprintVisitor::new).unwrap();
        assert_eq!(warm.visitor, cold.visitor);
        assert_eq!(warm.stats, cold.stats);
        assert_eq!(warm.blocks, cold.blocks);
        assert_eq!(warm_rep.cache_hits, 8);
        assert_eq!(warm_rep.cache_misses, 0);
        assert_eq!(warm_rep.survivors, cold_rep.survivors);
        assert_eq!(cache.stats().entries, 8);
    }

    #[test]
    fn scope_separates_otherwise_identical_sweeps() {
        let lp = lowered(300);
        let cache: SweepCache<FingerprintVisitor> = SweepCache::new();
        run_cached(&lp, &opts(), &cache, "dev-A", FingerprintVisitor::new).unwrap();
        let (_, rep) =
            run_cached(&lp, &opts(), &cache, "dev-B", FingerprintVisitor::new).unwrap();
        assert_eq!(rep.cache_hits, 0, "different scope must miss");
    }

    #[test]
    fn plan_change_separates_keys() {
        let cache: SweepCache<FingerprintVisitor> = SweepCache::new();
        run_cached(&lowered(300), &opts(), &cache, "unit", FingerprintVisitor::new).unwrap();
        let (_, rep) =
            run_cached(&lowered(200), &opts(), &cache, "unit", FingerprintVisitor::new).unwrap();
        assert_eq!(rep.cache_hits, 0, "changed folded constant must miss");
    }

    #[test]
    fn injector_bypasses_the_cache() {
        let lp = lowered(300);
        let cache: SweepCache<FingerprintVisitor> = SweepCache::new();
        run_cached(&lp, &opts(), &cache, "unit", FingerprintVisitor::new).unwrap();
        let with_injector = ParallelOptions {
            injector: Some(crate::fault::FaultInjector::new(7)),
            fault_policy: crate::fault::FaultPolicy::QuarantineChunk,
            ..opts()
        };
        let (_, rep) =
            run_cached(&lp, &with_injector, &cache, "unit", FingerprintVisitor::new).unwrap();
        assert_eq!(rep.cache_hits + rep.cache_misses, 0, "injector sweeps must not touch cache");
    }

    #[test]
    fn cache_file_round_trips() {
        let dir = std::env::temp_dir().join("beast-cache-unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.json");
        std::fs::remove_file(&path).ok();

        let lp = lowered(300);
        let cache = SweepCache::with_path(&path, &FingerprintVisitor::new).unwrap();
        let (cold, _) =
            run_cached(&lp, &opts(), &cache, "unit", FingerprintVisitor::new).unwrap();
        cache.persist().unwrap();

        let reloaded = SweepCache::with_path(&path, &FingerprintVisitor::new).unwrap();
        assert_eq!(reloaded.stats().entries, 8);
        let (warm, rep) =
            run_cached(&lp, &opts(), &reloaded, "unit", FingerprintVisitor::new).unwrap();
        assert_eq!(rep.cache_hits, 8);
        assert_eq!(warm.visitor, cold.visitor);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_cache_file_is_an_error_not_a_cold_start() {
        let dir = std::env::temp_dir().join("beast-cache-unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.json");
        std::fs::write(&path, "{\"format\":1,\"entries\":[{\"key\":").unwrap();
        assert!(SweepCache::<FingerprintVisitor>::with_path(&path, &FingerprintVisitor::new)
            .is_err());
        std::fs::remove_file(&path).ok();
    }
}
