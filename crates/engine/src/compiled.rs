//! The *compiled* backend: the in-process analog of the paper's generated C.
//!
//! A [`LoweredPlan`] — constants folded, variables assigned to dense `i64`
//! slots, expressions reduced to integer IR — is flattened into a **threaded-
//! code program**: one linear instruction array with explicit jump offsets,
//! executed with plain machine integers for loop control. There is no node
//! tree and no recursion on the hot path, mirroring the shape of the paper's
//! generated C (a single function of nested `for` loops and `continue`s).
//! Loop bounds are evaluated once at loop entry (they are invariant inside
//! the loop by the planner's dependency ordering), and every expression is a
//! peephole-optimized postfix program. This is the backend that turns the
//! paper's 18.5-hour Python sweep into minutes (Section XI-D), and the one
//! the multithreaded driver parallelizes.
//!
//! # Interval block pruning
//!
//! On top of the paper's per-point hoisted checks, the engine performs
//! *block pruning* driven by the static interval analysis in
//! [`beast_core::interval`]: at entry to every non-outermost loop it
//! propagates `[lo, hi]` bounds through the subtree's binds, defines and
//! checks. A constraint whose interval excludes 0 rejects every point of
//! the subtree, so the subtree is skipped without enumeration; a constraint
//! whose interval is exactly `[0, 0]` can never reject, so its per-point
//! evaluation is elided for the duration of the subtree (while still being
//! *counted* as evaluated-and-passed, which keeps the pruning funnel
//! bit-for-bit comparable with the walker). Verdicts are only trusted when
//! the analysis also proves the subtree cannot raise an evaluation error
//! before the deciding check, so error semantics are preserved exactly.
//! Survivors and visit order are identical with intervals on or off; only
//! the per-constraint `evaluated` totals shrink when whole subtrees are
//! skipped (reported separately in [`BlockStats`]).
//!
//! The outermost loop is deliberately *not* guarded: its entry analysis
//! would see a chunk-dependent subdomain under the parallel driver, and
//! constraints hoisted to level 0 are re-checked per outer value anyway.
//! Skipping it keeps serial and chunked runs bit-for-bit identical.
//!
//! Opaque (deferred/closure) definitions are supported by calling back into
//! the Rust closures through a slot-backed [`Bindings`] view; such calls
//! happen once per realization, not per point, so they do not change the
//! asymptotic cost profile. Opaque steps are treated as unknowable by the
//! interval analysis (top interval, possibly failing), which disables block
//! verdicts below them.
//!
//! # Congruence pruning
//!
//! The guard additionally tracks the congruence domain of
//! [`beast_core::analyze::congruence`] in lockstep with the intervals (the
//! reduced product): a stepped range carries `value ≡ start (mod |step|)`,
//! and divisibility constraints — GEMM's `% == 0` family — become
//! statically decidable where the interval hull alone is inconclusive. A
//! check whose congruence proves it rejects the whole subdomain skips the
//! subtree exactly like an interval verdict (counted separately as
//! `congruence_skips`). The congruence half never influences the interval
//! half, so interval verdicts — and survivors and visit order — are
//! bit-identical with `congruence` on or off (`ablation_congruence`
//! asserts this).
//!
//! # Lint gate
//!
//! Per [`EngineOptions::lint`], compilation can run the
//! [`beast_core::analyze`] space linter over the lowered plan: `Warn` (the
//! default) records the diagnostic summary for sweep telemetry, `Deny`
//! additionally makes [`Compiled::run`] refuse to sweep a space with
//! error-severity findings (a provably empty space), and `Allow` skips the
//! analyzer entirely.

use std::sync::Arc;

use beast_core::analyze::{self, cg_of_bind, cg_of_values, eval_product, Congruence, LintGate, LintSummary, Product};
use beast_core::error::EvalError;
use beast_core::expr::Bindings;
use beast_core::interval::{range_value_hull, Interval, IntervalOutcome, IvProg};
use beast_core::ir::{LBody, LIter, LStep, LoweredPlan};
use beast_core::iterator::Realized;
use beast_core::schedule::{self, ScheduleMode};
use beast_core::value::Value;

use crate::point::PointRef;
use crate::postfix::Postfix;

use crate::fault::{CancelProbe, FaultAction, FaultInjector, FaultKind, FaultPolicy, FaultRecord};
use crate::lanes::{EvalScratch, Lane, LaneProg, LANES};
use crate::stats::{BlockStats, LaneStats, PruneStats};
use crate::telemetry::{GroupSchedule, ScheduleTelemetry};
use crate::visit::Visitor;
use crate::walker::SweepOutcome;

/// Which evaluation tier executes a sweep (see
/// [`EngineOptions::engine`]). Survivors, emission order and the survivor
/// fingerprint are bit-identical across tiers; only throughput and
/// telemetry differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EngineTier {
    /// The serial interpreting walker. Supported only by serial drivers
    /// (the parallel supervisor rejects it — there is nothing to chunk).
    Walker,
    /// The in-process compiled (threaded-code) engine — the default.
    #[default]
    Compiled,
    /// Runtime-native worker processes: the plan is lowered to a C chunk
    /// worker, compiled once with the host C compiler, and level-0 chunks
    /// are dispatched to it (see [`crate::native`]). Falls back to the
    /// compiled tier when no compiler is available or the plan cannot be
    /// emitted; per-chunk worker failures fall back in-process.
    Native,
}

impl EngineTier {
    /// Stable lowercase name, used in signatures, CLI flags and telemetry.
    pub fn as_str(&self) -> &'static str {
        match self {
            EngineTier::Walker => "walker",
            EngineTier::Compiled => "compiled",
            EngineTier::Native => "native",
        }
    }

    /// Parse a CLI-style tier name.
    pub fn parse(s: &str) -> Option<EngineTier> {
        match s {
            "walker" => Some(EngineTier::Walker),
            "compiled" => Some(EngineTier::Compiled),
            "native" => Some(EngineTier::Native),
            _ => None,
        }
    }
}

impl std::fmt::Display for EngineTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Tuning knobs for the compiled engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineOptions {
    /// Enable interval-based block pruning (subtree skips and check
    /// elision). On by default; survivors and visit order are identical
    /// either way, so turning it off is only useful for ablations.
    pub intervals: bool,
    /// Minimum static fanout (points below one iteration, see
    /// [`LoweredPlan::static_fanout_below`]) for a loop to get an interval
    /// guard. Guards on deep loops with tiny subtrees cost more per entry
    /// than the few points they can skip; gating them *statically* keeps
    /// the guard set — and therefore every skip/elide decision — identical
    /// across serial and parallel runs at any thread count. The default of
    /// 4 sits in the middle of the 2–8 plateau measured on the GEMM space
    /// (`ablation_intervals`); 1 guards every eligible loop.
    pub min_guard_fanout: u64,
    /// How to order the checks within each loop level (see
    /// [`beast_core::schedule`]). `Declared` — the library default — runs
    /// checks in plan order and reproduces the walker's per-constraint
    /// statistics exactly. `Static`/`Adaptive` reorder reorder-safe groups,
    /// which never changes survivors or emission order but does shift
    /// *which* constraint gets credit for a kill, so `PruneStats` may
    /// differ from declared-order runs (and, under `Adaptive`, between
    /// serial and chunked runs of the same sweep).
    pub schedule: ScheduleMode,
    /// Track the congruence domain (`x ≡ r (mod m)`) alongside intervals in
    /// the block-pruning guards, so divisibility constraints can skip
    /// subtrees the interval hull cannot decide. Only meaningful with
    /// `intervals` on. Survivors and visit order are identical either way
    /// (the congruence half never changes an interval verdict), so turning
    /// it off is only useful for ablations.
    pub congruence: bool,
    /// What to do with space-linter findings at compile time (see
    /// [`beast_core::analyze`]): record them (`Warn`, the default), refuse
    /// to sweep on error-severity findings (`Deny`), or skip the analyzer
    /// (`Allow`).
    pub lint: LintGate,
    /// Batched lane evaluation: at each innermost loop whose body lowers to
    /// straight-line defines and checks, realize the domain into fixed-width
    /// lane blocks and evaluate every slab-translatable postfix program once
    /// per block instead of once per point (see [`crate::lanes`]). Lanes a
    /// slab evaluation cannot prove infallible fall back to the per-lane
    /// scalar path, so survivors, emission order, [`PruneStats`] and
    /// [`BlockStats`] are bit-identical with batching on or off (asserted by
    /// the determinism suite and the `ablation_batch` bench). Turning it off
    /// also skips superinstruction fusion, reproducing the pre-batching
    /// engine instruction-for-instruction — only useful for ablations and
    /// the `--no-batch` CLI flag. The tier disables itself at runtime for
    /// chunks with a fault injector attached (injected faults are keyed on
    /// per-point visit ordinals) and under the adaptive schedule (group
    /// dispatch rewrites the instruction stream mid-run).
    pub batch: bool,
    /// Lane-block width for the batch tier, clamped to `1..=64` (the
    /// survivor-bitmask width). The default of 64 maximizes slab
    /// utilization; smaller widths only matter for experiments.
    pub lane_width: u32,
    /// Which evaluation tier executes the sweep. `Compiled` (the default)
    /// runs in process; `Native` dispatches chunks to a gcc-compiled worker
    /// binary with graceful fallback; `Walker` is serial-only. Results are
    /// bit-identical across tiers.
    pub engine: EngineTier,
}

impl Default for EngineOptions {
    fn default() -> EngineOptions {
        EngineOptions {
            intervals: true,
            min_guard_fanout: 4,
            schedule: ScheduleMode::Declared,
            congruence: true,
            lint: LintGate::Warn,
            batch: true,
            lane_width: 64,
            engine: EngineTier::Compiled,
        }
    }
}

impl EngineOptions {
    /// Options with block pruning disabled (the paper's plain per-point
    /// engine; used by the `ablation_intervals` bench and `--no-intervals`).
    pub fn no_intervals() -> EngineOptions {
        EngineOptions { intervals: false, ..EngineOptions::default() }
    }

    /// Options with interval pruning on but the congruence half disabled
    /// (used by the `ablation_congruence` bench and `--no-congruence`).
    pub fn no_congruence() -> EngineOptions {
        EngineOptions { congruence: false, ..EngineOptions::default() }
    }

    /// Default options with the given constraint-schedule mode.
    pub fn scheduled(mode: ScheduleMode) -> EngineOptions {
        EngineOptions { schedule: mode, ..EngineOptions::default() }
    }

    /// Options with the batched lane tier disabled (used by the
    /// `ablation_batch` bench and `--no-batch`).
    pub fn no_batch() -> EngineOptions {
        EngineOptions { batch: false, ..EngineOptions::default() }
    }

    /// Default options on the runtime-native tier (used by the
    /// `ablation_native` bench and `--engine native`).
    pub fn native() -> EngineOptions {
        EngineOptions { engine: EngineTier::Native, ..EngineOptions::default() }
    }

    /// Exact execution-options fingerprint: every knob that can change a
    /// sweep's counters, telemetry provenance or execution tier, in a
    /// stable printable form. This single signature keys both the
    /// fingerprint-keyed sub-sweep cache ([`crate::service::cache`]) and
    /// the checkpoint resume compatibility check, so a future option can
    /// never silently alias cache entries or resume across incompatible
    /// configurations — a pinned test asserts the exact default string and
    /// the struct size, forcing this function to be revisited whenever a
    /// field is added. The lint gate is excluded: it gates compilation but
    /// never alters sweep results.
    pub fn signature(&self) -> String {
        format!(
            "iv{}cg{}g{}{:?}b{}w{}e{}",
            u8::from(self.intervals),
            u8::from(self.congruence),
            self.min_guard_fanout,
            self.schedule,
            u8::from(self.batch),
            self.lane_width,
            self.engine.as_str()
        )
    }
}

/// A loop domain in the flat program.
#[derive(Debug, Clone)]
enum CDomain {
    /// Range with postfix-compiled bounds evaluated once at loop entry.
    Range { start: Postfix, stop: Postfix, step: Postfix },
    /// Static list of values, shared (not deep-copied) across clones and
    /// parallel chunk runs. `lo`/`hi`/`cg` are the precomputed interval and
    /// congruence hulls for the guard.
    Values { values: Arc<[i64]>, lo: i64, hi: i64, cg: Congruence },
    /// Opaque: realize through the space's iterator definition.
    Opaque { iter: usize },
}

/// One instruction of the threaded-code program.
///
/// Jump fields are absolute instruction indices. Control flow is a single
/// `ip` cursor: checks jump to the innermost enclosing loop's [`Op::Next`]
/// on rejection (`continue`), loop entries jump past their [`Op::Next`]
/// when the domain is empty or the subtree is block-pruned, and preamble
/// checks jump to [`Op::Halt`].
#[derive(Debug, Clone)]
enum Op {
    /// Enter loop `loop_id`: realize the domain, run the interval guard,
    /// bind the first value. `next` is the index of the loop's `Next`
    /// instruction (the loop exits to `next + 1`).
    Enter { loop_id: u32, slot: u32, domain: CDomain, next: u32 },
    /// Advance loop `loop_id`; jump back to `body` (= its `Enter + 1`) or
    /// fall through when exhausted.
    Next { loop_id: u32, slot: u32, body: u32 },
    /// Evaluate a derived expression into a slot.
    Define { slot: u32, expr: Postfix },
    /// Evaluate an opaque derived through the closure callback.
    DefineOpaque { slot: u32, derived: usize },
    /// Evaluate a constraint; on rejection jump to `on_reject`. `elide_bit`
    /// is this check's position in the block pruner's elision bitmask
    /// (`None` for preamble checks or beyond 64 constraints).
    Check { constraint: u32, expr: Postfix, elide_bit: Option<u8>, on_reject: u32 },
    /// Evaluate an opaque constraint through the closure callback.
    CheckOpaque { constraint: u32, on_reject: u32 },
    /// Adaptive-schedule check group: evaluate the members of
    /// `agroups[group]` in the group's *current* per-run order — each
    /// member preceded by the not-yet-run defines of its closure — jumping
    /// to the shared reject target on the first rejection, and executing
    /// the remaining defines before falling through when every member
    /// passes (survivor points must carry all derived slots). Replaces the
    /// first op of a reorder-safe region; the remaining region positions
    /// keep their original (now unreachable) ops — the only jump into a
    /// region targets its first position (`Enter + 1` when the region
    /// opens the loop body), since reject targets are always a `Next`, an
    /// `Enter + 1`, or `Halt`. Once a group's order freezes mid-run, the
    /// whole span is patched back to straight-line `Define`/`Check` ops in
    /// the learned order (see `patch_frozen`), so this dispatch only pays
    /// for itself while the order is still being learned.
    CheckGroup { group: u32 },
    /// Fused superinstruction for an adjacent `Define` + `Check` pair: one
    /// dispatch evaluates the define into its slot, then the constraint.
    /// Semantically identical to the two ops it replaces (same stats, same
    /// elision, same fault sites); `fuse_id` indexes the per-run
    /// [`LaneStats::super_hits`] counter. Never emitted inside batchable
    /// innermost bodies (the batch tier's lane plans address unfused ops)
    /// or under the adaptive schedule (group patching assumes the original
    /// op spans).
    FusedDefineCheck {
        /// Destination slot of the define half.
        slot: u32,
        /// Compiled define body.
        def: Postfix,
        /// Constraint index of the check half.
        constraint: u32,
        /// Compiled predicate.
        expr: Postfix,
        /// Elision bit, as on [`Op::Check`].
        elide_bit: Option<u8>,
        /// Reject target, as on [`Op::Check`].
        on_reject: u32,
        /// Index into [`LaneStats::super_hits`].
        fuse_id: u32,
    },
    /// Record a survivor and invoke the visitor.
    Visit,
    /// End of program.
    Halt,
}

/// Slab translation of one batchable loop, executed by `run_batched` (see
/// [`EngineOptions::batch`]). An *innermost* plan (`descend == None`)
/// covers the whole body through `Visit`; a *filter* plan covers the
/// body's define/check prefix and descends into the remaining subtree —
/// from the first inner `Enter` — per surviving lane, so high-kill checks
/// at non-leaf levels still run as whole-block slabs.
#[derive(Debug, Clone)]
struct BatchPlan {
    /// Slots that vary per lane: `rows[0]` is the loop's bind slot, then
    /// one row per body define in op order.
    rows: Vec<u32>,
    /// Body (or body-prefix) steps in op order.
    steps: Vec<LaneStep>,
    /// Instruction index of the first body op (for scalar lane reruns).
    body_start: u32,
    /// Instruction index of the loop's `Next` (the shared reject target).
    next_ip: u32,
    /// Filter plans only: instruction index of the first subtree op (the
    /// first inner `Enter`), executed per surviving lane through a bounded
    /// interpreter re-entry.
    descend: Option<u32>,
    /// When no lane fell back, emission may iterate surviving lanes only
    /// and reconstruct the block-final slot state from each row's last
    /// writer, instead of replaying every lane's writes sequentially. True
    /// for all filter plans and for innermost plans whose single `Visit`
    /// is the final step (see `build_batch_plans`).
    fast_emit: bool,
}

/// One step of a [`BatchPlan`].
#[derive(Debug, Clone)]
enum LaneStep {
    /// Slab-translatable define; writes the next lane row.
    Define { prog: LaneProg },
    /// Control-flow-bearing define, evaluated per lane through the scalar
    /// evaluator; writes the next lane row.
    DefineScalar { expr: Postfix },
    /// Constraint check.
    Check { constraint: u32, elide_bit: Option<u8>, kind: LaneCheck },
    /// Survivor emission point.
    Visit,
}

/// How a [`LaneStep::Check`] predicate is evaluated.
#[derive(Debug, Clone)]
enum LaneCheck {
    /// Whole-block slab evaluation.
    Slab(LaneProg),
    /// Per-lane scalar evaluation (control-flow-bearing predicate).
    Scalar(Postfix),
}

/// One member of an adaptive check group.
#[derive(Debug, Clone)]
struct AMember {
    /// Constraint index (also the `PruneStats` row and elision-bit key).
    constraint: u32,
    /// Compiled predicate.
    expr: Postfix,
    /// Elision bit, as on [`Op::Check`].
    elide_bit: Option<u8>,
    /// Unit cost — postfix op count of the predicate plus its define
    /// closure, the denominator for kill-rate-per-op.
    cost: u32,
    /// Ascending indices into [`AGroup::defines`]: the transitive closure
    /// of region defines this predicate reads, executed on demand before
    /// the predicate (ascending = dependency order).
    deps: Vec<u16>,
}

/// One lazily-executed define of an adaptive check group's region.
#[derive(Debug, Clone)]
struct ADefine {
    /// Destination slot.
    slot: u32,
    /// Compiled body (infallible over the subtree by region construction).
    expr: Postfix,
}

/// A reorder-safe region (checks + interleaved defines) executed through
/// [`Op::CheckGroup`].
///
/// All members share one loop scope, hence one reject target; members and
/// defines are infallible, so evaluating units in any order — defines on
/// demand, the rest before falling through — is semantics-preserving (AND
/// over pure predicates; defines are pure functions of bound slots).
/// Orders and counters live in per-run [`State`] — worker-local under the
/// parallel driver — so adapting the order can never perturb survivors or
/// emission order at any thread count.
#[derive(Debug, Clone)]
struct AGroup {
    /// Members in static-schedule order (the initial per-run order).
    members: Vec<AMember>,
    /// The region's defines in dependency order, run at most once per
    /// group execution (tracked in a bitmask, hence ≤ 64 per region).
    defines: Vec<ADefine>,
    /// Shared reject target (the enclosing loop's `Next`).
    on_reject: u32,
    /// Instruction index of the region's first op (the `CheckGroup`).
    start: u32,
    /// Instruction index just past the region (the all-pass successor).
    end: u32,
}

/// Per-run mutable state of one adaptive group.
#[derive(Debug, Clone)]
struct GroupState {
    /// Current evaluation order (member indices).
    order: Vec<u16>,
    /// Per-member evaluations this run.
    evaluated: Vec<u64>,
    /// Per-member rejections this run.
    killed: Vec<u64>,
    /// Group executions since the run started; every
    /// [`ADAPT_EPOCH`]th execution re-sorts `order`.
    ticks: u32,
    /// Consecutive re-sorts that left `order` unchanged. At
    /// [`ADAPT_FREEZE`] the group is converged: counter updates and
    /// re-sorts stop, so the steady-state dispatch costs the same as the
    /// plain per-check path (the counters are only read by `resort`).
    stable: u8,
}

/// Group executions between adaptive re-sorts. Small enough to adapt within
/// one scheduler chunk, large enough that sorting cost vanishes against the
/// member evaluations it amortizes.
const ADAPT_EPOCH: u32 = 256;

/// Consecutive no-change re-sorts after which a group's order is frozen
/// for the rest of the run (chunk-local, like all adaptive state).
const ADAPT_FREEZE: u8 = 4;

/// Re-sort a group's evaluation order by observed kill rate per unit cost,
/// descending — the online analogue of the static expected-cost-to-kill
/// ordering. Members never evaluated this run (everything ahead of them
/// always killed first) sink to the back; ties keep static-schedule order.
/// Tracks convergence: an unchanged order bumps [`GroupState::stable`],
/// a changed one resets it.
fn resort(g: &AGroup, gs: &mut GroupState) {
    let mut order = std::mem::take(&mut gs.order);
    let before = order.clone();
    let score = |mi: u16| {
        let mi = mi as usize;
        if gs.evaluated[mi] == 0 {
            return -1.0;
        }
        let kill_rate = gs.killed[mi] as f64 / gs.evaluated[mi] as f64;
        kill_rate / g.members[mi].cost as f64
    };
    order.sort_by(|&a, &b| {
        score(b).partial_cmp(&score(a)).unwrap().then_with(|| a.cmp(&b))
    });
    gs.stable = if order == before { gs.stable.saturating_add(1) } else { 0 };
    gs.order = order;
}

/// A reorder-safe check group as reported in telemetry: its loop level and
/// member constraints in scheduled order (tracked for every mode, not just
/// adaptive, so reports can always show the per-level order).
#[derive(Debug, Clone)]
struct SchedGroup {
    level: usize,
    constraints: Vec<u32>,
}

/// One step of a loop's precompiled interval-guard program: the lowered
/// steps of the subtree, lifted to interval semantics. Expressions are
/// pre-flattened to [`IvProg`] so guard runs, like the point path, execute
/// linear programs instead of walking boxed trees.
#[derive(Debug, Clone)]
enum GStep {
    /// An inner loop bind over a range: the slot's interval becomes the
    /// hull of the bound intervals.
    BindRange { slot: u32, start: IvProg, stop: IvProg, step: IvProg },
    /// An inner loop bind over a static list (bounds and congruence hull
    /// precomputed).
    BindValues { slot: u32, lo: i64, hi: i64, cg: Congruence },
    /// An inner opaque bind: unknowable, possibly failing.
    BindOpaque { slot: u32 },
    /// A derived definition.
    Define { slot: u32, prog: IvProg },
    /// An opaque derived: unknowable, possibly failing.
    DefineOpaque { slot: u32 },
    /// A constraint check; `elide_bit` mirrors the flat program's bit.
    Check { prog: IvProg, elide_bit: Option<u8> },
    /// An opaque constraint: possibly failing, never decidable.
    CheckOpaque,
}

/// Memoized outcome of one master guard step (see [`GuardInfo`]).
#[derive(Debug, Clone, Copy)]
struct GCache {
    /// The step cannot raise an evaluation error for any point of the
    /// subdomain it was last evaluated over.
    clean: bool,
    /// Checks only: the interval or congruence excludes 0, i.e. the
    /// constraint statically rejects the whole subdomain (skip-worthy given
    /// a clean prefix).
    worthy: bool,
    /// Checks only: `worthy` holds but only the congruence half proved it
    /// (the interval was inconclusive) — counted as a congruence skip.
    by_cg: bool,
    /// Checks only: the interval is exactly [0,0] or the congruence is the
    /// point 0 (statically passes).
    elidable: bool,
    /// Loop id of the guard run that last evaluated this position. A cache
    /// written by a *deeper* guard was computed with tighter, sibling-
    /// specific inputs (its point seeds and exact domain) and is not an
    /// over-approximation for a shallower guard, so a guard at loop `l`
    /// only reuses entries with `writer <= l`.
    writer: u16,
    /// For write positions (binds/defines): the interval this step wrote,
    /// restored into `ivals` on reuse so later dirty steps don't read a
    /// slot clobbered by a deeper guard's run.
    iv: Interval,
    /// For write positions: the congruence this step wrote, restored into
    /// `cvals` on reuse (mirrors `iv`).
    cg: Congruence,
}

impl Default for GCache {
    fn default() -> GCache {
        GCache {
            clean: false,
            worthy: false,
            by_cg: false,
            elidable: false,
            writer: 0,
            iv: Interval::TOP,
            cg: Congruence::top(),
        }
    }
}

/// The interval-guard program attached to one loop's entry.
///
/// All guards share one master step list (each guard's range is a suffix of
/// it), and step outcomes are memoized per position: a run re-evaluates only
/// the `dirty` positions — those transitively depending on slots whose
/// values can have changed since the nearest enclosing kept guard ran — and
/// reads cached outcomes for the rest. The caches are pure functions of the
/// current slot values, so verdicts are identical to full re-evaluation
/// (and hence identical across serial and chunked parallel runs).
#[derive(Debug, Clone)]
struct GuardInfo {
    /// Master index of the first step after this loop's bind.
    start: u32,
    /// Slot bound by the guarded loop (receives the domain interval).
    slot: u32,
    /// Slots bound/defined between the nearest enclosing kept guard's bind
    /// and this loop's bind: the only point values that can have changed
    /// since that guard ran, reseeded from `slots` on every run.
    seed: Vec<u32>,
    /// Master positions whose inputs transitively depend on `seed` or this
    /// loop's own slot; everything else reads its memoized outcome.
    dirty: Vec<bool>,
}

/// Verdict of one guard run.
enum GuardVerdict {
    /// Some constraint is statically false over the whole subtree: skip it.
    /// `by_congruence` is set when only the congruence half could decide it.
    Skip { by_congruence: bool },
    /// Bitmask of checks that are statically true over the subtree and can
    /// be elided (possibly empty).
    Elide(u64),
}

/// The compiled evaluation backend.
pub struct Compiled {
    lp: LoweredPlan,
    /// The flat threaded-code program.
    ops: Vec<Op>,
    /// Shared interval-guard step list; each loop's guard range is a suffix.
    gmaster: Vec<GStep>,
    /// Per-loop interval guards (`None` for the outermost loop, for loops
    /// with nothing decidable below them, for loops whose guard could never
    /// decide anything its nearest guarded ancestor didn't already decide,
    /// or trivially when the program has no loops).
    guards: Vec<Option<GuardInfo>>,
    /// Per-loop lower-bound static fanout below one iteration, for
    /// points-skipped estimates.
    fanout_below: Vec<u64>,
    /// Instruction index of the outermost `Enter` (None for loop-free
    /// programs, which cannot occur for valid spaces).
    first_enter: Option<usize>,
    /// Per-loop batch plans (`None` for non-innermost loops, bodies with
    /// opaque or grouped ops, or when the adaptive schedule owns the
    /// instruction stream).
    plans: Vec<Option<BatchPlan>>,
    /// Number of fused superinstructions in `ops` (sizes the per-run
    /// [`LaneStats::super_hits`] table).
    n_fused: usize,
    /// Adaptive check groups (empty unless `opts.schedule` is `Adaptive`).
    agroups: Vec<AGroup>,
    /// Reorder-safe groups in scheduled order, for telemetry (all modes).
    sched_groups: Vec<SchedGroup>,
    point_names: Arc<[Arc<str>]>,
    /// Space-linter summary recorded at compile time (`None` when
    /// `opts.lint` is [`LintGate::Allow`]).
    lint: Option<LintSummary>,
    opts: EngineOptions,
}

impl Compiled {
    /// Build the flat program from a lowered plan with default options
    /// (interval block pruning on).
    pub fn new(lp: LoweredPlan) -> Compiled {
        Compiled::with_options(lp, EngineOptions::default())
    }

    /// Build the flat program with explicit engine options.
    pub fn with_options(mut lp: LoweredPlan, opts: EngineOptions) -> Compiled {
        // Static constraint scheduling happens on the lowered plan itself,
        // before ops and guards are built, so both see the scheduled order
        // (adaptive mode starts from the static order).
        if opts.schedule != ScheduleMode::Declared {
            schedule::static_schedule(&mut lp);
        }
        // Pre-sweep lint gate: analyze the exact plan the engine will
        // execute. `Deny` is enforced lazily in `run` so compilation itself
        // stays infallible.
        let lint = (opts.lint != LintGate::Allow)
            .then(|| analyze::check_space(&lp).summary());
        let mut ops: Vec<Op> = Vec::new();
        // Open loops: (loop_id, enter_ip, check ips awaiting this loop's
        // Next as their reject target).
        let mut open: Vec<(u32, usize)> = Vec::new();
        let mut pending_rejects: Vec<Vec<usize>> = vec![Vec::new()];
        let mut n_loops = 0u32;
        // Step index → the instruction it emitted (every step emits exactly
        // one op), for locating check-group runs after patching.
        let mut step_ops: Vec<u32> = Vec::with_capacity(lp.steps.len());

        for step in &lp.steps {
            step_ops.push(ops.len() as u32);
            match step {
                LStep::Bind { slot, domain, iter, .. } => {
                    let d = match domain {
                        LIter::Range { start, stop, step } => CDomain::Range {
                            start: Postfix::compile(start),
                            stop: Postfix::compile(stop),
                            step: Postfix::compile(step),
                        },
                        LIter::Values(v) => CDomain::Values {
                            values: Arc::from(v.as_slice()),
                            lo: v.iter().copied().min().unwrap_or(0),
                            hi: v.iter().copied().max().unwrap_or(0),
                            cg: cg_of_values(v),
                        },
                        LIter::Opaque { .. } => CDomain::Opaque { iter: *iter },
                    };
                    let loop_id = n_loops;
                    n_loops += 1;
                    open.push((loop_id, ops.len()));
                    pending_rejects.push(Vec::new());
                    // `next` is patched when the loop closes.
                    ops.push(Op::Enter { loop_id, slot: *slot, domain: d, next: 0 });
                }
                LStep::Define { slot, body, derived } => ops.push(match body {
                    LBody::Expr(e) => Op::Define { slot: *slot, expr: Postfix::compile(e) },
                    LBody::Opaque => Op::DefineOpaque { slot: *slot, derived: *derived },
                }),
                LStep::Check { constraint, body } => {
                    pending_rejects.last_mut().expect("scope").push(ops.len());
                    let elide_bit = if open.is_empty() || *constraint >= 64 {
                        None
                    } else {
                        Some(*constraint as u8)
                    };
                    // `on_reject` is patched when the enclosing scope closes.
                    ops.push(match body {
                        LBody::Expr(e) => Op::Check {
                            constraint: *constraint as u32,
                            expr: Postfix::compile(e),
                            elide_bit,
                            on_reject: 0,
                        },
                        LBody::Opaque => {
                            Op::CheckOpaque { constraint: *constraint as u32, on_reject: 0 }
                        }
                    });
                }
                LStep::Visit => ops.push(Op::Visit),
            }
        }

        // Close loops innermost-first: emit each Next, patch its Enter and
        // the reject targets of the checks in its body.
        let mut first_enter = None;
        while let Some((loop_id, enter_ip)) = open.pop() {
            let next_ip = ops.len();
            let slot = match &ops[enter_ip] {
                Op::Enter { slot, .. } => *slot,
                _ => unreachable!("enter ip points at Enter"),
            };
            ops.push(Op::Next { loop_id, slot, body: (enter_ip + 1) as u32 });
            if let Op::Enter { next, .. } = &mut ops[enter_ip] {
                *next = next_ip as u32;
            }
            for check_ip in pending_rejects.pop().expect("scope") {
                match &mut ops[check_ip] {
                    Op::Check { on_reject, .. } | Op::CheckOpaque { on_reject, .. } => {
                        *on_reject = next_ip as u32;
                    }
                    _ => unreachable!("check ip points at a check"),
                }
            }
            first_enter = Some(enter_ip);
        }
        let halt_ip = ops.len();
        ops.push(Op::Halt);
        // Preamble checks (outside every loop) reject the whole space.
        for check_ip in pending_rejects.pop().expect("preamble scope") {
            match &mut ops[check_ip] {
                Op::Check { on_reject, .. } | Op::CheckOpaque { on_reject, .. } => {
                    *on_reject = halt_ip as u32;
                }
                _ => unreachable!("check ip points at a check"),
            }
        }
        debug_assert!(pending_rejects.is_empty());

        // Reorder-safe regions: recorded for telemetry in every mode; in
        // adaptive mode each region is additionally rewired through a
        // single `CheckGroup` dispatch so the member order can change
        // per-run without touching the instruction stream.
        let mut agroups: Vec<AGroup> = Vec::new();
        let mut sched_groups: Vec<SchedGroup> = Vec::new();
        for region in schedule::check_regions(&lp) {
            let constraints: Vec<u32> = region
                .checks
                .iter()
                .map(|&si| match &lp.steps[si] {
                    LStep::Check { constraint, .. } => *constraint as u32,
                    other => unreachable!("check group holds non-check step {other:?}"),
                })
                .collect();
            sched_groups.push(SchedGroup {
                level: schedule::group_level(&lp, &region.checks),
                constraints,
            });
            if opts.schedule != ScheduleMode::Adaptive {
                continue;
            }
            let first_ip = step_ops[region.start] as usize;
            let defines: Vec<ADefine> = region
                .defines
                .iter()
                .map(|&si| {
                    let Op::Define { slot, expr } = &ops[step_ops[si] as usize] else {
                        unreachable!("region define lowered to a non-Define op");
                    };
                    ADefine { slot: *slot, expr: expr.clone() }
                })
                .collect();
            let mut members = Vec::with_capacity(region.checks.len());
            let mut reject = 0u32;
            for (k, &si) in region.checks.iter().enumerate() {
                let ip = step_ops[si] as usize;
                debug_assert!(
                    (first_ip..first_ip + (region.end - region.start)).contains(&ip),
                    "region ops must be contiguous"
                );
                let Op::Check { constraint, expr, elide_bit, on_reject } = &ops[ip] else {
                    unreachable!("check group step lowered to a non-Check op");
                };
                debug_assert!(k == 0 || reject == *on_reject, "members share one scope");
                reject = *on_reject;
                let deps: Vec<u16> = region.deps[k].iter().map(|&d| d as u16).collect();
                let closure_cost: usize =
                    deps.iter().map(|&d| defines[d as usize].expr.len()).sum();
                members.push(AMember {
                    constraint: *constraint,
                    expr: expr.clone(),
                    elide_bit: *elide_bit,
                    cost: (expr.len() + closure_cost).max(1) as u32,
                    deps,
                });
            }
            let end = (first_ip + (region.end - region.start)) as u32;
            ops[first_ip] = Op::CheckGroup { group: agroups.len() as u32 };
            agroups.push(AGroup {
                members,
                defines,
                on_reject: reject,
                start: first_ip as u32,
                end,
            });
        }

        // Batched lane tier + superinstruction fusion. Order matters: lane
        // plans are detected on the *unfused* stream (their steps mirror
        // plain Define/Check ops one-to-one), then the fusion pass skips
        // every batchable body, then the plans' instruction anchors are
        // remapped through the fusion's old→new index map. Both passes are
        // skipped entirely under the adaptive schedule (`CheckGroup`
        // dispatch and mid-run patching assume the original op spans) and
        // with `batch` off, which therefore reproduces the pre-batching
        // engine instruction-for-instruction.
        let mut plans: Vec<Option<BatchPlan>> = vec![None; n_loops as usize];
        let mut n_fused = 0usize;
        if opts.batch && agroups.is_empty() {
            plans = build_batch_plans(&ops);
            if plans.len() < n_loops as usize {
                plans.resize(n_loops as usize, None);
            }
            if let Some(fe) = first_enter {
                // Filter plans only shield their prefix: the subtree they
                // descend into runs through the interpreter and may fuse.
                let skip: Vec<(usize, usize)> = plans
                    .iter()
                    .flatten()
                    .map(|p| {
                        (p.body_start as usize, p.descend.unwrap_or(p.next_ip) as usize)
                    })
                    .collect();
                let (fused, map, nf) = fuse_ops(ops, fe, &skip);
                ops = fused;
                n_fused = nf;
                first_enter = Some(map[fe]);
                for p in plans.iter_mut().flatten() {
                    p.body_start = map[p.body_start as usize] as u32;
                    p.next_ip = map[p.next_ip as usize] as u32;
                    p.descend = p.descend.map(|d| map[d as usize] as u32);
                }
            }
        }

        let fanout_below: Vec<u64> =
            (0..n_loops as usize).map(|l| lp.static_fanout_below(l)).collect();
        let (gmaster, guards) =
            build_guards(&lp, n_loops as usize, &fanout_below, opts.min_guard_fanout);

        let point_names: Arc<[Arc<str>]> =
            Arc::from(lp.slot_names.clone().into_boxed_slice());
        Compiled {
            lp,
            ops,
            gmaster,
            guards,
            fanout_below,
            first_enter,
            plans,
            n_fused,
            agroups,
            sched_groups,
            point_names,
            lint,
            opts,
        }
    }

    /// The space-linter summary recorded at compile time (`None` when the
    /// lint gate is [`LintGate::Allow`]).
    pub fn lint_summary(&self) -> Option<LintSummary> {
        self.lint
    }

    /// The deny-gate check shared by [`Compiled::run`] and the parallel
    /// driver: `Err` when the gate is [`LintGate::Deny`] and the linter
    /// found error-severity diagnostics (a provably broken space).
    pub(crate) fn lint_denied(&self) -> Result<(), EvalError> {
        if self.opts.lint == LintGate::Deny {
            if let Some(sum) = self.lint {
                if sum.errors > 0 {
                    return Err(EvalError::Custom(format!(
                        "lint gate: {} error-severity diagnostic(s); \
                         run `repro lint` for details or relax the gate",
                        sum.errors
                    )));
                }
            }
        }
        Ok(())
    }

    /// Names reported for visited points (slot order).
    pub fn point_names(&self) -> &Arc<[Arc<str>]> {
        &self.point_names
    }

    /// The lowered plan this backend executes.
    pub fn lowered(&self) -> &LoweredPlan {
        &self.lp
    }

    /// The options this backend was built with.
    pub fn options(&self) -> EngineOptions {
        self.opts
    }

    /// Fresh per-run interpreter state. Adaptive group orders start from
    /// the static schedule on every run — chunk-local under the parallel
    /// driver, which keeps results deterministic at any thread count.
    fn fresh_state<V: Visitor>(&self, visitor: V) -> State<V> {
        State {
            stats: PruneStats::new(self.lp.plan.space().constraints().len()),
            blocks: BlockStats::default(),
            lanes: LaneStats { super_hits: vec![0; self.n_fused], ..LaneStats::default() },
            visitor,
            stack: Vec::new(),
            lscratch: Vec::new(),
            frame_pool: Vec::new(),
            ivals: vec![Interval::TOP; self.lp.n_slots as usize],
            cvals: vec![Congruence::top(); self.lp.n_slots as usize],
            gcache: vec![GCache::default(); self.gmaster.len()],
            gprimed: vec![false; self.guards.len()],
            gstack: Vec::new(),
            gpstack: Vec::new(),
            elide: 0,
            sched: self
                .agroups
                .iter()
                .map(|g| GroupState {
                    order: (0..g.members.len() as u16).collect(),
                    evaluated: vec![0; g.members.len()],
                    killed: vec![0; g.members.len()],
                    ticks: 0,
                    stable: 0,
                })
                .collect(),
            faults: Vec::new(),
            visit_ordinal: 0,
            poll: 0,
        }
    }

    /// The final adaptive group orders of a finished run, as constraint
    /// indices (`None` unless running with an adaptive schedule).
    fn final_orders<V>(&self, state: &State<V>) -> Option<Vec<Vec<u32>>> {
        if self.opts.schedule != ScheduleMode::Adaptive {
            return None;
        }
        Some(
            state
                .sched
                .iter()
                .zip(&self.agroups)
                .map(|(gs, g)| {
                    gs.order.iter().map(|&k| g.members[k as usize].constraint).collect()
                })
                .collect(),
        )
    }

    /// Run the full sweep.
    pub fn run<V: Visitor>(&self, visitor: V) -> Result<SweepOutcome<V>, EvalError> {
        self.lint_denied()?;
        let mut slots = vec![0i64; self.lp.n_slots as usize];
        let mut state = self.fresh_state(visitor);
        self.exec(0, usize::MAX, None, &mut slots, &mut state, &ChunkCtx::plain())?;
        let schedule = self.final_orders(&state);
        Ok(SweepOutcome {
            stats: state.stats,
            blocks: state.blocks,
            lanes: state.lanes,
            schedule,
            visitor: state.visitor,
        })
    }

    /// Run only a chunk of the outermost loop's domain — the parallel driver
    /// realizes the outer domain once, splits it, and calls this per worker.
    ///
    /// Preamble instructions (defines/checks before the first loop) are
    /// re-executed per chunk; they are loop-invariant so this is correct,
    /// and they are evaluated against constants so it is cheap. Their
    /// constraint counters are *not* re-recorded to keep merged statistics
    /// meaningful.
    pub fn run_outer_chunk<V: Visitor>(
        &self,
        outer_values: &[i64],
        visitor: V,
    ) -> Result<SweepOutcome<V>, EvalError> {
        self.run_outer_chunk_supervised(outer_values, visitor, &ChunkCtx::plain())
            .map(|run| run.outcome)
    }

    /// [`Compiled::run_outer_chunk`] with fault supervision: the chunk
    /// context selects the fault policy, the injector, and the cancel probe,
    /// and the result carries the faults that were skipped over. Errors that
    /// still escape (any policy but `SkipPoint`, or a fault outside every
    /// loop) carry point context; [`EvalError::Cancelled`] escapes as-is.
    pub(crate) fn run_outer_chunk_supervised<V: Visitor>(
        &self,
        outer_values: &[i64],
        visitor: V,
        ctx: &ChunkCtx<'_>,
    ) -> Result<ChunkRun<V>, EvalError> {
        let mut slots = vec![0i64; self.lp.n_slots as usize];
        let mut state = self.fresh_state(visitor);
        let Some(first_enter) = self.first_enter else {
            return Ok(ChunkRun {
                outcome: SweepOutcome {
                    stats: state.stats,
                    blocks: state.blocks,
                    lanes: state.lanes,
                    schedule: None,
                    visitor: state.visitor,
                },
                faults: Vec::new(),
            });
        };
        // Execute the preamble quietly.
        if !self.preamble(&mut slots, &mut state.stack, None)? {
            // A constants-only constraint rejected everything.
            return Ok(ChunkRun {
                outcome: SweepOutcome {
                    stats: state.stats,
                    blocks: state.blocks,
                    lanes: state.lanes,
                    schedule: None,
                    visitor: state.visitor,
                },
                faults: Vec::new(),
            });
        }
        self.exec(first_enter, usize::MAX, Some(outer_values), &mut slots, &mut state, ctx)?;
        let schedule = self.final_orders(&state);
        Ok(ChunkRun {
            outcome: SweepOutcome {
                stats: state.stats,
                blocks: state.blocks,
                lanes: state.lanes,
                schedule,
                visitor: state.visitor,
            },
            faults: state.faults,
        })
    }

    /// Execute the preamble (pre-loop defines/checks) once, *recording* the
    /// constraint evaluations into `stats`. Returns `false` if a preamble
    /// constraint rejected, in which case the whole space is empty. The
    /// parallel driver calls this once so that merged statistics match a
    /// serial run (workers execute the preamble quietly).
    pub(crate) fn preamble_record(&self, stats: &mut PruneStats) -> Result<bool, EvalError> {
        let mut slots = vec![0i64; self.lp.n_slots as usize];
        let mut stack = Vec::new();
        self.preamble(&mut slots, &mut stack, Some(stats))
    }

    /// Shared preamble executor; records into `stats` when provided.
    fn preamble(
        &self,
        slots: &mut [i64],
        stack: &mut Vec<i64>,
        mut stats: Option<&mut PruneStats>,
    ) -> Result<bool, EvalError> {
        let end = self.first_enter.unwrap_or(self.ops.len().saturating_sub(1));
        // Preamble expressions read only constants; errors here are
        // space-level, so the context carries the site name and no bindings.
        let at = |slot: &u32| self.lp.slot_names[*slot as usize].to_string();
        for op in &self.ops[..end] {
            match op {
                Op::Define { slot, expr } => {
                    slots[*slot as usize] = expr
                        .eval(slots, stack)
                        .map_err(|e| e.with_point(at(slot), Vec::new()))?;
                }
                Op::DefineOpaque { slot, derived } => {
                    let v = {
                        let view = self.bindings_view(slots);
                        self.lp.plan.space().deriveds()[*derived]
                            .kind
                            .eval(&view)
                            .map_err(|e| e.with_point(at(slot), Vec::new()))?
                    };
                    slots[*slot as usize] =
                        v.as_int().map_err(|e| e.with_point(at(slot), Vec::new()))?;
                }
                Op::Check { constraint, expr, .. } => {
                    let rejected = expr.eval(slots, stack).map_err(|e| {
                        let name =
                            &self.lp.plan.space().constraints()[*constraint as usize].name;
                        e.with_point(name.to_string(), Vec::new())
                    })? != 0;
                    if let Some(stats) = stats.as_deref_mut() {
                        stats.record(*constraint as usize, rejected);
                    }
                    if rejected {
                        return Ok(false);
                    }
                }
                Op::CheckOpaque { constraint, .. } => {
                    let rejected = {
                        let view = self.bindings_view(slots);
                        self.lp.plan.space().constraints()[*constraint as usize]
                            .kind
                            .rejects(&view)
                            .map_err(|e| {
                                let name = &self.lp.plan.space().constraints()
                                    [*constraint as usize]
                                    .name;
                                e.with_point(name.to_string(), Vec::new())
                            })?
                    };
                    if let Some(stats) = stats.as_deref_mut() {
                        stats.record(*constraint as usize, rejected);
                    }
                    if rejected {
                        return Ok(false);
                    }
                }
                Op::CheckGroup { .. } => {
                    unreachable!("check groups require an enclosing loop")
                }
                Op::FusedDefineCheck { .. } => {
                    unreachable!("fusion never touches the preamble")
                }
                Op::Visit | Op::Enter { .. } | Op::Next { .. } | Op::Halt => break,
            }
        }
        Ok(true)
    }

    /// The constraint schedule this backend runs, for
    /// [`SweepReport`](crate::telemetry::SweepReport)s:
    /// mode, per-constraint ranks in the flattened (scheduled) check order,
    /// and per-group initial/final member orders. `final_orders` — the
    /// [`SweepOutcome::schedule`] of a finished adaptive run — substitutes
    /// the observed final orders; without it (or for declared/static modes)
    /// the final order equals the initial one.
    pub fn schedule_telemetry(
        &self,
        final_orders: Option<&[Vec<u32>]>,
    ) -> ScheduleTelemetry {
        let constraints = self.lp.plan.space().constraints();
        let name = |c: &u32| constraints[*c as usize].name.to_string();
        let groups = self
            .sched_groups
            .iter()
            .enumerate()
            .map(|(i, g)| {
                let initial: Vec<String> = g.constraints.iter().map(name).collect();
                let final_order = final_orders
                    .and_then(|f| f.get(i))
                    .map(|o| o.iter().map(name).collect())
                    .unwrap_or_else(|| initial.clone());
                GroupSchedule { level: g.level, initial, final_order }
            })
            .collect();
        ScheduleTelemetry {
            mode: self.opts.schedule.to_string(),
            ranks: schedule::check_ranks(&self.lp),
            groups,
        }
    }

    /// Realize the outermost (level-0) loop's domain.
    ///
    /// Level-0 iterators depend only on constants, so this is cheap and
    /// side-effect free. The parallel driver splits this domain into
    /// scheduler chunks; it is public so external tooling can size or
    /// inspect a sweep before running it.
    pub fn outer_domain(&self) -> Result<Vec<i64>, EvalError> {
        let slots = vec![0i64; self.lp.n_slots as usize];
        let Some(first_enter) = self.first_enter else {
            return Ok(Vec::new());
        };
        let Op::Enter { slot, domain, .. } = &self.ops[first_enter] else {
            unreachable!("first_enter points at Enter");
        };
        let at = |e: EvalError| {
            e.with_point(self.lp.slot_names[*slot as usize].to_string(), Vec::new())
        };
        match domain {
            CDomain::Range { start, stop, step } => {
                let mut stack = Vec::new();
                let r = Realized::Range {
                    start: start.eval(&slots, &mut stack).map_err(at)?,
                    stop: stop.eval(&slots, &mut stack).map_err(at)?,
                    step: step.eval(&slots, &mut stack).map_err(at)?,
                };
                r.iter().map(|v| v.as_int().map_err(at)).collect()
            }
            CDomain::Values { values, .. } => Ok(values.to_vec()),
            CDomain::Opaque { iter } => {
                let view = self.bindings_view(&slots);
                let r = self.lp.plan.space().realize_iter(*iter, &view).map_err(at)?;
                r.iter().map(|v| v.as_int().map_err(at)).collect()
            }
        }
    }

    fn bindings_view<'a>(&'a self, slots: &'a [i64]) -> SlotBindings<'a> {
        SlotBindings {
            names: &self.lp.slot_names,
            slots,
            consts: self.lp.plan.space().consts(),
        }
    }

    /// The threaded-code interpreter: a single `ip` cursor over the flat
    /// instruction array, running from `start_ip` until `Halt` or until the
    /// cursor lands on `end_ip` (exclusive; pass `usize::MAX` to run to
    /// `Halt`). `outer_override`, when given, replaces the outermost loop's
    /// domain with an explicit value list (the parallel driver's chunk);
    /// `ctx` is the chunk's supervision context — under
    /// [`FaultPolicy::SkipPoint`] evaluation errors are recovered from by
    /// jumping to the innermost open loop's `Next` (the same transition as
    /// a check rejection, so interpreter state stays consistent), every
    /// escaping error is annotated with point context, the injector can
    /// force faults at visited points, and an armed cancel probe is polled
    /// every [`CANCEL_POLL_EVERY`] loop advances.
    ///
    /// The bounded form is how filter plans descend: `run_batched` re-enters
    /// the interpreter at a subtree's first `Enter` with `end_ip` set to the
    /// enclosing loop's `Next`, whose frame this invocation never touches
    /// (inner loop ids are disjoint, and the `end_ip` stop fires before the
    /// `Next` op could execute). Loop frames are pooled on [`State`]
    /// because those re-entries happen once per surviving lane.
    fn exec<V: Visitor>(
        &self,
        start_ip: usize,
        end_ip: usize,
        outer_override: Option<&[i64]>,
        slots: &mut [i64],
        state: &mut State<V>,
        ctx: &ChunkCtx<'_>,
    ) -> Result<(), EvalError> {
        let mut frames = self.checkout_frames(state);
        let r = self.exec_frames(
            start_ip,
            end_ip,
            outer_override,
            slots,
            state,
            ctx,
            &mut frames,
        );
        state.frame_pool.push(frames);
        r
    }

    /// Take a loop-frame array from the pool (or grow a fresh one). The
    /// caller runs `exec_frames` against it and pushes it back when done;
    /// entries are fully initialized at each `Enter`, so recycled frames
    /// never leak state between runs.
    fn checkout_frames<V>(&self, state: &mut State<V>) -> Vec<Frame> {
        let mut frames = state.frame_pool.pop().unwrap_or_default();
        if frames.len() < self.guards.len() {
            let empty: Arc<[i64]> = Arc::from([] as [i64; 0]);
            frames.resize_with(self.guards.len(), || Frame {
                kind: FrameKind::Range,
                cur: 0,
                stop: 0,
                step: 0,
                idx: 0,
                vals: empty.clone(),
                buf: Vec::new(),
                saved_elide: 0,
            });
        }
        frames
    }

    /// [`Compiled::exec`]'s body, with the loop-frame array supplied by the
    /// pooling wrapper. Frames are indexed by loop id and fully initialized
    /// at each `Enter`, so recycled frames never leak state between runs.
    #[allow(clippy::too_many_arguments)]
    fn exec_frames<V: Visitor>(
        &self,
        start_ip: usize,
        end_ip: usize,
        outer_override: Option<&[i64]>,
        slots: &mut [i64],
        state: &mut State<V>,
        ctx: &ChunkCtx<'_>,
        frames: &mut [Frame],
    ) -> Result<(), EvalError> {
        let poll_cancel = ctx.cancel.is_some_and(|p| p.armed());
        // Adaptive runs execute a run-local copy of the instruction stream:
        // when a group's order freezes, its learned order is patched back
        // into this copy as straight-line `Define`/`Check` ops, removing
        // the `CheckGroup` dispatch from the steady state. Other modes run
        // the shared ops directly.
        let mut owned_ops: Option<Vec<Op>> =
            (!self.agroups.is_empty()).then(|| self.ops.clone());
        let mut ip = start_ip;
        // Evaluate a fallible expression; on error, hand the fault to
        // `fault_recover`, which either yields a recovery ip (SkipPoint:
        // resume at the innermost open loop's Next) or a context-annotated
        // error to propagate. The interpreter loop's label is passed in so
        // the expansion can restart dispatch from the recovery ip.
        macro_rules! try_eval {
            ($label:lifetime, $site:expr, $e:expr) => {
                match $e {
                    Ok(v) => v,
                    Err(err) => {
                        match self.fault_recover(
                            err,
                            $site,
                            ip,
                            state.visit_ordinal,
                            slots,
                            ctx,
                            &mut state.faults,
                        ) {
                            Ok(next_ip) => {
                                ip = next_ip;
                                continue $label;
                            }
                            Err(err) => return Err(err),
                        }
                    }
                }
            };
        }
        'interp: loop {
            if ip == end_ip {
                return Ok(());
            }
            let ops: &[Op] = owned_ops.as_deref().unwrap_or(&self.ops);
            // Group index to patch after the match releases its borrow of
            // the op array (set only when a group just froze).
            let mut freeze: Option<usize> = None;
            match &ops[ip] {
                Op::Enter { loop_id, slot, domain, next } => {
                    let l = *loop_id as usize;
                    let exit = *next as usize + 1;
                    // Realize the domain into the loop frame and compute the
                    // exact value interval for the guard.
                    let f = &mut frames[l];
                    let (first, iv, cg, len): (Option<i64>, Interval, Congruence, u64) =
                        if let (0, Some(chunk)) = (l, outer_override) {
                            f.kind = FrameKind::Buffer;
                            f.buf.clear();
                            f.buf.extend_from_slice(chunk);
                            f.idx = 0;
                            // The outer loop is never guarded; TOP is fine.
                            (
                                chunk.first().copied(),
                                Interval::TOP,
                                Congruence::top(),
                                chunk.len() as u64,
                            )
                        } else {
                            match domain {
                                CDomain::Range { start, stop, step } => {
                                    let start = try_eval!(
                                        'interp,
                                        Site::Slot(*slot),
                                        start.eval(slots, &mut state.stack)
                                    );
                                    let stop = try_eval!(
                                        'interp,
                                        Site::Slot(*slot),
                                        stop.eval(slots, &mut state.stack)
                                    );
                                    let step = try_eval!(
                                        'interp,
                                        Site::Slot(*slot),
                                        step.eval(slots, &mut state.stack)
                                    );
                                    f.kind = FrameKind::Range;
                                    f.cur = start;
                                    f.stop = stop;
                                    f.step = step;
                                    let n = range_len(start, stop, step);
                                    if n == 0 {
                                        (None, Interval::TOP, Congruence::top(), 0)
                                    } else {
                                        let last = (start as i128
                                            + step as i128 * (n as i128 - 1))
                                            as i64;
                                        // Every yielded value is
                                        // `≡ start (mod |step|)` — the
                                        // residue fact the interval hull
                                        // throws away.
                                        let cg = cg_of_bind(
                                            Congruence::point(start),
                                            Congruence::point(step),
                                        );
                                        (Some(start), Interval::new(start, last), cg, n)
                                    }
                                }
                                CDomain::Values { values, lo, hi, cg } => {
                                    f.kind = FrameKind::Values;
                                    f.vals = values.clone();
                                    f.idx = 0;
                                    (
                                        values.first().copied(),
                                        Interval { lo: *lo, hi: *hi },
                                        *cg,
                                        values.len() as u64,
                                    )
                                }
                                CDomain::Opaque { iter } => {
                                    f.buf.clear();
                                    let realized = try_eval!('interp, Site::Slot(*slot), {
                                        let view = SlotBindings {
                                            names: &self.lp.slot_names,
                                            slots,
                                            consts: self.lp.plan.space().consts(),
                                        };
                                        self.lp.plan.space().realize_iter(*iter, &view)
                                    });
                                    for v in realized.iter() {
                                        f.buf.push(try_eval!(
                                            'interp,
                                            Site::Slot(*slot),
                                            v.as_int()
                                        ));
                                    }
                                    f.kind = FrameKind::Buffer;
                                    f.idx = 0;
                                    let (lo, hi) = (
                                        f.buf.iter().copied().min().unwrap_or(0),
                                        f.buf.iter().copied().max().unwrap_or(0),
                                    );
                                    (
                                        f.buf.first().copied(),
                                        Interval { lo, hi },
                                        cg_of_values(&f.buf),
                                        f.buf.len() as u64,
                                    )
                                }
                            }
                        };
                    let Some(first) = first else {
                        ip = exit;
                        continue;
                    };
                    // Interval guard: skip the subtree or elide checks.
                    let mut elide_add = 0u64;
                    if self.opts.intervals {
                        if let Some(info) = &self.guards[l] {
                            match self.run_guard(l, info, iv, cg, slots, state) {
                                GuardVerdict::Skip { by_congruence } => {
                                    state.blocks.subtree_skips += 1;
                                    if by_congruence {
                                        state.blocks.congruence_skips += 1;
                                    }
                                    state.blocks.points_skipped =
                                        state.blocks.points_skipped.saturating_add(
                                            len.saturating_mul(self.fanout_below[l]),
                                        );
                                    ip = exit;
                                    continue;
                                }
                                GuardVerdict::Elide(mask) => elide_add = mask,
                            }
                        }
                    }
                    let f = &mut frames[l];
                    f.saved_elide = state.elide;
                    state.elide |= elide_add;
                    // Batched lane tier: consume the whole loop in lane
                    // blocks — innermost plans emit survivors directly,
                    // filter plans descend per surviving lane. Disabled per
                    // chunk when a fault injector
                    // is attached (injected faults are keyed on per-point
                    // visit ordinals, which blocks don't advance one by one)
                    // and under the adaptive schedule (plans are never built
                    // there; `owned_ops` may diverge from `self.ops`).
                    if self.opts.batch
                        && ctx.injector.is_none()
                        && len >= MIN_BATCH_LEN
                    {
                        if let Some(plan) = self.plans[l].as_ref() {
                            self.run_batched(
                                plan,
                                first,
                                f,
                                slots,
                                state,
                                ctx,
                                poll_cancel,
                            )?;
                            state.elide = f.saved_elide;
                            ip = exit;
                            continue;
                        }
                    }
                    slots[*slot as usize] = first;
                    ip += 1;
                }
                Op::Next { loop_id, slot, body } => {
                    if poll_cancel {
                        state.poll += 1;
                        if state.poll >= CANCEL_POLL_EVERY {
                            state.poll = 0;
                            if ctx.cancel.is_some_and(|p| p.cancelled()) {
                                return Err(EvalError::Cancelled);
                            }
                        }
                    }
                    let f = &mut frames[*loop_id as usize];
                    match advance_frame(f) {
                        Some(v) => {
                            slots[*slot as usize] = v;
                            ip = *body as usize;
                        }
                        None => {
                            state.elide = f.saved_elide;
                            ip += 1;
                        }
                    }
                }
                Op::Define { slot, expr } => {
                    slots[*slot as usize] = try_eval!(
                        'interp,
                        Site::Slot(*slot),
                        expr.eval(slots, &mut state.stack)
                    );
                    ip += 1;
                }
                Op::DefineOpaque { slot, derived } => {
                    let v = try_eval!('interp, Site::Slot(*slot), {
                        let view = self.bindings_view(slots);
                        self.lp.plan.space().deriveds()[*derived].kind.eval(&view)
                    });
                    slots[*slot as usize] =
                        try_eval!('interp, Site::Slot(*slot), v.as_int());
                    ip += 1;
                }
                Op::Check { constraint, expr, elide_bit, on_reject } => {
                    if let Some(bit) = elide_bit {
                        if state.elide & (1u64 << bit) != 0 {
                            // Statically true for this subtree: count the
                            // evaluation the per-point engine would have
                            // done (it always passes) without doing it.
                            state.stats.record(*constraint as usize, false);
                            state.blocks.checks_elided += 1;
                            ip += 1;
                            continue;
                        }
                    }
                    let rejected = try_eval!(
                        'interp,
                        Site::Constraint(*constraint),
                        expr.eval(slots, &mut state.stack)
                    ) != 0;
                    state.stats.record(*constraint as usize, rejected);
                    ip = if rejected { *on_reject as usize } else { ip + 1 };
                }
                Op::CheckOpaque { constraint, on_reject } => {
                    let rejected = try_eval!('interp, Site::Constraint(*constraint), {
                        let view = self.bindings_view(slots);
                        self.lp.plan.space().constraints()[*constraint as usize]
                            .kind
                            .rejects(&view)
                    });
                    state.stats.record(*constraint as usize, rejected);
                    ip = if rejected { *on_reject as usize } else { ip + 1 };
                }
                Op::FusedDefineCheck {
                    slot,
                    def,
                    constraint,
                    expr,
                    elide_bit,
                    on_reject,
                    fuse_id,
                } => {
                    slots[*slot as usize] = try_eval!(
                        'interp,
                        Site::Slot(*slot),
                        def.eval(slots, &mut state.stack)
                    );
                    state.lanes.super_hits[*fuse_id as usize] += 1;
                    if let Some(bit) = elide_bit {
                        if state.elide & (1u64 << bit) != 0 {
                            state.stats.record(*constraint as usize, false);
                            state.blocks.checks_elided += 1;
                            ip += 1;
                            continue;
                        }
                    }
                    let rejected = try_eval!(
                        'interp,
                        Site::Constraint(*constraint),
                        expr.eval(slots, &mut state.stack)
                    ) != 0;
                    state.stats.record(*constraint as usize, rejected);
                    ip = if rejected { *on_reject as usize } else { ip + 1 };
                }
                Op::CheckGroup { group } => {
                    let gi = *group as usize;
                    let g = &self.agroups[gi];
                    let gs = &mut state.sched[gi];
                    let mut rejected = false;
                    // Region defines already executed this point (lazily,
                    // on first demand by a member's closure).
                    let mut done = 0u64;
                    for k in 0..gs.order.len() {
                        let mi = gs.order[k] as usize;
                        let m = &g.members[mi];
                        if let Some(bit) = m.elide_bit {
                            if state.elide & (1u64 << bit) != 0 {
                                // As on Op::Check: count the pass the
                                // per-point engine would have recorded.
                                // Elided members don't feed the adaptive
                                // counters — no expression actually ran.
                                state.stats.record(m.constraint as usize, false);
                                state.blocks.checks_elided += 1;
                                continue;
                            }
                        }
                        for &d in &m.deps {
                            if done & (1u64 << d) == 0 {
                                done |= 1u64 << d;
                                let def = &g.defines[d as usize];
                                slots[def.slot as usize] = try_eval!(
                                    'interp,
                                    Site::Slot(def.slot),
                                    def.expr.eval(slots, &mut state.stack)
                                );
                            }
                        }
                        let r = try_eval!(
                            'interp,
                            Site::Constraint(m.constraint),
                            m.expr.eval(slots, &mut state.stack)
                        ) != 0;
                        state.stats.record(m.constraint as usize, r);
                        if gs.stable < ADAPT_FREEZE {
                            gs.evaluated[mi] += 1;
                            gs.killed[mi] += r as u64;
                        }
                        if r {
                            rejected = true;
                            break;
                        }
                    }
                    if !rejected {
                        // Every member passed: run the defines no closure
                        // demanded, so the surviving point (and everything
                        // below this level) sees all derived slots.
                        for (d, def) in g.defines.iter().enumerate() {
                            if done & (1u64 << d) == 0 {
                                slots[def.slot as usize] = try_eval!(
                                    'interp,
                                    Site::Slot(def.slot),
                                    def.expr.eval(slots, &mut state.stack)
                                );
                            }
                        }
                    }
                    if gs.stable < ADAPT_FREEZE {
                        gs.ticks = gs.ticks.wrapping_add(1);
                        if gs.ticks.is_multiple_of(ADAPT_EPOCH) {
                            resort(g, gs);
                            if gs.stable >= ADAPT_FREEZE {
                                freeze = Some(gi);
                            }
                        }
                    }
                    ip = if rejected { g.on_reject as usize } else { g.end as usize };
                }
                Op::Visit => {
                    if let Some(inj) = ctx.injector {
                        let ord = state.visit_ordinal;
                        state.visit_ordinal = ord + 1;
                        if inj.point_error(ctx.chunk, ord, ctx.attempt) {
                            // Route the injected fault through the standard
                            // recovery path, as if a constraint had errored.
                            let _: i64 = try_eval!(
                                'interp,
                                Site::Visit,
                                Err::<i64, EvalError>(EvalError::Custom(
                                    "injected fault".into(),
                                ))
                            );
                        }
                    }
                    state.stats.record_survivor();
                    let view = PointRef::Slots { names: &self.lp.slot_names, slots };
                    state.visitor.visit(&view);
                    ip += 1;
                }
                Op::Halt => return Ok(()),
            }
            if let Some(gi) = freeze {
                self.patch_frozen(
                    owned_ops.as_mut().expect("check groups imply owned ops"),
                    gi,
                    &state.sched[gi].order,
                );
            }
        }
    }

    /// Execute one batchable loop entirely through the lane tier: realize
    /// the domain into blocks of up to `lane_width` values, run every
    /// slab-translatable program once per block, evaluate the rest per
    /// lane, then emit in lane order so the result is bit-identical to the
    /// scalar interpreter. Innermost plans visit survivors in place; filter
    /// plans re-enter the interpreter per surviving lane to run the
    /// subtree below the batched prefix (see [`BatchPlan::descend`]).
    ///
    /// # Determinism argument
    ///
    /// *Fold order*: every counter this path touches is a sum of per-lane
    /// contributions ([`PruneStats`]/[`BlockStats`] increments commute), and
    /// everything order-sensitive — visitor calls, fault records, the final
    /// slot state "garbage" later sibling guards may seed-read — happens in
    /// the lane-ordered emission pass at block end, in exactly the order the
    /// scalar interpreter produces. *Fallibility*: a lane whose slab
    /// evaluation cannot be proven panic- and error-free (zero divisor,
    /// `div_euclid` overflow, unproven intermediate overflow, or any error
    /// from a per-lane scalar evaluation) is routed to `rerun_lane`, which
    /// re-executes the body ops scalar — reproducing the exact scalar
    /// behavior including fault recovery — and its batch-side stats credits
    /// are withheld (`credit = mask & !fallback`), so nothing is counted
    /// twice.
    #[allow(clippy::too_many_arguments)]
    fn run_batched<V: Visitor>(
        &self,
        plan: &BatchPlan,
        first: i64,
        f: &mut Frame,
        slots: &mut [i64],
        state: &mut State<V>,
        ctx: &ChunkCtx<'_>,
        poll_cancel: bool,
    ) -> Result<(), EvalError> {
        let width = self.opts.lane_width.clamp(1, LANES as u32) as usize;
        let mut scr = state.lscratch.pop().unwrap_or_default();
        // Filter plans re-enter the interpreter once per surviving lane;
        // checking out one frame array for the whole loop keeps that
        // re-entry at plain-call cost.
        let mut dframes = plan
            .descend
            .map(|_| self.checkout_frames(state))
            .unwrap_or_default();
        if scr.lrows.len() < plan.rows.len() {
            scr.lrows.resize(plan.rows.len(), [0i64; LANES]);
        }
        if scr.lmasks.len() < plan.steps.len() {
            scr.lmasks.resize(plan.steps.len(), [0u64; 2]);
        }
        let mut pending = Some(first);
        let mut done = false;
        while !done {
            // Fill the next block, advancing the frame exactly as `Op::Next`
            // would (the frame ends in the same exhausted state the scalar
            // loop leaves behind).
            let mut n = 0usize;
            let mut advances = 0u32;
            if let Some(v) = pending.take() {
                scr.lrows[0][0] = v;
                n = 1;
            }
            while n < width {
                advances += 1;
                match advance_frame(f) {
                    Some(v) => {
                        scr.lrows[0][n] = v;
                        n += 1;
                    }
                    None => {
                        done = true;
                        break;
                    }
                }
            }
            // One poll increment per loop advance, like the scalar `Next`.
            if poll_cancel && advances > 0 {
                state.poll += advances;
                if state.poll >= CANCEL_POLL_EVERY {
                    state.poll = 0;
                    if ctx.cancel.is_some_and(|p| p.cancelled()) {
                        return Err(EvalError::Cancelled);
                    }
                }
            }
            if n == 0 {
                break;
            }
            if n < width {
                state.lanes.lanes_masked += (width - n) as u64;
            }
            let tail: u64 = if n == 64 { !0 } else { (1u64 << n) - 1 };

            // Step-major evaluation: `alive` lanes are still candidates,
            // `fb` lanes are deferred to the scalar rerun. Dead and tail
            // lanes flow through slab evaluations harmlessly (they are
            // total for any input); their garbage results are masked off.
            let mut alive = tail;
            let mut fb = 0u64;
            let mut rows_filled = 1usize;
            let mut out: Lane = [0i64; LANES];
            for (si, step) in plan.steps.iter().enumerate() {
                if alive == 0 {
                    // Every lane is rejected or deferred: the scalar engine
                    // would evaluate nothing past this point (fallback lanes
                    // replay the whole body themselves), so zero the
                    // remaining step masks and stop evaluating.
                    for m in &mut scr.lmasks[si..plan.steps.len()] {
                        *m = [0, 0];
                    }
                    break;
                }
                match step {
                    LaneStep::Define { prog } => {
                        let fall = prog.eval(
                            slots,
                            &scr.lrows[..rows_filled],
                            n,
                            &mut scr.lstack,
                            &mut out,
                        );
                        state.lanes.lane_evals += n as u64;
                        fb |= alive & fall;
                        alive &= !fall;
                        scr.lrows[rows_filled] = out;
                        rows_filled += 1;
                        // The scalar engine writes the slot only when the
                        // define evaluates cleanly: `alive` post-fallibility
                        // is exactly the wrote set.
                        scr.lmasks[si] = [alive, 0];
                    }
                    LaneStep::DefineScalar { expr } => {
                        let mut wrote = 0u64;
                        let mut m = alive;
                        while m != 0 {
                            let i = m.trailing_zeros() as usize;
                            m &= m - 1;
                            for r in 0..rows_filled {
                                slots[plan.rows[r] as usize] = scr.lrows[r][i];
                            }
                            match expr.eval(slots, &mut state.stack) {
                                Ok(v) => {
                                    scr.lrows[rows_filled][i] = v;
                                    wrote |= 1u64 << i;
                                }
                                // Deferred: the rerun reproduces the error
                                // through the standard fault path.
                                Err(_) => fb |= 1u64 << i,
                            }
                        }
                        alive = wrote;
                        rows_filled += 1;
                        scr.lmasks[si] = [wrote, 0];
                    }
                    LaneStep::Check { elide_bit, kind, .. } => {
                        if elide_bit.is_some_and(|b| state.elide & (1u64 << b) != 0) {
                            // Statically true over the subtree: credit the
                            // evaluations without running anything.
                            scr.lmasks[si] = [alive, 0];
                            continue;
                        }
                        let evald = alive;
                        let mut rej = 0u64;
                        match kind {
                            LaneCheck::Slab(prog) => {
                                let fall = prog.eval(
                                    slots,
                                    &scr.lrows[..rows_filled],
                                    n,
                                    &mut scr.lstack,
                                    &mut out,
                                );
                                state.lanes.lane_evals += n as u64;
                                fb |= alive & fall;
                                alive &= !fall;
                                for (i, v) in out.iter().enumerate() {
                                    rej |= u64::from(*v != 0) << i;
                                }
                                rej &= alive;
                            }
                            LaneCheck::Scalar(expr) => {
                                let mut m = alive;
                                while m != 0 {
                                    let i = m.trailing_zeros() as usize;
                                    m &= m - 1;
                                    for r in 0..rows_filled {
                                        slots[plan.rows[r] as usize] =
                                            scr.lrows[r][i];
                                    }
                                    match expr.eval(slots, &mut state.stack) {
                                        Ok(v) => rej |= u64::from(v != 0) << i,
                                        Err(_) => {
                                            fb |= 1u64 << i;
                                            alive &= !(1u64 << i);
                                        }
                                    }
                                }
                                rej &= alive;
                            }
                        }
                        alive &= !rej;
                        scr.lmasks[si] = [evald, rej];
                    }
                    LaneStep::Visit => scr.lmasks[si] = [alive, 0],
                }
            }

            // Deferred stats credit: a fallback lane's rerun records its own
            // evaluations, so the batch credits only never-fallback lanes.
            state.lanes.scalar_fallbacks += u64::from(fb.count_ones());
            let live = !fb;
            for (si, step) in plan.steps.iter().enumerate() {
                if let LaneStep::Check { constraint, elide_bit, .. } = step {
                    let c = *constraint as usize;
                    let [evald, rej] = scr.lmasks[si];
                    let e = u64::from((evald & live).count_ones());
                    state.stats.evaluated[c] += e;
                    if elide_bit.is_some_and(|b| state.elide & (1u64 << b) != 0) {
                        state.blocks.checks_elided += e;
                    } else {
                        state.stats.pruned[c] += u64::from((rej & live).count_ones());
                    }
                }
            }

            // Lane-ordered emission. In the common case — no fallback lanes
            // — a rejected lane has no observable effect except its slot
            // writes, and those are visible only through the block-final
            // state (each lane's replay would be overwritten by the next
            // lane's before anything reads it). So iterate surviving lanes
            // only: a survivor passed every step, hence wrote every row,
            // and its slot state is just its own lane column. The block-
            // final replay below then reconstructs each row from its last
            // writer, which is exactly where sequential per-lane replay
            // would have left it. This keeps emission cost proportional to
            // survivors, not lanes — on high-kill levels that is the
            // difference between ~1% and 100% of lanes walked.
            if fb == 0 && plan.fast_emit {
                let survivors = match plan.descend {
                    // `fast_emit` guarantees the `Visit` is the last step.
                    None => scr.lmasks[plan.steps.len() - 1][0],
                    Some(_) => alive,
                };
                let mut m = survivors;
                while m != 0 {
                    let i = m.trailing_zeros() as usize;
                    m &= m - 1;
                    for r in 0..rows_filled {
                        slots[plan.rows[r] as usize] = scr.lrows[r][i];
                    }
                    match plan.descend {
                        None => {
                            state.stats.record_survivor();
                            let view = PointRef::Slots {
                                names: &self.lp.slot_names,
                                slots,
                            };
                            state.visitor.visit(&view);
                        }
                        Some(d) => self.exec_frames(
                            d as usize,
                            plan.next_ip as usize,
                            None,
                            slots,
                            state,
                            ctx,
                            &mut dframes,
                        )?,
                    }
                }
                // Block-final slot state: the loop slot holds the last
                // lane's value, each define row its last writer's (rows no
                // lane wrote keep their pre-block value, as scalar would).
                slots[plan.rows[0] as usize] = scr.lrows[0][n - 1];
                let mut r = 1usize;
                for (si, step) in plan.steps.iter().enumerate() {
                    if matches!(
                        step,
                        LaneStep::Define { .. } | LaneStep::DefineScalar { .. }
                    ) {
                        let w = scr.lmasks[si][0];
                        if w != 0 {
                            let last = 63 - w.leading_zeros() as usize;
                            slots[plan.rows[r] as usize] = scr.lrows[r][last];
                        }
                        r += 1;
                    }
                }
                continue;
            }

            // Fallback-bearing (or oddly shaped) block: replay every lane in
            // order. Fallback lanes re-execute the body ops scalar (visits,
            // faults and slot writes happen naturally); for the rest, every
            // slot write the scalar engine would have done is replayed from
            // the lane rows — fallback reruns interleave with them, so even
            // "garbage" writes of rejected lanes must land in sequence.
            // Innermost plans visit survivors in place; filter plans descend
            // into the subtree per surviving lane, which reproduces the
            // scalar engine's depth-first order exactly.
            for i in 0..n {
                let bit = 1u64 << i;
                slots[plan.rows[0] as usize] = scr.lrows[0][i];
                if fb & bit != 0 {
                    match plan.descend {
                        None => self.rerun_lane(plan, slots, state, ctx)?,
                        Some(_) => self.exec_frames(
                            plan.body_start as usize,
                            plan.next_ip as usize,
                            None,
                            slots,
                            state,
                            ctx,
                            &mut dframes,
                        )?,
                    }
                    continue;
                }
                let mut r = 1usize;
                for (si, step) in plan.steps.iter().enumerate() {
                    match step {
                        LaneStep::Define { .. } | LaneStep::DefineScalar { .. } => {
                            if scr.lmasks[si][0] & bit != 0 {
                                slots[plan.rows[r] as usize] = scr.lrows[r][i];
                            }
                            r += 1;
                        }
                        LaneStep::Visit => {
                            if scr.lmasks[si][0] & bit != 0 {
                                state.stats.record_survivor();
                                let view = PointRef::Slots {
                                    names: &self.lp.slot_names,
                                    slots,
                                };
                                state.visitor.visit(&view);
                            }
                        }
                        LaneStep::Check { .. } => {}
                    }
                }
                if alive & bit != 0 {
                    if let Some(d) = plan.descend {
                        self.exec_frames(
                            d as usize,
                            plan.next_ip as usize,
                            None,
                            slots,
                            state,
                            ctx,
                            &mut dframes,
                        )?;
                    }
                }
            }
        }
        state.lscratch.push(scr);
        if plan.descend.is_some() {
            state.frame_pool.push(dframes);
        }
        Ok(())
    }

    /// Scalar re-execution of one fallback lane over the batched body's
    /// ops: reproduces the exact per-point behavior — stats, elision
    /// accounting, visitor calls, and the standard fault path (recovery
    /// under [`FaultPolicy::SkipPoint`], propagation otherwise). The loop
    /// slot must already hold the lane's value.
    fn rerun_lane<V: Visitor>(
        &self,
        plan: &BatchPlan,
        slots: &mut [i64],
        state: &mut State<V>,
        ctx: &ChunkCtx<'_>,
    ) -> Result<(), EvalError> {
        let end = plan.next_ip as usize;
        let mut ip = plan.body_start as usize;
        while ip != end {
            match &self.ops[ip] {
                Op::Define { slot, expr } => match expr.eval(slots, &mut state.stack) {
                    Ok(v) => {
                        slots[*slot as usize] = v;
                        ip += 1;
                    }
                    Err(e) => {
                        let nip = self.fault_recover(
                            e,
                            Site::Slot(*slot),
                            ip,
                            state.visit_ordinal,
                            slots,
                            ctx,
                            &mut state.faults,
                        )?;
                        debug_assert_eq!(nip, end, "recovery resumes at the loop's Next");
                        break;
                    }
                },
                Op::Check { constraint, expr, elide_bit, on_reject } => {
                    if let Some(bit) = elide_bit {
                        if state.elide & (1u64 << bit) != 0 {
                            state.stats.record(*constraint as usize, false);
                            state.blocks.checks_elided += 1;
                            ip += 1;
                            continue;
                        }
                    }
                    match expr.eval(slots, &mut state.stack) {
                        Ok(v) => {
                            let rejected = v != 0;
                            state.stats.record(*constraint as usize, rejected);
                            if rejected {
                                debug_assert_eq!(*on_reject as usize, end);
                                break;
                            }
                            ip += 1;
                        }
                        Err(e) => {
                            let nip = self.fault_recover(
                                e,
                                Site::Constraint(*constraint),
                                ip,
                                state.visit_ordinal,
                                slots,
                                ctx,
                                &mut state.faults,
                            )?;
                            debug_assert_eq!(nip, end, "recovery resumes at the loop's Next");
                            break;
                        }
                    }
                }
                Op::Visit => {
                    // No injector here: the batch tier is disabled whenever
                    // one is attached, so this mirrors the scalar arm with
                    // `ctx.injector == None` (no ordinal advance).
                    state.stats.record_survivor();
                    let view = PointRef::Slots { names: &self.lp.slot_names, slots };
                    state.visitor.visit(&view);
                    ip += 1;
                }
                other => unreachable!("non-batchable op {other:?} in a batched body"),
            }
        }
        Ok(())
    }

    /// Patch a frozen group's learned order back into the run-local
    /// instruction stream: the region's op span is rewritten as
    /// straight-line `Define`/`Check` ops in unit-linearized frozen order
    /// — each member preceded by its not-yet-emitted define closure, the
    /// remaining defines last — and the `CheckGroup` dispatch disappears,
    /// so the steady state costs exactly what a statically scheduled plan
    /// costs. The patched sequence evaluates the same expressions and
    /// records the same `PruneStats` on every path as group execution; the
    /// only divergence is that an elided member's closure defines now run
    /// unconditionally, which is unobservable (they are infallible, and
    /// every define runs before the span is left on the all-pass path
    /// either way).
    fn patch_frozen(&self, ops: &mut [Op], gi: usize, order: &[u16]) {
        let g = &self.agroups[gi];
        let span = g.start as usize..g.end as usize;
        let mut seq: Vec<Op> = Vec::with_capacity(span.len());
        let mut emitted = 0u64;
        for &mi in order {
            let m = &g.members[mi as usize];
            for &d in &m.deps {
                if emitted & (1u64 << d) == 0 {
                    emitted |= 1u64 << d;
                    let def = &g.defines[d as usize];
                    seq.push(Op::Define { slot: def.slot, expr: def.expr.clone() });
                }
            }
            seq.push(Op::Check {
                constraint: m.constraint,
                expr: m.expr.clone(),
                elide_bit: m.elide_bit,
                on_reject: g.on_reject,
            });
        }
        for (d, def) in g.defines.iter().enumerate() {
            if emitted & (1u64 << d) == 0 {
                seq.push(Op::Define { slot: def.slot, expr: def.expr.clone() });
            }
        }
        debug_assert_eq!(seq.len(), span.len(), "patched region must fill its span");
        for (dst, op) in ops[span].iter_mut().zip(seq) {
            *dst = op;
        }
    }

    /// Run one loop's guard program against the current outer slot values
    /// and the just-realized domain interval and congruence.
    ///
    /// Memoized: only `dirty` positions are re-evaluated; the rest read the
    /// outcome cached by this guard's own last completed scan or by an
    /// enclosing guard's run (their inputs are unchanged either way, so the
    /// cached outcome equals what re-evaluation would produce). A run that
    /// returns [`GuardVerdict::Skip`] aborts mid-scan and leaves the guard
    /// unprimed — safe, because a skip means no deeper guard runs under
    /// this entry, and the next entry re-scans.
    ///
    /// With `opts.congruence` on, every evaluation runs over the
    /// interval×congruence reduced product ([`eval_product`]); the interval
    /// halves are bit-identical to the interval-only path, so the
    /// congruence can only add verdicts (`worthy` where the interval was
    /// inconclusive, flagged `by_cg`), never change interval ones.
    fn run_guard<V>(
        &self,
        loop_id: usize,
        info: &GuardInfo,
        domain_iv: Interval,
        domain_cg: Congruence,
        slots: &[i64],
        state: &mut State<V>,
    ) -> GuardVerdict {
        let cg_on = self.opts.congruence;
        let primed = state.gprimed[loop_id];
        // Point values that can have changed since the enclosing kept guard
        // ran; everything deeper is overwritten by a (dirty) guard step
        // before any use (the planner's dependency order guarantees defs
        // precede uses), or holds a still-valid cached interval.
        for &q in &info.seed {
            state.ivals[q as usize] = Interval::point(slots[q as usize]);
            if cg_on {
                state.cvals[q as usize] = Congruence::point(slots[q as usize]);
            }
        }
        state.ivals[info.slot as usize] = domain_iv;
        if cg_on {
            // Reduce the domain congruence against its (exact) interval.
            state.cvals[info.slot as usize] = if domain_iv.is_point() {
                Congruence::point(domain_iv.lo)
            } else {
                domain_cg
            };
        }
        // `clean` = no step so far can raise an evaluation error, so a
        // statically-false check really is reached (or the point was
        // rejected earlier without error) for every point of the subtree.
        let mut clean = true;
        let mut elide = 0u64;
        let w = loop_id as u16;
        for (i, step) in self.gmaster.iter().enumerate().skip(info.start as usize) {
            // Re-evaluate when nothing is cached yet, when the position's
            // inputs may have changed, or when the cached entry was written
            // by a deeper guard: deeper runs compute over a strict subset of
            // this subtree, so their outcomes don't over-approximate it.
            if !primed || info.dirty[i] || state.gcache[i].writer > w {
                let entry = match step {
                    GStep::BindRange { slot, start, stop, step } => {
                        let (s, s_cg) = eval_guard(start, state, cg_on);
                        let (e, _) = eval_guard(stop, state, cg_on);
                        let (st, st_cg) = eval_guard(step, state, cg_on);
                        let iv = range_value_hull(s.iv, e.iv);
                        state.ivals[*slot as usize] = iv;
                        // The bind's residue fact, valid only while the
                        // bound expressions are wrap-free (their product
                        // congruences are already ⊤ when widened).
                        let cg = if cg_on {
                            let cg = cg_of_bind(s_cg, st_cg);
                            if iv.is_point() { Congruence::point(iv.lo) } else { cg }
                        } else {
                            Congruence::top()
                        };
                        if cg_on {
                            state.cvals[*slot as usize] = cg;
                        }
                        GCache {
                            clean: s.clean && e.clean && st.clean,
                            iv,
                            cg,
                            writer: w,
                            ..GCache::default()
                        }
                    }
                    GStep::BindValues { slot, lo, hi, cg } => {
                        let iv = Interval { lo: *lo, hi: *hi };
                        state.ivals[*slot as usize] = iv;
                        if cg_on {
                            state.cvals[*slot as usize] = *cg;
                        }
                        GCache { clean: true, iv, cg: *cg, writer: w, ..GCache::default() }
                    }
                    GStep::BindOpaque { slot } | GStep::DefineOpaque { slot } => {
                        state.ivals[*slot as usize] = Interval::TOP;
                        if cg_on {
                            state.cvals[*slot as usize] = Congruence::top();
                        }
                        GCache { writer: w, ..GCache::default() }
                    }
                    GStep::Define { slot, prog } => {
                        let (o, cg) = eval_guard(prog, state, cg_on);
                        state.ivals[*slot as usize] = o.iv;
                        if cg_on {
                            state.cvals[*slot as usize] = cg;
                        }
                        GCache { clean: o.clean, iv: o.iv, cg, writer: w, ..GCache::default() }
                    }
                    GStep::Check { prog, .. } => {
                        let (o, cg) = eval_guard(prog, state, cg_on);
                        let worthy_iv = o.clean && !o.iv.contains(0);
                        let by_cg = !worthy_iv && o.clean && cg.always_nonzero();
                        GCache {
                            clean: o.clean,
                            worthy: worthy_iv || by_cg,
                            by_cg,
                            elidable: o.clean
                                && (o.iv == Interval::point(0) || cg.as_point() == Some(0)),
                            writer: w,
                            ..GCache::default()
                        }
                    }
                    GStep::CheckOpaque => GCache { writer: w, ..GCache::default() },
                };
                state.gcache[i] = entry;
            } else if let Some(slot) = gstep_write_slot(step) {
                // Reused write position: restore the slot's interval and
                // congruence, which a deeper guard's run may have clobbered
                // with tighter, sibling-specific values that later dirty
                // steps must not read.
                state.ivals[slot as usize] = state.gcache[i].iv;
                if cg_on {
                    state.cvals[slot as usize] = state.gcache[i].cg;
                }
            }
            let c = state.gcache[i];
            if c.worthy && clean {
                // Statically false (the expression is the rejection
                // condition): every point of the subtree is rejected at or
                // before this check, error-free.
                return GuardVerdict::Skip { by_congruence: c.by_cg };
            }
            if c.elidable {
                if let GStep::Check { elide_bit: Some(bit), .. } = step {
                    elide |= 1u64 << bit;
                }
            }
            clean &= c.clean;
        }
        state.gprimed[loop_id] = true;
        GuardVerdict::Elide(elide)
    }

    /// Cold fault path shared by every fallible site in `exec`: annotate the
    /// error with point context and, under [`FaultPolicy::SkipPoint`],
    /// recover by returning the ip of the innermost open loop's `Next` —
    /// the exact transition a check rejection takes, so frames, elision
    /// masks and guard caches stay consistent. Faults with no enclosing
    /// loop (chunk preamble) and [`EvalError::Cancelled`] always propagate.
    #[cold]
    #[inline(never)]
    #[allow(clippy::too_many_arguments)]
    fn fault_recover(
        &self,
        e: EvalError,
        site: Site,
        ip: usize,
        ordinal: u64,
        slots: &[i64],
        ctx: &ChunkCtx<'_>,
        faults: &mut Vec<FaultRecord>,
    ) -> Result<usize, EvalError> {
        if matches!(e, EvalError::Cancelled) {
            return Err(e);
        }
        let e = e.with_point(self.site_label(site), self.point_bindings(ip, slots));
        if ctx.policy == FaultPolicy::SkipPoint {
            if let Some(next_ip) = self.innermost_open_next(ip) {
                let (site, bindings) = match e.point_context() {
                    Some(c) => (c.site.clone(), c.bindings.clone()),
                    None => (self.site_label(site), Vec::new()),
                };
                faults.push(FaultRecord {
                    chunk: ctx.chunk,
                    ordinal,
                    attempt: ctx.attempt,
                    kind: FaultKind::Error,
                    action: FaultAction::SkippedPoint,
                    site,
                    error: e.root().to_string(),
                    bindings,
                });
                return Ok(next_ip);
            }
        }
        Err(e)
    }

    /// Human-readable name for a fault site.
    fn site_label(&self, site: Site) -> String {
        match site {
            Site::Constraint(c) => {
                self.lp.plan.space().constraints()[c as usize].name.to_string()
            }
            Site::Slot(s) => self.lp.slot_names[s as usize].to_string(),
            Site::Visit => "visit".to_string(),
        }
    }

    /// The `Next` ip of the innermost loop whose body contains `ip`, or
    /// `None` when `ip` is outside every loop. A loop with `Enter` at `e`
    /// and `Next` at `n` is *open* at `ip` iff `e < ip <= n`; closed loops
    /// entirely before `ip` are skipped over wholesale. Scans the shared op
    /// array — adaptive patching never rewrites `Enter`/`Next`, so the loop
    /// structure is identical in the run-local copy.
    fn innermost_open_next(&self, ip: usize) -> Option<usize> {
        let mut best = None;
        let mut i = 0;
        while i < ip {
            if let Op::Enter { next, .. } = &self.ops[i] {
                let n = *next as usize;
                if n >= ip {
                    best = Some(n);
                } else {
                    i = n;
                }
            }
            i += 1;
        }
        best
    }

    /// `(name, value)` pairs for every slot bound at `ip`: the iterators of
    /// open loops plus the defines already executed in open scopes, in
    /// program order. Defines inside closed inner loops are stale for the
    /// current point and are skipped along with their loop.
    fn point_bindings(&self, ip: usize, slots: &[i64]) -> Vec<(String, i64)> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < ip {
            match &self.ops[i] {
                Op::Enter { slot, next, .. } => {
                    let n = *next as usize;
                    if n >= ip {
                        out.push(*slot);
                    } else {
                        i = n;
                    }
                }
                Op::Define { slot, .. }
                | Op::DefineOpaque { slot, .. }
                | Op::FusedDefineCheck { slot, .. } => {
                    out.push(*slot);
                }
                _ => {}
            }
            i += 1;
        }
        out.into_iter()
            .map(|s| (self.lp.slot_names[s as usize].to_string(), slots[s as usize]))
            .collect()
    }
}

/// Evaluate one guard program over the interval domain, or — when the
/// congruence half is on — over the reduced product. The interval outcome
/// is bit-identical either way ([`eval_product`]'s interval half runs the
/// same transfer functions as [`IvProg::eval`]).
fn eval_guard<V>(
    prog: &IvProg,
    state: &mut State<V>,
    cg_on: bool,
) -> (IntervalOutcome, Congruence) {
    if cg_on {
        eval_product(prog, &state.ivals, &state.cvals, &mut state.gpstack)
    } else {
        (prog.eval(&state.ivals, &mut state.gstack), Congruence::top())
    }
}

/// The slot a guard step writes, if any (allocation-free hot-path variant
/// of [`gstep_deps`]).
fn gstep_write_slot(g: &GStep) -> Option<u32> {
    match g {
        GStep::BindRange { slot, .. }
        | GStep::BindValues { slot, .. }
        | GStep::BindOpaque { slot }
        | GStep::Define { slot, .. }
        | GStep::DefineOpaque { slot } => Some(*slot),
        GStep::Check { .. } | GStep::CheckOpaque => None,
    }
}

/// The slots a guard step reads, and the slot it writes (if any). Opaque
/// steps read nothing *as far as dirtiness is concerned*: their outcome
/// (TOP / unclean) is input-independent.
fn gstep_deps(g: &GStep) -> (std::collections::BTreeSet<u32>, Option<u32>) {
    let mut reads = std::collections::BTreeSet::new();
    let writes = match g {
        GStep::BindRange { slot, start, stop, step } => {
            reads.extend(start.read_slots());
            reads.extend(stop.read_slots());
            reads.extend(step.read_slots());
            Some(*slot)
        }
        GStep::BindValues { slot, .. }
        | GStep::BindOpaque { slot }
        | GStep::DefineOpaque { slot } => Some(*slot),
        GStep::Define { slot, prog } => {
            reads.extend(prog.read_slots());
            Some(*slot)
        }
        GStep::Check { prog, .. } => {
            reads.extend(prog.read_slots());
            None
        }
        GStep::CheckOpaque => None,
    };
    (reads, writes)
}

/// Lift one lowered step to interval semantics (`None` for `Visit`).
fn lift_gstep(step: &LStep) -> Option<GStep> {
    match step {
        LStep::Bind { slot, domain, .. } => Some(match domain {
            LIter::Range { start, stop, step } => GStep::BindRange {
                slot: *slot,
                start: IvProg::compile(start),
                stop: IvProg::compile(stop),
                step: IvProg::compile(step),
            },
            LIter::Values(v) => GStep::BindValues {
                slot: *slot,
                lo: v.iter().copied().min().unwrap_or(0),
                hi: v.iter().copied().max().unwrap_or(0),
                cg: cg_of_values(v),
            },
            LIter::Opaque { .. } => GStep::BindOpaque { slot: *slot },
        }),
        LStep::Define { slot, body, .. } => Some(match body {
            LBody::Expr(e) => GStep::Define { slot: *slot, prog: IvProg::compile(e) },
            LBody::Opaque => GStep::DefineOpaque { slot: *slot },
        }),
        LStep::Check { constraint, body } => Some(match body {
            LBody::Expr(e) => GStep::Check {
                prog: IvProg::compile(e),
                elide_bit: (*constraint < 64).then_some(*constraint as u8),
            },
            LBody::Opaque => GStep::CheckOpaque,
        }),
        LStep::Visit => None,
    }
}

/// Build the per-loop guard programs: for loop `l >= 1` with a decidable
/// (non-opaque) check below it, the lowered steps after its bind lifted to
/// interval semantics. The outermost loop gets no guard — its subdomain is
/// chunk-dependent under the parallel driver, and determinism across thread
/// counts takes priority over one extra level of block pruning.
///
/// All guard ranges are suffixes of one shared master list, and each guard
/// records which positions can evaluate differently than they did at the
/// nearest enclosing *kept* guard: positions transitively depending on slots
/// bound/defined since that guard's bind (plus this loop's own slot). A loop
/// where no decidable check is dirty in this sense gets no guard at all —
/// its verdict would always equal the ancestor's, which already skipped or
/// elided accordingly — so the dropped guard changes no decision.
fn build_guards(
    lp: &LoweredPlan,
    n_loops: usize,
    fanout_below: &[u64],
    min_guard_fanout: u64,
) -> (Vec<GStep>, Vec<Option<GuardInfo>>) {
    let mut guards: Vec<Option<GuardInfo>> = vec![None; n_loops];
    // Indices into lp.steps of each bind, to slice the subtree per loop.
    let bind_positions: Vec<(usize, u32)> = lp
        .steps
        .iter()
        .enumerate()
        .filter_map(|(i, s)| match s {
            LStep::Bind { slot, .. } => Some((i, *slot)),
            _ => None,
        })
        .collect();
    debug_assert_eq!(bind_positions.len(), n_loops);

    // The first candidate: the shallowest loop l >= 1 with a non-opaque
    // check below its bind. Without one, no guard can ever decide anything.
    let first = (1..bind_positions.len()).find(|&l| {
        lp.steps[bind_positions[l].0 + 1..].iter().any(|s| {
            matches!(s, LStep::Check { body: LBody::Expr(_), .. })
        })
    });
    let Some(first) = first else {
        return (Vec::new(), guards);
    };

    // Master step list: everything after the first candidate's bind. Each
    // deeper loop's guard range is the suffix starting after its own bind.
    let mut master: Vec<GStep> = Vec::new();
    let mut m_start = vec![0u32; n_loops];
    {
        let mut loop_idx = first;
        for step in &lp.steps[bind_positions[first].0 + 1..] {
            if let LStep::Bind { .. } = step {
                loop_idx += 1;
            }
            if let Some(g) = lift_gstep(step) {
                master.push(g);
            }
            if let LStep::Bind { .. } = step {
                m_start[loop_idx] = master.len() as u32;
            }
        }
    }
    let deps: Vec<(std::collections::BTreeSet<u32>, Option<u32>)> =
        master.iter().map(gstep_deps).collect();

    // `prev_kept` tracks the nearest enclosing kept guard; its bind position
    // starts the seed tile (inclusive, so the ancestor's own loop slot —
    // a fresh point on every one of its iterations — is reseeded too).
    let mut prev_kept: Option<usize> = None;
    for l in first..n_loops {
        let (pos, slot) = bind_positions[l];
        // Seed tile: slots bound/defined since the nearest kept guard's
        // bind (or since the start of the plan for the first kept guard).
        let tile_begin = prev_kept.map_or(0, |p| bind_positions[p].0);
        let seed: Vec<u32> = lp.steps[tile_begin..pos]
            .iter()
            .filter_map(|s| match s {
                LStep::Bind { slot, .. } | LStep::Define { slot, .. } => Some(*slot),
                _ => None,
            })
            .collect();

        // Forward dirtiness pass over this guard's range.
        let mut dirty_slots: std::collections::BTreeSet<u32> =
            seed.iter().copied().collect();
        dirty_slots.insert(slot);
        let mut dirty = vec![false; master.len()];
        let mut any_dirty_check = false;
        let mut any_check = false;
        for i in m_start[l] as usize..master.len() {
            let (reads, writes) = &deps[i];
            if matches!(master[i], GStep::Check { .. }) {
                any_check = true;
            }
            if reads.iter().any(|r| dirty_slots.contains(r)) {
                dirty[i] = true;
                if let Some(w) = writes {
                    dirty_slots.insert(*w);
                }
                if matches!(master[i], GStep::Check { .. }) {
                    any_dirty_check = true;
                }
            }
        }
        // Keep the guard if a decidable check can evaluate differently than
        // it did at the nearest kept guard; the first kept guard has no
        // ancestor verdict to inherit, so plain decidability suffices.
        // Either way, the subtree must be big enough that a skip pays for
        // the guard run (`min_guard_fanout` gates deep, tiny subtrees).
        if fanout_below[l] >= min_guard_fanout
            && (any_dirty_check || (prev_kept.is_none() && any_check))
        {
            guards[l] = Some(GuardInfo { start: m_start[l], slot, seed, dirty });
            prev_kept = Some(l);
        }
    }
    (master, guards)
}

/// Detect batchable loops and translate them to lane plans. An innermost
/// loop (no inner `Enter`) is batchable when its whole body lowers to
/// expression defines, expression checks rejecting to the loop's own
/// `Next`, and visits — no opaque callbacks (their closure re-entry is
/// priced per point and can observe slot state lane-by-lane) and no
/// adaptive group dispatch. A non-innermost loop gets a *filter* plan when
/// its body prefix (everything before the first inner `Enter`) meets the
/// same bar and at least one prefix check is slab-translatable — without a
/// slab check every lane would still pay a scalar evaluation and the
/// batching overhead buys nothing. Slab-translatable programs get whole-
/// block evaluation; control-flow-bearing ones stay per-lane scalar inside
/// the same plan. Returned plans are indexed by loop id.
fn build_batch_plans(ops: &[Op]) -> Vec<Option<BatchPlan>> {
    let n_loops = ops
        .iter()
        .filter(|op| matches!(op, Op::Enter { .. }))
        .count();
    let mut plans: Vec<Option<BatchPlan>> = vec![None; n_loops];
    for (ip, op) in ops.iter().enumerate() {
        let Op::Enter { loop_id, slot, next, .. } = op else { continue };
        let body = ip + 1..*next as usize;
        let descend = ops[body.clone()]
            .iter()
            .position(|o| matches!(o, Op::Enter { .. }))
            .map(|k| (ip + 1 + k) as u32);
        let prefix = ip + 1..descend.map_or(body.end, |d| d as usize);
        let mut rows: Vec<u32> = vec![*slot];
        let mut steps: Vec<LaneStep> = Vec::with_capacity(prefix.len());
        let mut ok = true;
        let mut slab_checks = 0usize;
        for bip in prefix {
            match &ops[bip] {
                Op::Define { slot, expr } => {
                    let step = match LaneProg::compile(expr, &rows) {
                        Some(prog) => LaneStep::Define { prog },
                        None => LaneStep::DefineScalar { expr: expr.clone() },
                    };
                    rows.push(*slot);
                    steps.push(step);
                }
                Op::Check { constraint, expr, elide_bit, on_reject } => {
                    if *on_reject != *next {
                        ok = false;
                        break;
                    }
                    let kind = match LaneProg::compile(expr, &rows) {
                        Some(prog) => {
                            slab_checks += 1;
                            LaneCheck::Slab(prog)
                        }
                        None => LaneCheck::Scalar(expr.clone()),
                    };
                    steps.push(LaneStep::Check {
                        constraint: *constraint,
                        elide_bit: *elide_bit,
                        kind,
                    });
                }
                Op::Visit if descend.is_none() => steps.push(LaneStep::Visit),
                _ => {
                    ok = false;
                    break;
                }
            }
        }
        if descend.is_some() && slab_checks == 0 {
            ok = false;
        }
        if ok {
            // Survivor-only emission is sound when rejected lanes have no
            // observable effect besides their slot writes (reconstructed
            // from the last writer per row): filter plans always qualify
            // (a `Visit` in the prefix rejects the plan above), innermost
            // plans qualify when their single `Visit` is the final step,
            // so a survivor is known to have written every row.
            let fast_emit = descend.is_some()
                || (steps.iter().filter(|s| matches!(s, LaneStep::Visit)).count() == 1
                    && matches!(steps.last(), Some(LaneStep::Visit)));
            plans[*loop_id as usize] = Some(BatchPlan {
                rows,
                steps,
                body_start: (ip + 1) as u32,
                next_ip: *next,
                descend,
                fast_emit,
            });
        }
    }
    plans
}

/// Fuse adjacent `Define` + `Check` pairs into [`Op::FusedDefineCheck`]
/// superinstructions, greedy left-to-right and non-overlapping. The
/// preamble (everything at or before `first_enter`) and the `skip` ip
/// ranges (batchable bodies, whose lane plans address the unfused ops) are
/// left untouched. Returns the fused stream, the old→new instruction index
/// map (the dropped second op of a pair maps to its fused instruction;
/// nothing ever jumps there — reject targets are always a `Next` or
/// `Halt`, and body/exit targets follow an `Enter`/`Next`), and the fused
/// pair count. All jump fields are rewritten through the map.
fn fuse_ops(
    ops: Vec<Op>,
    first_enter: usize,
    skip: &[(usize, usize)],
) -> (Vec<Op>, Vec<usize>, usize) {
    let in_skip = |ip: usize| skip.iter().any(|&(a, b)| (a..b).contains(&ip));
    let mut fused: Vec<Op> = Vec::with_capacity(ops.len());
    let mut map = vec![0usize; ops.len() + 1];
    let mut n_fused = 0usize;
    let mut ops = ops.into_iter().map(Some).collect::<Vec<_>>();
    let mut i = 0;
    while i < ops.len() {
        map[i] = fused.len();
        let fusable = i > first_enter
            && !in_skip(i)
            && !in_skip(i + 1)
            && matches!(ops[i], Some(Op::Define { .. }))
            && matches!(ops.get(i + 1), Some(Some(Op::Check { .. })));
        if fusable {
            let Some(Op::Define { slot, expr: def }) = ops[i].take() else {
                unreachable!("checked above");
            };
            let Some(Op::Check { constraint, expr, elide_bit, on_reject }) =
                ops[i + 1].take()
            else {
                unreachable!("checked above");
            };
            map[i + 1] = fused.len();
            fused.push(Op::FusedDefineCheck {
                slot,
                def,
                constraint,
                expr,
                elide_bit,
                on_reject,
                fuse_id: n_fused as u32,
            });
            n_fused += 1;
            i += 2;
        } else {
            fused.push(ops[i].take().expect("each op consumed once"));
            i += 1;
        }
    }
    map[ops.len()] = fused.len();
    for op in &mut fused {
        match op {
            Op::Enter { next, .. } => *next = map[*next as usize] as u32,
            Op::Next { body, .. } => *body = map[*body as usize] as u32,
            Op::Check { on_reject, .. }
            | Op::CheckOpaque { on_reject, .. }
            | Op::FusedDefineCheck { on_reject, .. } => {
                *on_reject = map[*on_reject as usize] as u32;
            }
            _ => {}
        }
    }
    (fused, map, n_fused)
}

/// Python-range length (0 for empty or zero-step ranges).
fn range_len(start: i64, stop: i64, step: i64) -> u64 {
    if step > 0 && start < stop {
        ((stop as i128 - start as i128 - 1) / step as i128 + 1) as u64
    } else if step < 0 && start > stop {
        ((start as i128 - stop as i128 - 1) / (-(step as i128)) + 1) as u64
    } else {
        0
    }
}

/// Runtime iteration state for one loop of the flat program.
struct Frame {
    kind: FrameKind,
    /// Range iteration.
    cur: i64,
    stop: i64,
    step: i64,
    /// Values/Buffer cursor.
    idx: usize,
    /// Shared static value list (Values domains).
    vals: Arc<[i64]>,
    /// Reusable buffer for opaque realizations and outer chunk overrides.
    buf: Vec<i64>,
    /// Elision mask to restore when this loop exhausts.
    saved_elide: u64,
}

/// Which iteration fields of a [`Frame`] are live.
enum FrameKind {
    Range,
    Values,
    Buffer,
}

/// One loop advance — the single definition of `Op::Next`'s stepping
/// semantics, shared by the scalar interpreter and the batch tier's block
/// fill so both walk identical value sequences and leave identical
/// exhausted frame state.
#[inline]
fn advance_frame(f: &mut Frame) -> Option<i64> {
    match f.kind {
        FrameKind::Range => {
            let x = f.cur.wrapping_add(f.step);
            f.cur = x;
            ((f.step > 0 && x < f.stop) || (f.step < 0 && x > f.stop)).then_some(x)
        }
        FrameKind::Values => {
            f.idx += 1;
            f.vals.get(f.idx).copied()
        }
        FrameKind::Buffer => {
            f.idx += 1;
            f.buf.get(f.idx).copied()
        }
    }
}

struct State<V> {
    stats: PruneStats,
    blocks: BlockStats,
    /// Batch-tier and superinstruction telemetry (see [`LaneStats`]).
    lanes: LaneStats,
    visitor: V,
    stack: Vec<i64>,
    /// Batch tier scratch pool, one [`LaneScratch`] per active batching
    /// depth: a filter plan's descent can re-enter `run_batched` for an
    /// inner plan while the outer block's rows and masks are still live,
    /// so each invocation pops its own scratch and pushes it back on exit.
    lscratch: Vec<LaneScratch>,
    /// Loop-frame pool, one entry per active interpreter depth: filter-plan
    /// descents re-enter `exec` once per surviving lane, so frames are
    /// recycled instead of reallocated.
    frame_pool: Vec<Vec<Frame>>,
    /// Per-slot interval environment for guard runs, maintained
    /// incrementally across runs (see [`GuardInfo`]).
    ivals: Vec<Interval>,
    /// Per-slot congruence environment, maintained in lockstep with
    /// `ivals` (only touched when `opts.congruence` is on).
    cvals: Vec<Congruence>,
    /// Per-master-position memoized guard step outcomes.
    gcache: Vec<GCache>,
    /// Per-loop flag: this guard has completed at least one full scan, so
    /// every position in its range has a cached outcome.
    gprimed: Vec<bool>,
    /// Reusable operand stack for [`IvProg`] guard evaluations.
    gstack: Vec<IntervalOutcome>,
    /// Reusable operand stack for product-domain guard evaluations.
    gpstack: Vec<Product>,
    /// Bitmask of currently elided checks (bit = constraint index).
    elide: u64,
    /// Per-group adaptive schedule state (empty unless adaptive).
    sched: Vec<GroupState>,
    /// Faults recovered from during this run (only under
    /// [`FaultPolicy::SkipPoint`]); drained by the supervisor.
    faults: Vec<FaultRecord>,
    /// Per-run visit counter: the point ordinal faults and the injector are
    /// keyed on. Deterministic for a fixed chunk, independent of threads.
    visit_ordinal: u64,
    /// Countdown for intra-chunk cancel polling (see `CANCEL_POLL_EVERY`).
    poll: u32,
}

/// Reusable batch-tier buffers (see [`State::lscratch`]): `lrows` holds one
/// lane slab per [`BatchPlan`] row, `lstack` the operand scratch for slab
/// program evaluation (slab stack, prologue stack, broadcast temps), and
/// `lmasks` the per-step
/// `[evaluated-or-wrote, rejected]` lane masks recorded during step-major
/// evaluation and consumed by the deferred stats credit and the ordered
/// emission pass.
#[derive(Default)]
struct LaneScratch {
    lrows: Vec<Lane>,
    lstack: EvalScratch,
    lmasks: Vec<[u64; 2]>,
}

/// How many loop advances may pass between two cancel/deadline polls: the
/// bound on cancellation latency, in `Op::Next` executions.
const CANCEL_POLL_EVERY: u32 = 1024;

/// Realized domains shorter than this run scalar even when the loop has a
/// lane plan: block fill, step masks, and the ordered emission pass are
/// per-block overheads that only amortize across enough lanes. Purely a
/// cost switch — both tiers produce bit-identical results.
const MIN_BATCH_LEN: u64 = 8;

/// Per-chunk supervision context threaded through `exec`: the fault policy,
/// the (optional) injector and cancel probe, and the chunk coordinates every
/// [`FaultRecord`] is keyed on. `plain()` is the unsupervised configuration
/// used by [`Compiled::run`] — abort on first error, inject nothing, never
/// poll.
pub(crate) struct ChunkCtx<'a> {
    pub(crate) policy: FaultPolicy,
    pub(crate) injector: Option<&'a FaultInjector>,
    pub(crate) chunk: usize,
    pub(crate) attempt: u32,
    pub(crate) cancel: Option<&'a CancelProbe>,
}

impl ChunkCtx<'static> {
    pub(crate) fn plain() -> Self {
        ChunkCtx {
            policy: FaultPolicy::Abort,
            injector: None,
            chunk: 0,
            attempt: 0,
            cancel: None,
        }
    }
}

/// A supervised chunk execution's result: the outcome plus the faults that
/// were recovered from along the way.
pub(crate) struct ChunkRun<V> {
    pub(crate) outcome: SweepOutcome<V>,
    pub(crate) faults: Vec<FaultRecord>,
}

/// Which expression an evaluation error fired in, as a cheap key resolved to
/// a name only on the (cold) fault path.
#[derive(Clone, Copy)]
enum Site {
    /// A constraint, by constraint index.
    Constraint(u32),
    /// An iterator bound or define, by destination slot.
    Slot(u32),
    /// The injector's visit-time fault site.
    Visit,
}

/// [`Bindings`] view over the compiled backend's slots plus the constant
/// table, used when calling back into opaque closures.
pub struct SlotBindings<'a> {
    /// Slot names.
    pub names: &'a [Arc<str>],
    /// Slot values.
    pub slots: &'a [i64],
    /// The space's constants.
    pub consts: &'a [(Arc<str>, Value)],
}

impl Bindings for SlotBindings<'_> {
    fn get(&self, name: &str) -> Option<Value> {
        if let Some(i) = self.names.iter().position(|n| &**n == name) {
            return Some(Value::Int(self.slots[i]));
        }
        self.consts
            .iter()
            .find(|(n, _)| &**n == name)
            .map(|(_, v)| v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beast_core::constraint::ConstraintClass;
    use beast_core::expr::var;
    use beast_core::plan::{Plan, PlanOptions};
    use beast_core::space::Space;

    use crate::visit::{CollectVisitor, CountVisitor};
    use crate::walker::{LoopStyle, Walker};

    fn compile(space: &std::sync::Arc<Space>) -> Compiled {
        let plan = Plan::new(space, PlanOptions::default()).unwrap();
        Compiled::new(LoweredPlan::new(&plan).unwrap())
    }

    fn compile_no_intervals(space: &std::sync::Arc<Space>) -> Compiled {
        let plan = Plan::new(space, PlanOptions::default()).unwrap();
        Compiled::with_options(
            LoweredPlan::new(&plan).unwrap(),
            EngineOptions::no_intervals(),
        )
    }

    /// Compile with a guard on every eligible loop (`min_guard_fanout: 1`):
    /// the test spaces here are tiny, so the default fanout gate would drop
    /// the very guards the tests exercise.
    fn compile_all_guards(space: &std::sync::Arc<Space>) -> Compiled {
        let plan = Plan::new(space, PlanOptions::default()).unwrap();
        Compiled::with_options(
            LoweredPlan::new(&plan).unwrap(),
            EngineOptions { min_guard_fanout: 1, ..EngineOptions::default() },
        )
    }

    fn mini_space() -> std::sync::Arc<Space> {
        Space::builder("mini")
            .constant("cap", 20)
            .range("a", 1, 5)
            .range_step("b", var("a"), 13, var("a"))
            .derived("ab", var("a") * var("b"))
            .constraint("over", ConstraintClass::Hard, var("ab").gt(var("cap")))
            .build()
            .unwrap()
    }

    #[test]
    fn matches_walker_exactly() {
        let space = mini_space();
        let compiled = compile(&space);
        let plan = Plan::new(&space, PlanOptions::default()).unwrap();
        let walker = Walker::new(&plan, LoopStyle::RangeLazy);

        let w = walker
            .run(CollectVisitor::new(walker.point_names().clone(), 10_000))
            .unwrap();
        let c = compiled
            .run(CollectVisitor::new(compiled.point_names().clone(), 10_000))
            .unwrap();

        assert_eq!(w.stats, c.stats);
        let wp: Vec<(i64, i64, i64)> = w
            .visitor
            .points
            .iter()
            .map(|p| (p.get_int("a"), p.get_int("b"), p.get_int("ab")))
            .collect();
        let cp: Vec<(i64, i64, i64)> = c
            .visitor
            .points
            .iter()
            .map(|p| (p.get_int("a"), p.get_int("b"), p.get_int("ab")))
            .collect();
        assert_eq!(wp, cp);
    }

    #[test]
    fn opaque_iterators_through_callback() {
        let space = Space::builder("opaque")
            .range("n", 1, 6)
            .deferred_iter("d", &["n"], |env| {
                let n = env.require_int("n")?;
                Ok(beast_core::iterator::Realized::Range { start: n, stop: 0, step: -1 })
            })
            .build()
            .unwrap();
        let compiled = compile(&space);
        let out = compiled.run(CountVisitor::default()).unwrap();
        // sum over n of n values = 1+2+3+4+5 = 15.
        assert_eq!(out.visitor.count, 15);
    }

    #[test]
    fn opaque_constraints_and_deriveds() {
        let space = Space::builder("opq2")
            .constant("cap", 6)
            .range("x", 0, 10)
            .derived_fn("x2", &["x"], |env| {
                Ok(Value::Int(env.require_int("x")? * 2))
            })
            .constraint_fn("big", ConstraintClass::Soft, &["x2", "cap"], |env| {
                Ok(env.require_int("x2")? > env.require_int("cap")?)
            })
            .build()
            .unwrap();
        let compiled = compile(&space);
        let out = compiled.run(CountVisitor::default()).unwrap();
        // x in 0..10, keep 2x <= 6 → x in {0,1,2,3}.
        assert_eq!(out.visitor.count, 4);
        assert_eq!(out.stats.pruned[0], 6);
    }

    #[test]
    fn outer_domain_and_chunked_run_match_full_run() {
        let space = mini_space();
        let compiled = compile(&space);
        let full = compiled.run(CountVisitor::default()).unwrap();
        let outer = compiled.outer_domain().unwrap();
        assert_eq!(outer, vec![1, 2, 3, 4]);

        let mut merged = PruneStats::new(1);
        let mut blocks = BlockStats::default();
        let mut count = 0u64;
        for chunk in outer.chunks(2) {
            let out = compiled.run_outer_chunk(chunk, CountVisitor::default()).unwrap();
            merged.merge(&out.stats);
            blocks.merge(&out.blocks);
            count += out.visitor.count;
        }
        assert_eq!(count, full.visitor.count);
        assert_eq!(merged, full.stats);
        assert_eq!(blocks, full.blocks);
    }

    #[test]
    fn preamble_constraint_can_empty_the_space() {
        let space = Space::builder("pre")
            .constant("enabled", 0)
            .range("x", 0, 100)
            .constraint("disabled", ConstraintClass::Generic, var("enabled").eq(0))
            .build()
            .unwrap();
        let compiled = compile(&space);
        let out = compiled.run(CountVisitor::default()).unwrap();
        assert_eq!(out.visitor.count, 0);
        assert_eq!(out.stats.pruned[0], 1);
    }

    #[test]
    fn division_by_zero_propagates() {
        let space = Space::builder("dz")
            .range("x", 0, 4)
            .derived("bad", var("x") / var("x"))
            .build()
            .unwrap();
        let compiled = compile(&space);
        let err = compiled.run(CountVisitor::default()).unwrap_err();
        assert_eq!(err.root(), &EvalError::DivisionByZero);
        // Satellite of the fault work: escaping errors carry the failing
        // define's name and the iterator values at the point of failure.
        let ctx = err.point_context().expect("point context");
        assert_eq!(ctx.site, "bad");
        assert_eq!(ctx.bindings, vec![("x".to_string(), 0)]);
    }

    #[test]
    fn intervals_skip_always_rejected_subtrees() {
        // b in [a, 12]; a*b > 20 rejects the whole b-loop once a >= 5
        // (min product a*a = 25 > 20).
        let space = Space::builder("skip")
            .constant("cap", 20)
            .range("a", 1, 9)
            .range_step("b", var("a"), 13, 1)
            .derived("ab", var("a") * var("b"))
            .constraint("over", ConstraintClass::Hard, var("ab").gt(var("cap")))
            .build()
            .unwrap();
        let on = compile_all_guards(&space).run(CountVisitor::default()).unwrap();
        let off = compile_no_intervals(&space).run(CountVisitor::default()).unwrap();
        assert!(on.blocks.subtree_skips > 0, "expected subtree skips");
        assert!(on.blocks.points_skipped > 0);
        assert_eq!(off.blocks, BlockStats::default());
        // Identical survivors; fewer per-point evaluations with intervals.
        assert_eq!(on.visitor.count, off.visitor.count);
        assert_eq!(on.stats.survivors, off.stats.survivors);
        assert!(
            on.stats.evaluated[0] < off.stats.evaluated[0],
            "skips must remove per-point evaluations"
        );
    }

    #[test]
    fn intervals_elide_always_true_checks_with_identical_stats() {
        // For a = 1, max a*b = 12 <= 20: the check is statically true over
        // the whole b-subtree and is elided, but still counted.
        let space = mini_space();
        let on = compile_all_guards(&space).run(CountVisitor::default()).unwrap();
        let off = compile_no_intervals(&space).run(CountVisitor::default()).unwrap();
        assert!(on.blocks.checks_elided > 0, "expected elided checks");
        assert_eq!(on.blocks.subtree_skips, 0, "mini space has no skippable subtree");
        // Elision is invisible in the funnel: identical PruneStats.
        assert_eq!(on.stats, off.stats);
        assert_eq!(on.visitor.count, off.visitor.count);
    }

    #[test]
    fn intervals_on_and_off_agree_on_survivors_and_order() {
        let space = Space::builder("agree")
            .constant("cap", 40)
            .range("a", 1, 12)
            .range("b", 1, 12)
            .range_step("c", var("a"), 30, var("a"))
            .derived("abc", var("a") * var("b") + var("c"))
            .constraint("over", ConstraintClass::Hard, var("abc").gt(var("cap")))
            .constraint("odd", ConstraintClass::Soft, (var("c") % 2).ne(0))
            .build()
            .unwrap();
        let on = compile_all_guards(&space);
        let off = compile_no_intervals(&space);
        let a = on
            .run(CollectVisitor::new(on.point_names().clone(), usize::MAX))
            .unwrap();
        let b = off
            .run(CollectVisitor::new(off.point_names().clone(), usize::MAX))
            .unwrap();
        assert_eq!(a.stats.survivors, b.stats.survivors);
        let pa: Vec<Vec<i64>> = a
            .visitor
            .points
            .iter()
            .map(|p| p.values().iter().map(|v| v.as_int().unwrap()).collect())
            .collect();
        let pb: Vec<Vec<i64>> = b
            .visitor
            .points
            .iter()
            .map(|p| p.values().iter().map(|v| v.as_int().unwrap()).collect())
            .collect();
        assert_eq!(pa, pb);
    }

    #[test]
    fn guards_respect_error_semantics() {
        // The check is statically false (always rejecting) for x >= 5
        // (x*x > 20), but it depends on `bad`, whose define errors at
        // x = 5 and precedes it in the subtree. The guard must see the
        // unclean define and refuse to skip, so the sweep errors exactly
        // like the per-point engine instead of silently skipping x = 5.
        let space = Space::builder("err")
            .range("x", 0, 8)
            .range("y", 1, 4)
            .derived("xx", var("x") * var("x"))
            .derived("bad", var("y") / (var("x") - 5))
            .constraint(
                "big",
                ConstraintClass::Hard,
                var("xx").gt(20).or(var("bad").gt(99)),
            )
            .build()
            .unwrap();
        let on = compile_all_guards(&space).run(CountVisitor::default());
        let off = compile_no_intervals(&space).run(CountVisitor::default());
        assert_eq!(on.unwrap_err().root(), &EvalError::DivisionByZero);
        assert_eq!(off.unwrap_err().root(), &EvalError::DivisionByZero);
    }

    /// A space with a run of three reorder-safe checks at the innermost
    /// level, declared weakest-first so scheduling has room to improve.
    fn sched_space() -> std::sync::Arc<Space> {
        Space::builder("sched")
            .constant("cap", 60)
            .range("a", 1, 9)
            .range("b", 1, 9)
            .range("c", 1, 9)
            .derived("abc", var("a") * var("b") * var("c"))
            // Declared first, kills almost nothing.
            .constraint("rare", ConstraintClass::Soft, var("abc").gt(500))
            // Declared second, kills some.
            .constraint("mid", ConstraintClass::Soft, var("abc").gt(200))
            // Declared last, kills most.
            .constraint("deadly", ConstraintClass::Hard, var("abc").gt(var("cap")))
            .build()
            .unwrap()
    }

    fn scheduled(space: &std::sync::Arc<Space>, mode: ScheduleMode) -> Compiled {
        let plan = Plan::new(space, PlanOptions::default()).unwrap();
        Compiled::with_options(
            LoweredPlan::new(&plan).unwrap(),
            EngineOptions::scheduled(mode),
        )
    }

    #[test]
    fn schedule_modes_agree_on_survivors_and_order() {
        let space = sched_space();
        let mut baseline: Option<Vec<Vec<i64>>> = None;
        for mode in [ScheduleMode::Declared, ScheduleMode::Static, ScheduleMode::Adaptive] {
            let c = scheduled(&space, mode);
            let out = c
                .run(CollectVisitor::new(c.point_names().clone(), usize::MAX))
                .unwrap();
            let points: Vec<Vec<i64>> = out
                .visitor
                .points
                .iter()
                .map(|p| p.values().iter().map(|v| v.as_int().unwrap()).collect())
                .collect();
            match &baseline {
                None => baseline = Some(points),
                Some(b) => assert_eq!(&points, b, "{mode} diverged from declared"),
            }
        }
    }

    #[test]
    fn static_schedule_reorders_checks_by_expected_cost_to_kill() {
        let space = sched_space();
        let tele = scheduled(&space, ScheduleMode::Static).schedule_telemetry(None);
        assert_eq!(tele.mode, "static");
        assert_eq!(tele.groups.len(), 1);
        // The deadliest check moves to the front of its group.
        assert_eq!(tele.groups[0].initial[0], "deadly");
        assert_eq!(tele.groups[0].initial.len(), 3);
        // Declared mode reports the declared order untouched.
        let declared = scheduled(&space, ScheduleMode::Declared).schedule_telemetry(None);
        assert_eq!(declared.groups[0].initial, vec!["rare", "mid", "deadly"]);
    }

    #[test]
    fn adaptive_run_reports_final_orders() {
        let space = sched_space();
        let c = scheduled(&space, ScheduleMode::Adaptive);
        let out = c.run(CountVisitor::default()).unwrap();
        let finals = out.schedule.as_ref().expect("adaptive runs report a schedule");
        assert_eq!(finals.len(), 1);
        // 9^3 = 729 group executions > ADAPT_EPOCH, so at least one re-sort
        // ran; "deadly" (constraint 2) has by far the best kill rate per op
        // and must end up first.
        let tele = c.schedule_telemetry(Some(finals));
        assert_eq!(tele.groups[0].final_order[0], "deadly");
        // Declared-mode runs don't carry a schedule.
        let d = scheduled(&space, ScheduleMode::Declared);
        assert!(d.run(CountVisitor::default()).unwrap().schedule.is_none());
    }

    #[test]
    fn adaptive_stats_still_count_every_tuple_once() {
        // Reordering shifts which constraint gets the kill credit, but the
        // totals must still account for every tuple: survivors + pruned
        // equals the full cross product at the innermost level.
        let space = sched_space();
        let out = scheduled(&space, ScheduleMode::Adaptive)
            .run(CountVisitor::default())
            .unwrap();
        let declared = scheduled(&space, ScheduleMode::Declared)
            .run(CountVisitor::default())
            .unwrap();
        assert_eq!(out.stats.survivors, declared.stats.survivors);
        assert_eq!(out.stats.total_pruned(), declared.stats.total_pruned());
        assert_eq!(out.visitor.count, declared.visitor.count);
    }

    /// The options signature keys the sub-sweep cache and the checkpoint
    /// compatibility check, so its exact shape is pinned: the default string
    /// must never change silently, every semantic knob must perturb it, and
    /// the struct size is asserted so adding a field without updating
    /// `signature()` (and this test) fails loudly instead of aliasing cache
    /// entries.
    #[test]
    fn engine_options_signature_is_pinned_and_injective_per_field() {
        let d = EngineOptions::default();
        assert_eq!(d.signature(), "iv1cg1g4Declaredb1w64ecompiled");
        assert_eq!(
            EngineOptions::native().signature(),
            "iv1cg1g4Declaredb1w64enative"
        );
        let variants = [
            EngineOptions { intervals: false, ..d },
            EngineOptions { congruence: false, ..d },
            EngineOptions { min_guard_fanout: 2, ..d },
            EngineOptions { schedule: ScheduleMode::Adaptive, ..d },
            EngineOptions { batch: false, ..d },
            EngineOptions { lane_width: 7, ..d },
            EngineOptions { engine: EngineTier::Native, ..d },
            EngineOptions { engine: EngineTier::Walker, ..d },
        ];
        let mut seen = vec![d.signature()];
        for v in variants {
            let sig = v.signature();
            assert!(!seen.contains(&sig), "field change did not alter signature: {sig}");
            seen.push(sig);
        }
        // If this assertion fires you added a field to `EngineOptions`:
        // fold it into `signature()` (unless, like `lint`, it provably
        // cannot change sweep results) and update both pins here.
        assert_eq!(std::mem::size_of::<EngineOptions>(), 24);
    }

    #[test]
    fn engine_tier_parses_its_own_names() {
        for tier in [EngineTier::Walker, EngineTier::Compiled, EngineTier::Native] {
            assert_eq!(EngineTier::parse(tier.as_str()), Some(tier));
            assert_eq!(tier.to_string(), tier.as_str());
        }
        assert_eq!(EngineTier::parse("turbo"), None);
        assert_eq!(EngineTier::default(), EngineTier::Compiled);
    }
}
