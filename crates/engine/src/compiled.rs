//! The *compiled* backend: the in-process analog of the paper's generated C.
//!
//! A [`LoweredPlan`] — constants folded, variables assigned to dense `i64`
//! slots, expressions reduced to integer IR — is reshaped into a loop-nest
//! tree and executed with plain machine integers for loop control: no name
//! lookups, no boxed values, no per-iteration allocation. This is the backend
//! that turns the paper's 18.5-hour Python sweep into minutes (Section XI-D),
//! and the one the multithreaded driver parallelizes.
//!
//! Opaque (deferred/closure) definitions are supported by calling back into
//! the Rust closures through a slot-backed [`Bindings`] view; such calls
//! happen once per realization, not per point, so they do not change the
//! asymptotic cost profile.

use std::sync::Arc;

use beast_core::error::EvalError;
use beast_core::expr::Bindings;
use beast_core::ir::{LBody, LIter, LStep, LoweredPlan};
use beast_core::iterator::Realized;
use beast_core::value::Value;

use crate::point::PointRef;
use crate::postfix::Postfix;
use crate::stats::PruneStats;
use crate::visit::Visitor;
use crate::walker::SweepOutcome;

/// A loop domain in the executable tree.
#[derive(Debug, Clone)]
enum CDomain {
    /// Static range with postfix-compiled bounds evaluated at loop entry.
    Range { start: Postfix, stop: Postfix, step: Postfix },
    /// Static list of values.
    Values(Vec<i64>),
    /// Opaque: realize through the space's iterator definition.
    Opaque { iter: usize },
}

/// Executable node tree (the "generated code").
#[derive(Debug, Clone)]
enum CNode {
    Loop { slot: u32, domain: CDomain, body: Vec<CNode> },
    Define { slot: u32, expr: Postfix },
    DefineOpaque { slot: u32, derived: usize },
    Check { constraint: u32, expr: Postfix },
    CheckOpaque { constraint: u32 },
    Visit,
}

/// The compiled evaluation backend.
pub struct Compiled {
    lp: LoweredPlan,
    /// Preamble nodes (before the first loop) + the loop nest.
    roots: Vec<CNode>,
    point_names: Arc<[Arc<str>]>,
}

/// Signal used to implement `continue` on constraint rejection.
enum Flow {
    /// Keep executing the current body.
    Continue,
    /// A constraint rejected: unwind to the innermost loop.
    Pruned,
}

impl Compiled {
    /// Build the executable tree from a lowered plan.
    pub fn new(lp: LoweredPlan) -> Compiled {
        let mut steps = lp.steps.iter();
        let mut stack: Vec<Vec<CNode>> = vec![Vec::new()];
        let mut open: Vec<(u32, CDomain)> = Vec::new();
        for step in steps.by_ref() {
            match step {
                LStep::Bind { slot, domain, iter, .. } => {
                    let d = match domain {
                        LIter::Range { start, stop, step } => CDomain::Range {
                            start: Postfix::compile(start),
                            stop: Postfix::compile(stop),
                            step: Postfix::compile(step),
                        },
                        LIter::Values(v) => CDomain::Values(v.clone()),
                        LIter::Opaque { .. } => CDomain::Opaque { iter: *iter },
                    };
                    open.push((*slot, d));
                    stack.push(Vec::new());
                }
                LStep::Define { slot, body, derived } => {
                    let node = match body {
                        LBody::Expr(e) => {
                            CNode::Define { slot: *slot, expr: Postfix::compile(e) }
                        }
                        LBody::Opaque => {
                            CNode::DefineOpaque { slot: *slot, derived: *derived }
                        }
                    };
                    stack.last_mut().expect("stack").push(node);
                }
                LStep::Check { constraint, body } => {
                    let node = match body {
                        LBody::Expr(e) => CNode::Check {
                            constraint: *constraint as u32,
                            expr: Postfix::compile(e),
                        },
                        LBody::Opaque => CNode::CheckOpaque { constraint: *constraint as u32 },
                    };
                    stack.last_mut().expect("stack").push(node);
                }
                LStep::Visit => stack.last_mut().expect("stack").push(CNode::Visit),
            }
        }
        // Close all open loops, innermost first.
        while let Some((slot, domain)) = open.pop() {
            let body = stack.pop().expect("loop body");
            stack
                .last_mut()
                .expect("outer body")
                .push(CNode::Loop { slot, domain, body });
        }
        let roots = stack.pop().expect("roots");
        debug_assert!(stack.is_empty());

        let point_names: Arc<[Arc<str>]> =
            Arc::from(lp.slot_names.clone().into_boxed_slice());
        Compiled { lp, roots, point_names }
    }

    /// Names reported for visited points (slot order).
    pub fn point_names(&self) -> &Arc<[Arc<str>]> {
        &self.point_names
    }

    /// The lowered plan this backend executes.
    pub fn lowered(&self) -> &LoweredPlan {
        &self.lp
    }

    /// Run the full sweep.
    pub fn run<V: Visitor>(&self, visitor: V) -> Result<SweepOutcome<V>, EvalError> {
        let space = self.lp.plan.space();
        let mut slots = vec![0i64; self.lp.n_slots as usize];
        let mut state = State {
            stats: PruneStats::new(space.constraints().len()),
            visitor,
            stack: Vec::new(),
        };
        self.exec_body(&self.roots, &mut slots, &mut state)?;
        Ok(SweepOutcome { stats: state.stats, visitor: state.visitor })
    }

    /// Run only a chunk of the outermost loop's domain — the parallel driver
    /// realizes the outer domain once, splits it, and calls this per worker.
    ///
    /// Preamble nodes (defines/checks before the first loop) are re-executed
    /// per chunk; they are loop-invariant so this is correct, and they are
    /// evaluated against constants so it is cheap. Their constraint counters
    /// are *not* re-recorded to keep merged statistics meaningful.
    pub(crate) fn run_outer_chunk<V: Visitor>(
        &self,
        outer_values: &[i64],
        visitor: V,
    ) -> Result<SweepOutcome<V>, EvalError> {
        let space = self.lp.plan.space();
        let mut slots = vec![0i64; self.lp.n_slots as usize];
        let mut state = State {
            stats: PruneStats::new(space.constraints().len()),
            visitor,
            stack: Vec::new(),
        };
        // Execute the preamble without recording, find the outermost loop.
        let mut outer: Option<&CNode> = None;
        for node in &self.roots {
            match node {
                CNode::Loop { .. } => {
                    outer = Some(node);
                    break;
                }
                _ => {
                    // Preamble define/check: execute silently.
                    match self.exec_node_quiet(node, &mut slots)? {
                        Flow::Continue => {}
                        Flow::Pruned => {
                            // A constants-only constraint rejected everything.
                            return Ok(SweepOutcome {
                                stats: state.stats,
                                visitor: state.visitor,
                            });
                        }
                    }
                }
            }
        }
        let Some(CNode::Loop { slot, body, .. }) = outer else {
            // No loops at all (cannot happen: spaces require iterators).
            return Ok(SweepOutcome { stats: state.stats, visitor: state.visitor });
        };
        for &v in outer_values {
            slots[*slot as usize] = v;
            self.exec_body(body, &mut slots, &mut state)?;
        }
        Ok(SweepOutcome { stats: state.stats, visitor: state.visitor })
    }

    /// Execute the preamble (pre-loop defines/checks) once, *recording* the
    /// constraint evaluations into `stats`. Returns `false` if a preamble
    /// constraint rejected, in which case the whole space is empty. The
    /// parallel driver calls this once so that merged statistics match a
    /// serial run (workers execute the preamble quietly).
    pub(crate) fn preamble_record(&self, stats: &mut PruneStats) -> Result<bool, EvalError> {
        let mut slots = vec![0i64; self.lp.n_slots as usize];
        let mut stack = Vec::new();
        for node in &self.roots {
            match node {
                CNode::Loop { .. } => break,
                CNode::Check { constraint, expr } => {
                    let rejected = expr.eval(&slots, &mut stack)? != 0;
                    stats.record(*constraint as usize, rejected);
                    if rejected {
                        return Ok(false);
                    }
                }
                CNode::CheckOpaque { constraint } => {
                    let rejected = {
                        let view = self.bindings_view(&slots);
                        self.lp.plan.space().constraints()[*constraint as usize]
                            .kind
                            .rejects(&view)?
                    };
                    stats.record(*constraint as usize, rejected);
                    if rejected {
                        return Ok(false);
                    }
                }
                other => {
                    let _ = self.exec_node_quiet(other, &mut slots)?;
                }
            }
        }
        Ok(true)
    }

    /// Realize the outermost (level-0) loop's domain.
    ///
    /// Level-0 iterators depend only on constants, so this is cheap and
    /// side-effect free. The parallel driver splits this domain into
    /// scheduler chunks; it is public so external tooling can size or
    /// inspect a sweep before running it.
    pub fn outer_domain(&self) -> Result<Vec<i64>, EvalError> {
        let slots = vec![0i64; self.lp.n_slots as usize];
        for node in &self.roots {
            if let CNode::Loop { domain, .. } = node {
                return match domain {
                    CDomain::Range { start, stop, step } => {
                        let mut stack = Vec::new();
                        let r = Realized::Range {
                            start: start.eval(&slots, &mut stack)?,
                            stop: stop.eval(&slots, &mut stack)?,
                            step: step.eval(&slots, &mut stack)?,
                        };
                        r.iter().map(|v| v.as_int()).collect()
                    }
                    CDomain::Values(v) => Ok(v.clone()),
                    CDomain::Opaque { iter } => {
                        let view = self.bindings_view(&slots);
                        let r = self.lp.plan.space().realize_iter(*iter, &view)?;
                        r.iter().map(|v| v.as_int()).collect()
                    }
                };
            }
        }
        Ok(Vec::new())
    }

    fn bindings_view<'a>(&'a self, slots: &'a [i64]) -> SlotBindings<'a> {
        SlotBindings {
            names: &self.lp.slot_names,
            slots,
            consts: self.lp.plan.space().consts(),
        }
    }

    /// Execute a preamble node without recording statistics.
    fn exec_node_quiet(&self, node: &CNode, slots: &mut [i64]) -> Result<Flow, EvalError> {
        let mut stack = Vec::new();
        match node {
            CNode::Define { slot, expr } => {
                slots[*slot as usize] = expr.eval(slots, &mut stack)?;
                Ok(Flow::Continue)
            }
            CNode::DefineOpaque { slot, derived } => {
                let v = {
                    let view = self.bindings_view(slots);
                    self.lp.plan.space().deriveds()[*derived].kind.eval(&view)?
                };
                slots[*slot as usize] = v.as_int()?;
                Ok(Flow::Continue)
            }
            CNode::Check { expr, .. } => {
                if expr.eval(slots, &mut stack)? != 0 {
                    Ok(Flow::Pruned)
                } else {
                    Ok(Flow::Continue)
                }
            }
            CNode::CheckOpaque { constraint } => {
                let rejected = {
                    let view = self.bindings_view(slots);
                    self.lp.plan.space().constraints()[*constraint as usize]
                        .kind
                        .rejects(&view)?
                };
                if rejected {
                    Ok(Flow::Pruned)
                } else {
                    Ok(Flow::Continue)
                }
            }
            CNode::Visit | CNode::Loop { .. } => Ok(Flow::Continue),
        }
    }

    fn exec_body<V: Visitor>(
        &self,
        body: &[CNode],
        slots: &mut Vec<i64>,
        state: &mut State<V>,
    ) -> Result<Flow, EvalError> {
        for node in body {
            match node {
                CNode::Loop { slot, domain, body } => {
                    match domain {
                        CDomain::Range { start, stop, step } => {
                            // The tight path: loop control on locals.
                            let start = start.eval(slots, &mut state.stack)?;
                            let stop = stop.eval(slots, &mut state.stack)?;
                            let step = step.eval(slots, &mut state.stack)?;
                            if step > 0 {
                                let mut x = start;
                                while x < stop {
                                    slots[*slot as usize] = x;
                                    self.exec_body(body, slots, state)?;
                                    x += step;
                                }
                            } else if step < 0 {
                                let mut x = start;
                                while x > stop {
                                    slots[*slot as usize] = x;
                                    self.exec_body(body, slots, state)?;
                                    x += step;
                                }
                            }
                        }
                        CDomain::Values(values) => {
                            for &v in values {
                                slots[*slot as usize] = v;
                                self.exec_body(body, slots, state)?;
                            }
                        }
                        CDomain::Opaque { iter } => {
                            let realized = {
                                let view = self.bindings_view(slots);
                                self.lp.plan.space().realize_iter(*iter, &view)?
                            };
                            let mut cursor = realized.iter();
                            while let Some(v) = cursor.next() {
                                slots[*slot as usize] = v.as_int()?;
                                self.exec_body(body, slots, state)?;
                            }
                        }
                    }
                    // A loop consumes prunes from its body; continue after it.
                }
                CNode::Define { slot, expr } => {
                    slots[*slot as usize] = expr.eval(slots, &mut state.stack)?;
                }
                CNode::DefineOpaque { slot, derived } => {
                    let v = {
                        let view = self.bindings_view(slots);
                        self.lp.plan.space().deriveds()[*derived].kind.eval(&view)?
                    };
                    slots[*slot as usize] = v.as_int()?;
                }
                CNode::Check { constraint, expr } => {
                    let rejected = expr.eval(slots, &mut state.stack)? != 0;
                    state.stats.record(*constraint as usize, rejected);
                    if rejected {
                        return Ok(Flow::Pruned);
                    }
                }
                CNode::CheckOpaque { constraint } => {
                    let rejected = {
                        let view = self.bindings_view(slots);
                        self.lp.plan.space().constraints()[*constraint as usize]
                            .kind
                            .rejects(&view)?
                    };
                    state.stats.record(*constraint as usize, rejected);
                    if rejected {
                        return Ok(Flow::Pruned);
                    }
                }
                CNode::Visit => {
                    state.stats.record_survivor();
                    let view =
                        PointRef::Slots { names: &self.lp.slot_names, slots };
                    state.visitor.visit(&view);
                }
            }
        }
        Ok(Flow::Continue)
    }
}

struct State<V> {
    stats: PruneStats,
    visitor: V,
    stack: Vec<i64>,
}

/// [`Bindings`] view over the compiled backend's slots plus the constant
/// table, used when calling back into opaque closures.
pub struct SlotBindings<'a> {
    /// Slot names.
    pub names: &'a [Arc<str>],
    /// Slot values.
    pub slots: &'a [i64],
    /// The space's constants.
    pub consts: &'a [(Arc<str>, Value)],
}

impl Bindings for SlotBindings<'_> {
    fn get(&self, name: &str) -> Option<Value> {
        if let Some(i) = self.names.iter().position(|n| &**n == name) {
            return Some(Value::Int(self.slots[i]));
        }
        self.consts
            .iter()
            .find(|(n, _)| &**n == name)
            .map(|(_, v)| v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beast_core::constraint::ConstraintClass;
    use beast_core::expr::var;
    use beast_core::plan::{Plan, PlanOptions};
    use beast_core::space::Space;

    use crate::visit::{CollectVisitor, CountVisitor};
    use crate::walker::{LoopStyle, Walker};

    fn compile(space: &std::sync::Arc<Space>) -> Compiled {
        let plan = Plan::new(space, PlanOptions::default()).unwrap();
        Compiled::new(LoweredPlan::new(&plan).unwrap())
    }

    fn mini_space() -> std::sync::Arc<Space> {
        Space::builder("mini")
            .constant("cap", 20)
            .range("a", 1, 5)
            .range_step("b", var("a"), 13, var("a"))
            .derived("ab", var("a") * var("b"))
            .constraint("over", ConstraintClass::Hard, var("ab").gt(var("cap")))
            .build()
            .unwrap()
    }

    #[test]
    fn matches_walker_exactly() {
        let space = mini_space();
        let compiled = compile(&space);
        let plan = Plan::new(&space, PlanOptions::default()).unwrap();
        let walker = Walker::new(&plan, LoopStyle::RangeLazy);

        let w = walker
            .run(CollectVisitor::new(walker.point_names().clone(), 10_000))
            .unwrap();
        let c = compiled
            .run(CollectVisitor::new(compiled.point_names().clone(), 10_000))
            .unwrap();

        assert_eq!(w.stats, c.stats);
        let wp: Vec<(i64, i64, i64)> = w
            .visitor
            .points
            .iter()
            .map(|p| (p.get_int("a"), p.get_int("b"), p.get_int("ab")))
            .collect();
        let cp: Vec<(i64, i64, i64)> = c
            .visitor
            .points
            .iter()
            .map(|p| (p.get_int("a"), p.get_int("b"), p.get_int("ab")))
            .collect();
        assert_eq!(wp, cp);
    }

    #[test]
    fn opaque_iterators_through_callback() {
        let space = Space::builder("opaque")
            .range("n", 1, 6)
            .deferred_iter("d", &["n"], |env| {
                let n = env.require_int("n")?;
                Ok(beast_core::iterator::Realized::Range { start: n, stop: 0, step: -1 })
            })
            .build()
            .unwrap();
        let compiled = compile(&space);
        let out = compiled.run(CountVisitor::default()).unwrap();
        // sum over n of n values = 1+2+3+4+5 = 15.
        assert_eq!(out.visitor.count, 15);
    }

    #[test]
    fn opaque_constraints_and_deriveds() {
        let space = Space::builder("opq2")
            .constant("cap", 6)
            .range("x", 0, 10)
            .derived_fn("x2", &["x"], |env| {
                Ok(Value::Int(env.require_int("x")? * 2))
            })
            .constraint_fn("big", ConstraintClass::Soft, &["x2", "cap"], |env| {
                Ok(env.require_int("x2")? > env.require_int("cap")?)
            })
            .build()
            .unwrap();
        let compiled = compile(&space);
        let out = compiled.run(CountVisitor::default()).unwrap();
        // x in 0..10, keep 2x <= 6 → x in {0,1,2,3}.
        assert_eq!(out.visitor.count, 4);
        assert_eq!(out.stats.pruned[0], 6);
    }

    #[test]
    fn outer_domain_and_chunked_run_match_full_run() {
        let space = mini_space();
        let compiled = compile(&space);
        let full = compiled.run(CountVisitor::default()).unwrap();
        let outer = compiled.outer_domain().unwrap();
        assert_eq!(outer, vec![1, 2, 3, 4]);

        let mut merged = PruneStats::new(1);
        let mut count = 0u64;
        for chunk in outer.chunks(2) {
            let out = compiled.run_outer_chunk(chunk, CountVisitor::default()).unwrap();
            merged.merge(&out.stats);
            count += out.visitor.count;
        }
        assert_eq!(count, full.visitor.count);
        assert_eq!(merged, full.stats);
    }

    #[test]
    fn preamble_constraint_can_empty_the_space() {
        let space = Space::builder("pre")
            .constant("enabled", 0)
            .range("x", 0, 100)
            .constraint("disabled", ConstraintClass::Generic, var("enabled").eq(0))
            .build()
            .unwrap();
        let compiled = compile(&space);
        let out = compiled.run(CountVisitor::default()).unwrap();
        assert_eq!(out.visitor.count, 0);
        assert_eq!(out.stats.pruned[0], 1);
    }

    #[test]
    fn division_by_zero_propagates() {
        let space = Space::builder("dz")
            .range("x", 0, 4)
            .derived("bad", var("x") / var("x"))
            .build()
            .unwrap();
        let compiled = compile(&space);
        let err = compiled.run(CountVisitor::default()).unwrap_err();
        assert_eq!(err, EvalError::DivisionByZero);
    }
}
