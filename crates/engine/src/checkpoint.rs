//! Checkpoint/resume for long sweeps: periodically persist the merged
//! chunk-order prefix of a supervised run to a JSON file, and complete only
//! the missing chunk suffix after an interruption.
//!
//! The paper's headline GEMM enumeration runs for 66 948 s in Python; at
//! that scale a power cut or a deadline must not discard a day of work. A
//! checkpoint stores the one thing the supervisor needs to continue — the
//! index of the first unfinished chunk — together with everything already
//! merged for the prefix before it: pruning statistics, block-pruning
//! counters, fault records and the visitor state (via [`SaveState`]).
//! Because [`crate::parallel`] folds chunks strictly in chunk order, the
//! prefix edge is a single number and a resumed sweep is bit-identical to an
//! uninterrupted one (asserted in `tests/fault_tolerance.rs`).
//!
//! The format is hand-rolled JSON, like the rest of the crate's telemetry —
//! the build environment cannot vendor `serde` — so this module also carries
//! a minimal recursive-descent JSON parser ([`JsonValue`]). Counters are
//! written as exact decimal integers and parsed as `i128`, never routed
//! through `f64`, which would silently round 64-bit hashes above 2^53. The
//! sub-sweep cache in [`crate::service::cache`] persists through the same
//! machinery: the parser, the [`SaveState`] visitor encoding, the shared
//! stats/blocks (de)serializers, and the atomic write protocol.
//!
//! Writes are atomic: the file is written to `<path>.tmp` and renamed over
//! the target, so a crash mid-write leaves the previous checkpoint intact.

use std::path::{Path, PathBuf};

use beast_core::ir::LoweredPlan;

use crate::fault::{FaultAction, FaultKind, FaultRecord};
use crate::parallel::{run_supervised, CkSink, CkSnapshot, ParallelOptions, ResumeSeed};
use crate::stats::{BlockStats, PruneStats};
use crate::sweep::SweepError;
use crate::telemetry::{fault_record_json, json_str, SweepReport};
use crate::visit::{CountVisitor, FingerprintVisitor, Visitor};
use crate::walker::SweepOutcome;

/// Current checkpoint file format version.
///
/// Format 2 appends a trailing `"crc"` field — FNV-1a 64 over every byte
/// before the `,"crc":"` suffix — so truncation and bit flips are detected
/// on resume instead of merging silently wrong counters. Format 1 files
/// (no crc) remain readable.
const FORMAT: i128 = 2;

/// FNV-1a 64-bit over `bytes`: the checkpoint integrity checksum. Chosen
/// because it is std-only, byte-order free, and already the hashing idiom
/// of the crate (the structural fingerprint in [`crate::service`] is the
/// same construction).
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A parsed JSON value (minimal, std-only).
///
/// Integers are kept exact as `i128` — wide enough for any `u64` counter —
/// and only lexically float numbers become [`JsonValue::Float`].
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer literal, exact.
    Int(i128),
    /// A number with a fraction or exponent.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in document order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parse a complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser { b: text.as_bytes(), i: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(format!("trailing data at byte {}", p.i));
        }
        Ok(v)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => {
                fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The elements of an array.
    pub fn items(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// String payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Exact unsigned integer (rejects floats and out-of-range values).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// Exact signed integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Int(i) => i64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// Exact `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            JsonValue::Int(i) => usize::try_from(*i).ok(),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", c as char, self.i))
        }
    }

    fn eat_literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.i))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b't') => self.eat_literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.eat_literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.eat_literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.i)),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            // Duplicate keys are rejected outright: `get` returns the first
            // match, so a duplicated counter later in the file would be
            // silently ignored — exactly the corruption a checkpoint parser
            // must refuse to guess about.
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key `{key}` at byte {}", self.i));
            }
            self.skip_ws();
            self.expect(b':')?;
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.i += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.i)),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so byte
                    // boundaries are guaranteed valid).
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.i += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.i += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).unwrap();
        if float {
            text.parse::<f64>()
                .map(JsonValue::Float)
                .map_err(|_| format!("bad number `{text}`"))
        } else {
            text.parse::<i128>()
                .map(JsonValue::Int)
                .map_err(|_| format!("bad number `{text}`"))
        }
    }
}

/// Visitor state that can round-trip through a checkpoint file.
///
/// `save_state` returns one JSON *value* (it is embedded under the
/// checkpoint's `"visitor"` key); `load_state` restores it into a freshly
/// constructed visitor. The contract is exactness: a visitor loaded from
/// `save_state` must behave bit-identically to the one that saved it, or
/// resume determinism breaks.
pub trait SaveState {
    /// Serialize the accumulated state as a JSON value.
    fn save_state(&self) -> String;
    /// Restore state saved by [`SaveState::save_state`].
    fn load_state(&mut self, v: &JsonValue) -> Result<(), String>;
}

impl SaveState for CountVisitor {
    fn save_state(&self) -> String {
        format!("{{\"count\":{}}}", self.count)
    }

    fn load_state(&mut self, v: &JsonValue) -> Result<(), String> {
        self.count = v
            .get("count")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| "visitor state: missing count".to_string())?;
        Ok(())
    }
}

impl SaveState for FingerprintVisitor {
    fn save_state(&self) -> String {
        format!(
            "{{\"hash\":{},\"pow\":{},\"count\":{}}}",
            self.hash, self.pow, self.count
        )
    }

    fn load_state(&mut self, v: &JsonValue) -> Result<(), String> {
        let field = |key: &str| {
            v.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("visitor state: missing {key}"))
        };
        self.hash = field("hash")?;
        self.pow = field("pow")?;
        self.count = field("count")?;
        Ok(())
    }
}

/// Where, how often, and whether to resume a checkpointed sweep.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Checkpoint file path.
    pub path: PathBuf,
    /// Persist after this many newly completed chunks (min 1; the final
    /// state is always flushed on exit).
    pub every_chunks: usize,
    /// Load `path` and complete only the missing chunks. Without this flag
    /// an existing file is overwritten and the sweep starts from scratch.
    pub resume: bool,
}

impl CheckpointConfig {
    /// Checkpoint to `path` every 8 chunks, without resuming.
    pub fn new(path: impl Into<PathBuf>) -> CheckpointConfig {
        CheckpointConfig { path: path.into(), every_chunks: 8, resume: false }
    }
}

/// [`crate::parallel::run_parallel_report`] with checkpoint persistence and
/// optional resume.
///
/// On resume the chunk grid is pinned from the file (never re-derived from
/// the thread count), the completed prefix `0..next` is seeded into the
/// merge, and workers evaluate only chunks `next..`; the final outcome is
/// bit-identical to an uninterrupted run. A missing file with
/// [`CheckpointConfig::resume`] set, or a checkpoint recorded for a
/// different space shape, fails with [`SweepError::Checkpoint`].
pub fn run_checkpointed<V, F>(
    lp: &LoweredPlan,
    opts: &ParallelOptions,
    ck: &CheckpointConfig,
    make_visitor: F,
) -> Result<(SweepOutcome<V>, SweepReport), SweepError>
where
    V: Visitor + Send + SaveState,
    F: Fn() -> V + Sync,
{
    let space_name = lp.plan.space().name().to_string();
    // The same execution-options fingerprint that scopes the sub-sweep cache
    // is recorded in every checkpoint: resuming a prefix evaluated under
    // different options (another engine tier, pruning toggles, schedule)
    // would merge counters with incompatible accounting.
    let engine_sig = opts.engine.signature();
    let seed = if ck.resume {
        let text = std::fs::read_to_string(&ck.path).map_err(|e| {
            SweepError::Checkpoint(format!(
                "cannot read checkpoint {}: {e}",
                ck.path.display()
            ))
        })?;
        parse_checkpoint(&text, &space_name, &engine_sig, &make_visitor)
            .map_err(SweepError::Checkpoint)?
    } else {
        None
    };
    let writer =
        |snap: &CkSnapshot<'_, V>| write_checkpoint(&ck.path, &space_name, &engine_sig, snap);
    let sink = CkSink { every: ck.every_chunks.max(1), write: &writer };
    run_supervised(lp, opts, make_visitor, seed, Some(&sink), None)
}

/// Serialize and atomically persist one snapshot.
pub(crate) fn write_checkpoint<V: SaveState>(
    path: &Path,
    space: &str,
    engine_sig: &str,
    snap: &CkSnapshot<'_, V>,
) -> Result<(), String> {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(1024);
    let _ = write!(out, "{{\"format\":{FORMAT},");
    json_str(&mut out, "space", space);
    out.push(',');
    json_str(&mut out, "engine", engine_sig);
    let _ = write!(
        out,
        ",\"outer_len\":{},\"chunk_len\":{},\"chunks\":{},\"next\":{}",
        snap.outer_len, snap.chunk_len, snap.chunks, snap.next
    );
    out.push_str(",\"stats\":");
    stats_json(&mut out, snap.stats);
    out.push_str(",\"blocks\":");
    blocks_json(&mut out, snap.blocks);
    out.push_str(",\"faults\":[");
    for (i, r) in snap.faults.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        fault_record_json(&mut out, r);
    }
    out.push_str("],\"visitor\":");
    out.push_str(&snap.visitor.save_state());
    // Format 2 integrity suffix: the checksum covers every byte before it,
    // so the parser can recompute the same prefix with a single `rfind`.
    let crc = fnv64(out.as_bytes());
    let _ = write!(out, ",\"crc\":\"{crc:016x}\"}}");

    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, &out)
        .map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| format!("cannot rename {} over {}: {e}", tmp.display(), path.display()))
}

pub(crate) fn u64_array(out: &mut String, values: &[u64]) {
    use std::fmt::Write as _;
    out.push('[');
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
}

/// Append [`PruneStats`] as a JSON object with exact integer counters.
/// Shared by the checkpoint writer and the sub-sweep cache store.
pub(crate) fn stats_json(out: &mut String, stats: &PruneStats) {
    use std::fmt::Write as _;
    out.push_str("{\"evaluated\":");
    u64_array(out, &stats.evaluated);
    out.push_str(",\"pruned\":");
    u64_array(out, &stats.pruned);
    let _ = write!(out, ",\"survivors\":{}}}", stats.survivors);
}

/// Append [`BlockStats`] as a JSON object with exact integer counters.
pub(crate) fn blocks_json(out: &mut String, blocks: &BlockStats) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "{{\"subtree_skips\":{},\"congruence_skips\":{},\
         \"points_skipped\":{},\"checks_elided\":{}}}",
        blocks.subtree_skips,
        blocks.congruence_skips,
        blocks.points_skipped,
        blocks.checks_elided
    );
}

/// Parse a [`PruneStats`] object written by [`stats_json`]. `ctx` prefixes
/// error messages (e.g. `"checkpoint"` or `"cache"`).
pub(crate) fn parse_stats(doc: &JsonValue, ctx: &str) -> Result<PruneStats, String> {
    let counters = |key: &str| -> Result<Vec<u64>, String> {
        doc.get(key)
            .and_then(JsonValue::items)
            .ok_or_else(|| format!("{ctx}: stats.{key} missing"))?
            .iter()
            .map(|v| v.as_u64().ok_or_else(|| format!("{ctx}: stats.{key} not integers")))
            .collect()
    };
    let stats = PruneStats {
        evaluated: counters("evaluated")?,
        pruned: counters("pruned")?,
        survivors: doc
            .get("survivors")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("{ctx}: stats.survivors missing"))?,
    };
    if stats.evaluated.len() != stats.pruned.len() {
        return Err(format!("{ctx}: stats arrays disagree in length"));
    }
    Ok(stats)
}

/// Parse a [`BlockStats`] object written by [`blocks_json`].
pub(crate) fn parse_blocks(doc: &JsonValue, ctx: &str) -> Result<BlockStats, String> {
    let block = |key: &str| {
        doc.get(key)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("{ctx}: blocks.{key} missing"))
    };
    Ok(BlockStats {
        subtree_skips: block("subtree_skips")?,
        congruence_skips: block("congruence_skips")?,
        points_skipped: block("points_skipped")?,
        checks_elided: block("checks_elided")?,
    })
}

/// Parse and validate a checkpoint file into a [`ResumeSeed`]. Returns
/// `Ok(None)` when the file records no completed chunks (fresh start).
pub(crate) fn parse_checkpoint<V: Visitor + SaveState>(
    text: &str,
    space: &str,
    engine_sig: &str,
    make_visitor: &dyn Fn() -> V,
) -> Result<Option<ResumeSeed<V>>, String> {
    let doc = JsonValue::parse(text).map_err(|e| format!("malformed checkpoint: {e}"))?;
    let field = |key: &str| doc.get(key).ok_or_else(|| format!("checkpoint: missing `{key}`"));
    let usize_field = |key: &str| {
        field(key)?.as_usize().ok_or_else(|| format!("checkpoint: `{key}` is not an integer"))
    };

    let format = field("format")?
        .as_i64()
        .ok_or_else(|| "checkpoint: `format` is not an integer".to_string())?;
    if format != 1 && format != FORMAT as i64 {
        return Err(format!("checkpoint: unsupported format {format}"));
    }
    // Format 1 predates the checksum and stays readable; format 2 files
    // must carry a valid crc before any counter is trusted.
    if format >= 2 {
        verify_crc(text, &doc)?;
    }
    let recorded_space = field("space")?.as_str().unwrap_or_default();
    if recorded_space != space {
        return Err(format!(
            "checkpoint is for space `{recorded_space}`, not `{space}`"
        ));
    }
    // `engine` was added after format 1 shipped: absent means an older file
    // written before options were recorded, which stays resumable; present
    // and different means the prefix counters were produced under other
    // execution options and cannot be merged.
    if let Some(recorded_engine) = doc.get("engine").and_then(JsonValue::as_str) {
        if recorded_engine != engine_sig {
            return Err(format!(
                "checkpoint was written with engine options `{recorded_engine}`, \
                 current options are `{engine_sig}`"
            ));
        }
    }
    let outer_len = usize_field("outer_len")?;
    let chunk_len = usize_field("chunk_len")?;
    let chunks = usize_field("chunks")?;
    let next = usize_field("next")?;
    if next > chunks || chunk_len == 0 {
        return Err(format!(
            "checkpoint: inconsistent grid (next {next}, chunks {chunks}, chunk_len {chunk_len})"
        ));
    }
    if next == 0 {
        return Ok(None);
    }

    let stats = parse_stats(field("stats")?, "checkpoint")?;
    let blocks = parse_blocks(field("blocks")?, "checkpoint")?;

    let faults = field("faults")?
        .items()
        .ok_or_else(|| "checkpoint: faults is not an array".to_string())?
        .iter()
        .map(parse_fault_record)
        .collect::<Result<Vec<_>, _>>()?;

    let mut visitor = make_visitor();
    visitor.load_state(field("visitor")?)?;

    Ok(Some(ResumeSeed { outer_len, chunk_len, next, stats, blocks, faults, visitor }))
}

/// Verify the trailing `,"crc":"…"` suffix of a format-2 checkpoint:
/// recompute FNV-1a 64 over the byte prefix and compare against the
/// recorded value. Truncation, bit flips in the body, and flips inside the
/// crc itself all fail here with a structured error.
fn verify_crc(text: &str, doc: &JsonValue) -> Result<(), String> {
    let recorded = doc
        .get("crc")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| "checkpoint: format 2 requires a `crc` field".to_string())?;
    let recorded = u64::from_str_radix(recorded, 16)
        .map_err(|_| "checkpoint: `crc` is not 64-bit hex".to_string())?;
    // The writer emits the crc as the final field, so the last occurrence
    // of the marker is the real suffix boundary even if a string payload
    // earlier in the file happens to contain the same bytes.
    let marker = ",\"crc\":\"";
    let pos = text
        .rfind(marker)
        .ok_or_else(|| "checkpoint: `crc` suffix missing".to_string())?;
    let computed = fnv64(&text.as_bytes()[..pos]);
    if computed != recorded {
        return Err(format!(
            "checkpoint: crc mismatch (recorded {recorded:016x}, computed {computed:016x}) \
             — file is corrupt, refusing to resume"
        ));
    }
    Ok(())
}

pub(crate) fn parse_fault_record(v: &JsonValue) -> Result<FaultRecord, String> {
    let miss = |key: &str| format!("checkpoint: fault record missing `{key}`");
    Ok(FaultRecord {
        chunk: v.get("chunk").and_then(JsonValue::as_usize).ok_or_else(|| miss("chunk"))?,
        ordinal: v.get("ordinal").and_then(JsonValue::as_u64).ok_or_else(|| miss("ordinal"))?,
        attempt: v
            .get("attempt")
            .and_then(JsonValue::as_u64)
            .and_then(|a| u32::try_from(a).ok())
            .ok_or_else(|| miss("attempt"))?,
        kind: v
            .get("kind")
            .and_then(JsonValue::as_str)
            .and_then(FaultKind::parse)
            .ok_or_else(|| miss("kind"))?,
        action: v
            .get("action")
            .and_then(JsonValue::as_str)
            .and_then(FaultAction::parse)
            .ok_or_else(|| miss("action"))?,
        site: v.get("site").and_then(JsonValue::as_str).ok_or_else(|| miss("site"))?.to_string(),
        error: v.get("error").and_then(JsonValue::as_str).ok_or_else(|| miss("error"))?.to_string(),
        bindings: v
            .get("bindings")
            .and_then(JsonValue::items)
            .ok_or_else(|| miss("bindings"))?
            .iter()
            .map(|pair| {
                let items = pair.items().filter(|p| p.len() == 2)?;
                Some((items[0].as_str()?.to_string(), items[1].as_i64()?))
            })
            .collect::<Option<Vec<_>>>()
            .ok_or_else(|| "checkpoint: malformed fault bindings".to_string())?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiled::EngineOptions;

    #[test]
    fn json_parser_round_trips_scalars_and_nesting() {
        let doc = JsonValue::parse(
            r#"{"a": 1, "b": [true, null, -7, 2.5, "x\nyA"], "c": {"d": 18446744073709551615}}"#,
        )
        .unwrap();
        assert_eq!(doc.get("a").unwrap(), &JsonValue::Int(1));
        let b = doc.get("b").unwrap().items().unwrap();
        assert_eq!(b[0], JsonValue::Bool(true));
        assert_eq!(b[1], JsonValue::Null);
        assert_eq!(b[2].as_i64(), Some(-7));
        assert_eq!(b[3], JsonValue::Float(2.5));
        assert_eq!(b[4].as_str(), Some("x\nyA"));
        // u64::MAX survives exactly (this is why integers are i128, not f64).
        assert_eq!(doc.get("c").unwrap().get("d").unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn json_parser_rejects_garbage() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "{} extra", "\"unterminated", "tru"] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn visitor_states_round_trip() {
        let counted = CountVisitor { count: 12345 };
        let mut restored = CountVisitor::default();
        restored.load_state(&JsonValue::parse(&counted.save_state()).unwrap()).unwrap();
        assert_eq!(restored.count, 12345);

        let fp = FingerprintVisitor { hash: u64::MAX - 3, pow: 0x123456789abcdef0, count: 7 };
        let mut restored = FingerprintVisitor::new();
        restored.load_state(&JsonValue::parse(&fp.save_state()).unwrap()).unwrap();
        assert_eq!(restored, fp);
    }

    #[test]
    fn fault_records_round_trip_through_json() {
        let record = FaultRecord {
            chunk: 3,
            ordinal: 42,
            attempt: 1,
            kind: FaultKind::Panic,
            action: FaultAction::QuarantinedChunk,
            site: "chunk".to_string(),
            error: "injected panic (chunk 3)\"quoted\"".to_string(),
            bindings: vec![("x".to_string(), -5), ("y".to_string(), 9)],
        };
        let mut out = String::new();
        fault_record_json(&mut out, &record);
        let parsed = parse_fault_record(&JsonValue::parse(&out).unwrap()).unwrap();
        assert_eq!(parsed, record);
    }

    #[test]
    fn checkpoint_file_round_trips() {
        let dir = std::env::temp_dir().join("beast-ck-unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.json");
        let stats = PruneStats {
            evaluated: vec![10, 20],
            pruned: vec![1, 2],
            survivors: 27,
        };
        let blocks = BlockStats {
            subtree_skips: 4,
            congruence_skips: 1,
            points_skipped: 99,
            checks_elided: 6,
        };
        let visitor = FingerprintVisitor { hash: 0xdead_beef_dead_beef, pow: 3, count: 27 };
        let faults = vec![FaultRecord {
            chunk: 1,
            ordinal: 0,
            attempt: 0,
            kind: FaultKind::Error,
            action: FaultAction::SkippedPoint,
            site: "bad".to_string(),
            error: "division by zero".to_string(),
            bindings: vec![("x".to_string(), 10)],
        }];
        let sig = EngineOptions::default().signature();
        write_checkpoint(
            &path,
            "unit",
            &sig,
            &CkSnapshot {
                outer_len: 64,
                chunk_len: 8,
                chunks: 8,
                next: 5,
                stats: &stats,
                blocks: &blocks,
                faults: &faults,
                visitor: &visitor,
            },
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let seed =
            parse_checkpoint::<FingerprintVisitor>(&text, "unit", &sig, &FingerprintVisitor::new)
                .unwrap()
                .expect("next > 0 must produce a seed");
        assert_eq!((seed.outer_len, seed.chunk_len, seed.next), (64, 8, 5));
        assert_eq!(seed.stats, stats);
        assert_eq!(seed.blocks, blocks);
        assert_eq!(seed.faults, faults);
        assert_eq!(seed.visitor, visitor);
        // Space mismatch is refused.
        assert!(parse_checkpoint::<FingerprintVisitor>(
            &text,
            "other",
            &sig,
            &FingerprintVisitor::new
        )
        .is_err());
        // Engine-options mismatch is refused: a prefix evaluated under the
        // native tier (or different pruning toggles) cannot be merged with
        // chunks evaluated under the defaults.
        let native_sig = EngineOptions::native().signature();
        let mismatch = parse_checkpoint::<FingerprintVisitor>(
            &text,
            "unit",
            &native_sig,
            &FingerprintVisitor::new,
        );
        match mismatch {
            Err(err) => assert!(err.contains("engine options"), "{err}"),
            Ok(_) => panic!("engine-options mismatch must be refused"),
        }
        // A pre-options checkpoint (no `engine` key) stays resumable. Such
        // files are format 1 and carry no crc, so rebuild one by downgrading
        // the format and stripping both newer fields.
        let legacy = text
            .replacen("{\"format\":2,", "{\"format\":1,", 1)
            .replacen(&format!(",\"engine\":\"{sig}\""), "", 1);
        assert_ne!(legacy, text, "engine key must be present to strip");
        let crc_at = legacy.rfind(",\"crc\":\"").expect("crc suffix must be present to strip");
        let legacy = format!("{}}}", &legacy[..crc_at]);
        assert!(parse_checkpoint::<FingerprintVisitor>(
            &legacy,
            "unit",
            &sig,
            &FingerprintVisitor::new
        )
        .unwrap()
        .is_some());
        std::fs::remove_file(&path).ok();
    }

    /// Format 2 corruption is caught by the crc: flipping any single body
    /// byte, truncating the file, or doctoring the recorded crc itself all
    /// yield a structured error instead of a silent wrong resume.
    #[test]
    fn checkpoint_crc_catches_corruption() {
        let stats = PruneStats { evaluated: vec![10], pruned: vec![1], survivors: 9 };
        let blocks = BlockStats::default();
        let visitor = CountVisitor { count: 9 };
        let dir = std::env::temp_dir().join("beast-ck-crc-unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("crc.json");
        let sig = EngineOptions::default().signature();
        write_checkpoint(
            &path,
            "unit",
            &sig,
            &CkSnapshot {
                outer_len: 16,
                chunk_len: 4,
                chunks: 4,
                next: 2,
                stats: &stats,
                blocks: &blocks,
                faults: &[],
                visitor: &visitor,
            },
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let parse = |t: &str| {
            parse_checkpoint::<CountVisitor>(t, "unit", &sig, &CountVisitor::default)
        };
        assert!(parse(&text).unwrap().is_some(), "pristine file must parse");

        // Flip the survivor count: structurally valid JSON, wrong bytes.
        let flipped = text.replacen("\"survivors\":9", "\"survivors\":8", 1);
        assert_ne!(flipped, text);
        let err = parse(&flipped).err().expect("flipped body must be refused");
        assert!(err.contains("crc mismatch"), "{err}");

        // Doctor the recorded crc itself.
        let crc_at = text.rfind(",\"crc\":\"").unwrap() + ",\"crc\":\"".len();
        let mut doctored = text.clone();
        let old = doctored.as_bytes()[crc_at];
        let new = if old == b'0' { '1' } else { '0' };
        doctored.replace_range(crc_at..crc_at + 1, &new.to_string());
        let err = parse(&doctored).err().expect("doctored crc must be refused");
        assert!(err.contains("crc"), "{err}");

        // Truncations anywhere are either a parse error or a crc mismatch,
        // never Ok.
        for cut in 1..text.len() {
            assert!(parse(&text[..cut]).is_err(), "truncation at {cut} accepted");
        }
    }

    /// Duplicate keys are a parse error everywhere: `get` returns the first
    /// match, so accepting duplicates would silently ignore the second copy
    /// of a counter.
    #[test]
    fn json_parser_rejects_duplicate_keys() {
        assert!(JsonValue::parse(r#"{"a":1,"a":2}"#).is_err());
        assert!(JsonValue::parse(r#"{"a":{"b":1,"b":1}}"#).is_err());
        assert!(JsonValue::parse(r#"{"a":1,"b":{"a":2}}"#).is_ok(), "nesting is not duplication");
    }
}
