//! Pruning visualization — the textual funnel's graphical siblings,
//! following the paper's companion work (reference \[7\], Haugen & Kurzak,
//! VISSOFT'14: a radial space-filling view of how constraints carve the
//! search space).
//!
//! Two dependency-free SVG renderers:
//!
//! * [`funnel_svg`] — horizontal bars, one per constraint in plan order:
//!   bar length = tuples evaluated, filled portion = tuples rejected,
//!   annotated with the kill rate;
//! * [`radial_svg`] — a radial space-filling chart: one ring segment per
//!   constraint, angular extent proportional to the share of all rejected
//!   tuples, colored by constraint class (the Fig.-16 palette).

use std::fmt::Write as _;

use beast_core::constraint::ConstraintClass;
use beast_core::space::Space;

use crate::stats::PruneStats;

fn class_color(class: ConstraintClass) -> &'static str {
    match class {
        ConstraintClass::Hard => "#d9534f",
        ConstraintClass::Soft => "#f0ad4e",
        ConstraintClass::Correctness => "#5bc0de",
        ConstraintClass::Generic => "#999999",
    }
}

/// Render the pruning funnel as an SVG bar chart.
pub fn funnel_svg(stats: &PruneStats, space: &Space) -> String {
    let n = space.constraints().len();
    let row_h = 28.0;
    let label_w = 230.0;
    let bar_w = 520.0;
    let width = label_w + bar_w + 130.0;
    let height = row_h * n as f64 + 70.0;
    let max_eval = stats.evaluated.iter().copied().max().unwrap_or(1).max(1) as f64;

    let mut s = String::new();
    let _ = write!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" font-family="monospace" font-size="12">"#
    );
    let _ = write!(
        s,
        r#"<text x="10" y="20" font-size="14" font-weight="bold">pruning funnel — {} ({} survivors)</text>"#,
        space.name(),
        stats.survivors
    );
    for (i, c) in space.constraints().iter().enumerate() {
        let y = 40.0 + i as f64 * row_h;
        let evaluated = stats.evaluated[i] as f64;
        let pruned = stats.pruned[i] as f64;
        // Log-ish scaling keeps small counts visible next to huge ones.
        let scale = |v: f64| -> f64 {
            if v <= 0.0 {
                0.0
            } else {
                bar_w * (1.0 + v).ln() / (1.0 + max_eval).ln()
            }
        };
        let w_eval = scale(evaluated);
        let w_pruned = scale(pruned);
        let color = class_color(c.class);
        let _ = write!(
            s,
            r#"<text x="{}" y="{}" text-anchor="end">{}</text>"#,
            label_w - 10.0,
            y + 14.0,
            c.name
        );
        let _ = write!(
            s,
            r##"<rect x="{label_w}" y="{y}" width="{w_eval:.1}" height="18" fill="#e8e8e8" stroke="#bbb"/>"##
        );
        let _ = write!(
            s,
            r#"<rect x="{label_w}" y="{y}" width="{w_pruned:.1}" height="18" fill="{color}"/>"#
        );
        let _ = write!(
            s,
            r#"<text x="{}" y="{}">{:.1}% of {}</text>"#,
            label_w + bar_w + 8.0,
            y + 14.0,
            100.0 * stats.kill_rate(i),
            stats.evaluated[i]
        );
    }
    // Legend.
    let ly = 40.0 + n as f64 * row_h + 8.0;
    let mut lx = label_w;
    for class in [
        ConstraintClass::Hard,
        ConstraintClass::Soft,
        ConstraintClass::Correctness,
        ConstraintClass::Generic,
    ] {
        let _ = write!(
            s,
            r#"<rect x="{lx}" y="{ly}" width="12" height="12" fill="{}"/><text x="{}" y="{}">{class}</text>"#,
            class_color(class),
            lx + 16.0,
            ly + 11.0
        );
        lx += 110.0;
    }
    s.push_str("</svg>");
    s
}

/// Render the rejection shares as a radial space-filling chart (one ring
/// segment per constraint, angle ∝ share of all rejections; the inner disc
/// area lists the survivor count).
pub fn radial_svg(stats: &PruneStats, space: &Space) -> String {
    let size = 460.0;
    let cx = size / 2.0;
    let cy = size / 2.0;
    let r_outer = 170.0;
    let r_inner = 80.0;
    let total: u64 = stats.total_pruned().max(1);

    let mut s = String::new();
    let _ = write!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{size}" height="{}" font-family="monospace" font-size="11">"#,
        size + 30.0 + 16.0 * space.constraints().len() as f64
    );
    let _ = write!(
        s,
        r#"<text x="{cx}" y="20" text-anchor="middle" font-size="14" font-weight="bold">rejection shares — {}</text>"#,
        space.name()
    );

    let mut angle = -std::f64::consts::FRAC_PI_2; // start at 12 o'clock
    for (i, c) in space.constraints().iter().enumerate() {
        let share = stats.pruned[i] as f64 / total as f64;
        if share <= 0.0 {
            continue;
        }
        let sweep = share * std::f64::consts::TAU;
        let a0 = angle;
        let a1 = angle + sweep;
        angle = a1;
        let large = i64::from(sweep > std::f64::consts::PI);
        let (x0o, y0o) = (cx + r_outer * a0.cos(), cy + r_outer * a0.sin());
        let (x1o, y1o) = (cx + r_outer * a1.cos(), cy + r_outer * a1.sin());
        let (x0i, y0i) = (cx + r_inner * a0.cos(), cy + r_inner * a0.sin());
        let (x1i, y1i) = (cx + r_inner * a1.cos(), cy + r_inner * a1.sin());
        let _ = write!(
            s,
            r#"<path d="M {x0i:.2} {y0i:.2} L {x0o:.2} {y0o:.2} A {r_outer} {r_outer} 0 {large} 1 {x1o:.2} {y1o:.2} L {x1i:.2} {y1i:.2} A {r_inner} {r_inner} 0 {large} 0 {x0i:.2} {y0i:.2} Z" fill="{}" stroke="white" stroke-width="1"><title>{}: {} rejections ({:.1}%)</title></path>"#,
            class_color(c.class),
            c.name,
            stats.pruned[i],
            100.0 * share
        );
    }
    let _ = write!(
        s,
        r#"<text x="{cx}" y="{cy}" text-anchor="middle">survivors</text><text x="{cx}" y="{}" text-anchor="middle" font-weight="bold">{}</text>"#,
        cy + 16.0,
        stats.survivors
    );
    // Per-constraint legend with shares.
    for (i, c) in space.constraints().iter().enumerate() {
        let y = size + 12.0 + 16.0 * i as f64;
        let _ = write!(
            s,
            r#"<rect x="20" y="{}" width="10" height="10" fill="{}"/><text x="36" y="{}">{} — {} rejected</text>"#,
            y - 9.0,
            class_color(c.class),
            y,
            c.name,
            stats.pruned[i]
        );
    }
    s.push_str("</svg>");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use beast_core::expr::var;
    use beast_core::space::Space;

    fn space_and_stats() -> (std::sync::Arc<Space>, PruneStats) {
        let space = Space::builder("viz")
            .range("x", 0, 100)
            .constraint("hard_cap", ConstraintClass::Hard, var("x").gt(80))
            .constraint("odd", ConstraintClass::Soft, (var("x") % 2).ne(0))
            .build()
            .unwrap();
        let mut stats = PruneStats::new(2);
        for x in 0..100 {
            stats.record(0, x > 80);
            if x > 80 {
                continue;
            }
            stats.record(1, x % 2 != 0);
            if x % 2 == 0 {
                stats.record_survivor();
            }
        }
        (space, stats)
    }

    #[test]
    fn funnel_svg_structure() {
        let (space, stats) = space_and_stats();
        let svg = funnel_svg(&stats, &space);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("hard_cap"));
        assert!(svg.contains("odd"));
        assert!(svg.contains("survivors"));
        // Two data bars plus two backgrounds plus legend squares.
        assert!(svg.matches("<rect").count() >= 6);
    }

    #[test]
    fn radial_svg_structure() {
        let (space, stats) = space_and_stats();
        let svg = radial_svg(&stats, &space);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        // One ring segment per constraint that rejected anything.
        assert_eq!(svg.matches("<path").count(), 2);
        assert!(svg.contains("rejections"));
    }

    #[test]
    fn empty_stats_render_without_panicking() {
        let (space, _) = space_and_stats();
        let stats = PruneStats::new(2);
        let f = funnel_svg(&stats, &space);
        let r = radial_svg(&stats, &space);
        assert!(f.contains("</svg>"));
        assert!(r.contains("</svg>"));
        assert_eq!(r.matches("<path").count(), 0);
    }
}
