//! The runtime-native tier: lower the plan to a standalone C *chunk worker*,
//! compile it once with the host C compiler, and evaluate level-0 chunks in
//! worker processes instead of the in-process compiled engine.
//!
//! This closes the paper's loop at runtime: the same generated-C speed the
//! offline study measures (Figs. 17–19, the ~253× C-vs-Python headline) is
//! folded back into the live sweep. The contract is strict bit-identity —
//! survivors, emission order, per-constraint [`PruneStats`] and visitor
//! fingerprints must match the compiled engine exactly — so the worker's C
//! arithmetic helpers mirror the engine's wrapping/Euclidean semantics
//! operator for operator, and the host decodes each worker's entire output
//! and validates it before a single visit is replayed.
//!
//! The tier is best-effort by design: any failure to prepare (no compiler on
//! `PATH`, opaque plan steps, compile error) or to run a chunk (spawn
//! failure, protocol violation, worker crash) falls back to the in-process
//! compiled engine, silently for preparation and counted per chunk in
//! [`NativeStats`] for execution. A sweep therefore never fails *because*
//! the native tier exists.

use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use beast_codegen::{emit_chunk_worker, lower, toolchain, Program, PROTOCOL_VERSION, ROW_SENTINEL};
use beast_core::hash::Fnv1a;
use beast_core::ir::LoweredPlan;

use crate::compiled::EngineOptions;
use crate::point::PointRef;
use crate::stats::PruneStats;
use crate::visit::Visitor;
use crate::walker::SweepOutcome;

/// Counters describing what the native tier did during one sweep. Reported
/// in [`crate::telemetry::SweepReport`] as `native`; `None` there means the
/// tier never activated (not requested, or preparation fell back).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NativeStats {
    /// Wall-clock milliseconds spent compiling the worker (0 on an
    /// artifact-cache hit).
    pub compile_ms: u64,
    /// 1 if the compiled worker binary was reused from the artifact cache.
    pub artifact_cache_hits: u64,
    /// Chunks evaluated by worker processes.
    pub chunks_native: u64,
    /// Survivor rows streamed back from workers.
    pub rows_streamed: u64,
    /// Chunks that fell back to the in-process compiled engine after a
    /// worker-side failure.
    pub chunks_fallback: u64,
}

/// A prepared native tier for one plan: the compiled worker binary plus the
/// stream-shape facts needed to decode its output.
pub struct NativeContext {
    bin: PathBuf,
    n_vars: usize,
    n_constraints: usize,
    compile_ms: u64,
    cache_hit: bool,
    chunks_native: AtomicU64,
    rows_streamed: AtomicU64,
    chunks_fallback: AtomicU64,
}

/// Directory holding compiled worker binaries, keyed by plan structure.
/// Overridable via `BEAST_NATIVE_CACHE_DIR` (CI uses this for an isolated,
/// inspectable cache); defaults to a stable subdirectory of the system
/// temp dir so repeated sweeps of the same plan skip the compile entirely.
fn cache_dir() -> PathBuf {
    match std::env::var_os("BEAST_NATIVE_CACHE_DIR") {
        Some(dir) => PathBuf::from(dir),
        None => std::env::temp_dir().join("beast-native-cache"),
    }
}

impl NativeContext {
    /// Lower `lp` to a chunk worker, compile it (or reuse a cached binary),
    /// and return a ready-to-dispatch context. Any `Err` means the caller
    /// should fall back to the in-process compiled engine; the message is
    /// diagnostic only.
    pub fn prepare(lp: &LoweredPlan, opts: &EngineOptions) -> Result<NativeContext, String> {
        if lp.has_opaque_steps() {
            return Err("plan has opaque host-closure steps; no printable source".into());
        }
        let cc = toolchain::find_c_compiler()
            .ok_or_else(|| "no C compiler (gcc/cc) on PATH".to_string())?;
        let program = Program::from_lowered(lp).map_err(|e| e.to_string())?;
        let lowered = lower(&program);
        let source = emit_chunk_worker(&lowered).map_err(|e| e.to_string())?;

        // Artifact key: plan structure + exact emitted source + protocol
        // version + the options signature + which compiler. Source and
        // structural hash overlap, but hashing both means neither an emitter
        // change nor a structural-hash change can alias a stale binary.
        let mut h = Fnv1a::new();
        h.write_u64(lp.structural_hash());
        h.write_bytes(source.as_bytes());
        h.write_u64(u64::from(PROTOCOL_VERSION));
        h.write_bytes(opts.signature().as_bytes());
        h.write_bytes(cc.to_string_lossy().as_bytes());
        let key = h.finish();

        let dir = cache_dir();
        std::fs::create_dir_all(&dir).map_err(|e| format!("cache dir: {e}"))?;
        let bin = dir.join(format!("worker-{key:016x}"));

        let (compile_ms, cache_hit) = if bin.is_file() {
            (0, true)
        } else {
            let src_path = dir.join(format!("worker-{key:016x}.c"));
            toolchain::write_source(&src_path, &source).map_err(|e| e.to_string())?;
            // Compile to a pid-suffixed temp name, then atomically rename:
            // concurrent sweeps of the same plan race benignly (last rename
            // wins, both binaries are identical).
            let tmp = dir.join(format!("worker-{key:016x}.tmp.{}", std::process::id()));
            let took = toolchain::compile(&cc, &["-O2"], &src_path, &tmp)
                .map_err(|e| e.to_string())?;
            std::fs::rename(&tmp, &bin).map_err(|e| format!("install binary: {e}"))?;
            (took.as_millis() as u64, false)
        };

        Ok(NativeContext {
            bin,
            n_vars: lowered.vars.len(),
            n_constraints: lowered.constraint_names.len(),
            compile_ms,
            cache_hit,
            chunks_native: AtomicU64::new(0),
            rows_streamed: AtomicU64::new(0),
            chunks_fallback: AtomicU64::new(0),
        })
    }

    /// Snapshot the counters for the sweep report.
    pub fn stats(&self) -> NativeStats {
        NativeStats {
            compile_ms: self.compile_ms,
            artifact_cache_hits: u64::from(self.cache_hit),
            chunks_native: self.chunks_native.load(Ordering::Relaxed),
            rows_streamed: self.rows_streamed.load(Ordering::Relaxed),
            chunks_fallback: self.chunks_fallback.load(Ordering::Relaxed),
        }
    }

    /// Record that a chunk fell back to the in-process engine.
    pub fn note_fallback(&self) {
        self.chunks_fallback.fetch_add(1, Ordering::Relaxed);
    }

    /// Evaluate one level-0 chunk in a worker process and replay its
    /// survivor rows into `visitor`.
    ///
    /// The worker's whole output is read and validated — row lengths, the
    /// sentinel, the counter trailer, the survivor count, absence of
    /// trailing bytes — *before* any visit happens, so a failed chunk can
    /// be retried in-process without double-visiting.
    pub fn run_chunk<V: Visitor>(
        &self,
        chunk: &[i64],
        names: &[Arc<str>],
        mut visitor: V,
    ) -> Result<SweepOutcome<V>, String> {
        let mut child = Command::new(&self.bin)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .map_err(|e| format!("spawn worker: {e}"))?;

        {
            let stdin = child.stdin.as_mut().expect("piped stdin");
            let n = u32::try_from(chunk.len()).map_err(|_| "chunk too large".to_string())?;
            let mut buf = Vec::with_capacity(4 + chunk.len() * 8);
            buf.extend_from_slice(&n.to_ne_bytes());
            for v in chunk {
                buf.extend_from_slice(&v.to_ne_bytes());
            }
            stdin.write_all(&buf).map_err(|e| format!("write chunk: {e}"))?;
        }
        drop(child.stdin.take());

        let out = child.wait_with_output().map_err(|e| format!("wait worker: {e}"))?;
        if !out.status.success() {
            return Err(format!(
                "worker exited with {}: {}",
                out.status,
                String::from_utf8_lossy(&out.stderr).trim()
            ));
        }

        let mut r = StreamReader { buf: &out.stdout, pos: 0 };
        let row_len = self.n_vars.max(1);
        let mut rows: Vec<i64> = Vec::new();
        let mut n_rows: u64 = 0;
        loop {
            let len = r.u32()?;
            if len == ROW_SENTINEL {
                break;
            }
            if len as usize != 8 * self.n_vars {
                return Err(format!(
                    "bad row length {len} (expected {})",
                    8 * self.n_vars
                ));
            }
            for _ in 0..self.n_vars {
                rows.push(r.i64()?);
            }
            n_rows += 1;
        }
        let nc = r.u32()? as usize;
        if nc != self.n_constraints {
            return Err(format!(
                "trailer reports {nc} constraints (expected {})",
                self.n_constraints
            ));
        }
        let mut stats = PruneStats {
            evaluated: vec![0; nc],
            pruned: vec![0; nc],
            survivors: 0,
        };
        for i in 0..nc {
            stats.evaluated[i] = r.u64()?;
            stats.pruned[i] = r.u64()?;
        }
        stats.survivors = r.u64()?;
        if r.pos != r.buf.len() {
            return Err(format!("{} trailing bytes after trailer", r.buf.len() - r.pos));
        }
        if stats.survivors != n_rows {
            return Err(format!(
                "trailer claims {} survivors but {} rows streamed",
                stats.survivors, n_rows
            ));
        }

        // Fully validated: replay the rows in worker emission order.
        if self.n_vars > 0 {
            for slots in rows.chunks_exact(row_len) {
                visitor.visit(&PointRef::Slots { names, slots });
            }
        } else {
            for _ in 0..n_rows {
                visitor.visit(&PointRef::Slots { names, slots: &[] });
            }
        }
        self.chunks_native.fetch_add(1, Ordering::Relaxed);
        self.rows_streamed.fetch_add(n_rows, Ordering::Relaxed);

        Ok(SweepOutcome {
            stats,
            blocks: Default::default(),
            schedule: None,
            lanes: Default::default(),
            visitor,
        })
    }
}

/// Cursor over the worker's stdout bytes; every read is bounds-checked so a
/// truncated or corrupt stream becomes a clean protocol error.
struct StreamReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl StreamReader<'_> {
    fn take<const N: usize>(&mut self) -> Result<[u8; N], String> {
        let end = self.pos.checked_add(N).filter(|&e| e <= self.buf.len());
        let end = end.ok_or_else(|| "truncated worker stream".to_string())?;
        let mut out = [0u8; N];
        out.copy_from_slice(&self.buf[self.pos..end]);
        self.pos = end;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, String> {
        self.take().map(u32::from_ne_bytes)
    }

    fn u64(&mut self) -> Result<u64, String> {
        self.take().map(u64::from_ne_bytes)
    }

    fn i64(&mut self) -> Result<i64, String> {
        self.take().map(i64::from_ne_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiled::Compiled;
    use crate::visit::{CollectVisitor, CountVisitor};
    use beast_core::constraint::ConstraintClass;
    use beast_core::expr::var;
    use beast_core::plan::{Plan, PlanOptions};
    use beast_core::space::Space;

    fn small_plan() -> LoweredPlan {
        let s = Space::builder("native-unit")
            .range("a", 1, 9)
            .range("b", 1, 9)
            .derived("ab", var("a") * var("b"))
            .constraint("cap", ConstraintClass::Hard, var("ab").gt(30))
            .build()
            .unwrap();
        let plan = Plan::new(&s, PlanOptions::default()).unwrap();
        LoweredPlan::new(&plan).unwrap()
    }

    #[test]
    fn prepare_and_run_chunk_matches_in_process_engine() {
        let Some(_) = toolchain::find_c_compiler() else { return };
        let lp = small_plan();
        let opts = EngineOptions::native();
        let ctx = NativeContext::prepare(&lp, &opts).expect("prepare");

        // Reference: the in-process compiled engine over the full space,
        // normalized the way the parallel driver does for native runs.
        let norm = EngineOptions {
            intervals: false,
            congruence: false,
            schedule: Default::default(),
            ..opts
        };
        let compiled = Compiled::with_options(lp.clone(), norm);
        let names = compiled.point_names().clone();
        let outer = compiled.outer_domain().expect("outer domain");
        assert!(!outer.is_empty());

        let nat = ctx
            .run_chunk(&outer, &names, CollectVisitor::new(names.clone(), 10_000))
            .expect("native chunk");
        let reference = compiled
            .run(CollectVisitor::new(names.clone(), 10_000))
            .expect("reference run");

        assert_eq!(nat.visitor.total, reference.visitor.total);
        assert_eq!(nat.visitor.points, reference.visitor.points);
        assert_eq!(nat.stats, reference.stats);
        assert_eq!(ctx.stats().chunks_native, 1);
        assert_eq!(ctx.stats().rows_streamed, nat.stats.survivors);
    }

    #[test]
    fn second_prepare_hits_artifact_cache() {
        let Some(_) = toolchain::find_c_compiler() else { return };
        let lp = small_plan();
        let opts = EngineOptions::native();
        let first = NativeContext::prepare(&lp, &opts).expect("prepare 1");
        let second = NativeContext::prepare(&lp, &opts).expect("prepare 2");
        // First call may or may not hit depending on prior runs, but the
        // second is guaranteed to reuse the binary the first installed.
        let _ = first;
        assert_eq!(second.stats().artifact_cache_hits, 1);
        assert_eq!(second.stats().compile_ms, 0);
    }

    #[test]
    fn corrupt_stream_is_rejected_before_any_visit() {
        let mut r = StreamReader { buf: &[1, 2, 3], pos: 0 };
        assert!(r.u32().is_err());

        // A bad row length must error rather than visiting garbage; emulate
        // by decoding a hand-built stream through the same reader paths.
        let mut buf = Vec::new();
        buf.extend_from_slice(&7u32.to_ne_bytes()); // not a multiple of 8
        let mut r = StreamReader { buf: &buf, pos: 0 };
        let len = r.u32().unwrap();
        assert_ne!(len, ROW_SENTINEL);
        assert_ne!(len as usize % 8, 0);
    }

    #[test]
    fn run_chunk_on_empty_chunk_reports_zero_everything() {
        let Some(_) = toolchain::find_c_compiler() else { return };
        let lp = small_plan();
        let ctx = NativeContext::prepare(&lp, &EngineOptions::native()).expect("prepare");
        let names: Vec<Arc<str>> = Vec::new();
        let out = ctx
            .run_chunk(&[], &names, CountVisitor::default())
            .expect("empty chunk");
        assert_eq!(out.stats.survivors, 0);
        assert_eq!(out.visitor.count, 0);
    }
}
