//! Distributed sharded sweeps: a multi-process supervisor that deals level-0
//! chunk shards to worker *processes* and folds their results bit-identically
//! to a serial run.
//!
//! [`crate::parallel`] scales a sweep across threads; this module scales it
//! across processes — the unit of isolation that survives `kill -9`, OOM
//! kills, and hung evaluations. The supervisor re-invokes a worker command
//! (normally the `repro` binary in its hidden `worker` mode), speaks a
//! length-prefixed JSON protocol over the worker's stdin/stdout, and deals
//! shards dynamically: each shard is one scheduler chunk of the level-0
//! domain, the same unit [`crate::parallel::run_parallel`]'s supervisor
//! schedules across threads. Workers run the existing fault-tolerant chunk
//! loop and stream back per-chunk outcomes ([`SaveState`] visitor blocks
//! plus [`FaultRecord`]s), which the supervisor validates fully before
//! folding **in chunk order** through the same collector the thread pool
//! uses.
//!
//! # Wire protocol v1
//!
//! Every frame is a 4-byte big-endian length followed by that many bytes of
//! UTF-8 JSON (max 64 MiB). Supervisor → worker: `hello` (space name,
//! structural fingerprint, engine signature, fault policy, heartbeat
//! interval), `shard` (chunk index + its level-0 values), `bye`. Worker →
//! supervisor: `ready` (echoes fingerprint + signature for the handshake),
//! `hb` (heartbeat while a shard is in flight), `done` (chunk outcome +
//! faults), `fail` (abort-policy error or panic). The full grammar and
//! failure matrix live in `docs/DISTRIBUTED.md`.
//!
//! # Robustness model
//!
//! Worker death (crash, `kill -9`, closed pipe), silence (heartbeat/read
//! deadline expired) and lies (malformed or mismatched replies) are all
//! *worker-level faults*: the in-flight shard is re-dealt with exponential
//! backoff — to a respawned worker while the restart budget lasts, then to
//! the supervisor's own in-process engine — and recorded as a [`FaultRecord`]
//! with kind [`FaultKind::WorkerExit`] / [`FaultKind::WorkerTimeout`] /
//! [`FaultKind::ProtocolError`]. After [`DistributeOptions::shard_retry_max`]
//! failed attempts the shard is quarantined exactly like a chunk under
//! [`FaultPolicy::QuarantineChunk`]. When spawning fails entirely the run
//! degrades to in-process evaluation and still completes. Because nothing
//! from a failed attempt is ever folded (a worker's reply is validated
//! in full first, and evaluation is deterministic), retries cannot change
//! the merged outcome: survivors, emission order, statistics and
//! fingerprints are bit-identical to a serial run at any worker count.
//!
//! Checkpoint integration reuses [`crate::checkpoint`] unchanged — the
//! supervisor folds in chunk order, so `kill -9` of the *supervisor* is
//! resumable with [`run_distributed_checkpointed`], and a resumed run is
//! bit-identical to an uninterrupted one (`tests/distribute.rs` in
//! `beast-bench` asserts this end to end).

use std::collections::{BTreeMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use beast_core::error::EvalError;
use beast_core::ir::LoweredPlan;

use crate::checkpoint::{
    blocks_json, parse_blocks, parse_checkpoint, parse_fault_record, parse_stats, stats_json,
    u64_array, write_checkpoint, CheckpointConfig, JsonValue, SaveState,
};
use crate::compiled::{ChunkCtx, Compiled, EngineOptions, EngineTier};
use crate::fault::{FaultAction, FaultKind, FaultPolicy, FaultRecord};
use crate::parallel::{
    chunk_len_for, panic_message, ChunkDone, CkSink, Collector, ResumeSeed,
};
use crate::stats::{BlockStats, FaultCounters, LaneStats, PruneStats};
use crate::sweep::SweepError;
use crate::telemetry::{fault_record_json, json_str, SweepProgress, SweepReport, WorkerTelemetry};
use crate::visit::Visitor;
use crate::walker::SweepOutcome;

/// Wire protocol version spoken by [`serve_worker`] and the supervisor.
pub const PROTOCOL_VERSION: u64 = 1;

/// Upper bound on a single frame payload (64 MiB). A length prefix beyond
/// this is treated as a protocol violation, not an allocation request.
const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Hard ceiling on one retry backoff sleep, so exponential growth cannot
/// stall the deal for minutes.
const MAX_BACKOFF_MS: u64 = 2_000;

/// Configuration for [`run_distributed`].
#[derive(Debug, Clone)]
pub struct DistributeOptions {
    /// Worker *processes* to spawn (values below 1 are treated as 1).
    pub workers: usize,
    /// Command line for one worker: program plus arguments. The worker must
    /// speak protocol v1 on stdin/stdout — normally this is
    /// `[repro, "worker", <dim>, ...]` built by the CLI. An empty command
    /// skips spawning entirely and evaluates every shard in-process.
    pub worker_cmd: Vec<String>,
    /// Explicit total number of scheduler chunks (0 = derive from the worker
    /// count like [`crate::parallel::ParallelOptions::chunk_count`]). Pin
    /// this for fault injection and cross-worker-count determinism checks.
    pub chunk_count: usize,
    /// Compiled-engine options; workers must be configured identically
    /// (verified at handshake via [`EngineOptions::signature`]).
    pub engine: EngineOptions,
    /// What an evaluation error or chunk panic does inside a worker — the
    /// same policy semantics as a threaded sweep, applied worker-side.
    pub fault_policy: FaultPolicy,
    /// Heartbeat/read deadline per worker: if no frame (heartbeats included)
    /// arrives within this window while a shard is in flight, the worker is
    /// declared hung, killed, and the shard re-dealt.
    pub heartbeat: Duration,
    /// Worker-level attempts per shard beyond the first; when exhausted the
    /// shard is quarantined as a [`FaultAction::QuarantinedChunk`].
    pub shard_retry_max: u32,
    /// Base backoff before re-dealing a failed shard; doubles per attempt,
    /// capped at 2 s.
    pub shard_backoff_ms: u64,
    /// Total worker respawns allowed across the run (0 = automatic:
    /// `2 × workers`). Once spent, slots that lose their worker degrade to
    /// in-process evaluation instead of respawning.
    pub restart_max: usize,
    /// Optional shared progress counters, bumped once per folded chunk.
    pub progress: Option<Arc<SweepProgress>>,
    /// Stop dealing new shards after this many chunks (0 = no limit) — the
    /// deterministic interruption knob for checkpoint/resume tests.
    pub stop_after_chunks: usize,
    /// Chaos knob: `kill -9` the worker that receives the Nth dealt shard
    /// (1-based) right after dispatching it. Exercises the `WorkerExit`
    /// recovery path deterministically in tests and the CI smoke job.
    pub chaos_kill_after: Option<u64>,
}

impl DistributeOptions {
    /// Options for `workers` processes running `worker_cmd`, with default
    /// robustness settings (10 s heartbeat, 3 retries, 50 ms base backoff).
    pub fn new(workers: usize, worker_cmd: Vec<String>) -> DistributeOptions {
        DistributeOptions {
            workers: workers.max(1),
            worker_cmd,
            chunk_count: 0,
            engine: EngineOptions::default(),
            fault_policy: FaultPolicy::default(),
            heartbeat: Duration::from_secs(10),
            shard_retry_max: 3,
            shard_backoff_ms: 50,
            restart_max: 0,
            progress: None,
            stop_after_chunks: 0,
            chaos_kill_after: None,
        }
    }
}

/// Deterministic failure injection for [`serve_worker`], driven by the
/// hidden `repro worker` CLI flags. Counters are 1-based shard ordinals as
/// received by this worker.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerChaos {
    /// Exit the process (status 113) upon receiving this shard, before
    /// evaluating it — simulates a crash with the shard in flight.
    pub die_after: Option<u64>,
    /// Go silent upon receiving this shard: stop heartbeating and never
    /// reply, until the supervisor's deadline kills the process.
    pub stall_after: Option<u64>,
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Write one length-prefixed frame and flush it.
fn write_frame<W: Write>(w: &mut W, payload: &str) -> std::io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME)
        .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.flush()
}

/// Read one frame; `Ok(None)` on clean EOF at a frame boundary. Oversized
/// lengths, truncation mid-frame and invalid UTF-8 are all errors.
fn read_frame<R: Read + ?Sized>(r: &mut R) -> Result<Option<String>, String> {
    let mut len_buf = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len_buf[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err("truncated frame length".to_string()),
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(format!("read frame length: {e}")),
        }
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte limit"));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(|e| format!("read frame payload: {e}"))?;
    String::from_utf8(payload).map(Some).map_err(|_| "frame is not UTF-8".to_string())
}

// ---------------------------------------------------------------------------
// Shared chunk evaluation (worker side and in-process degradation)
// ---------------------------------------------------------------------------

/// Why a chunk evaluation aborted under [`FaultPolicy::Abort`] — the only
/// information that can cross a process boundary.
pub(crate) enum ChunkAbort {
    /// An [`EvalError`] (rendered, since the structured error cannot be
    /// serialized across the pipe).
    Error(String),
    /// A caught panic payload.
    Panic(String),
}

/// Evaluate one chunk exactly like a thread in
/// [`crate::parallel::run_supervised`] would: per-policy retry loop, panic
/// isolation, structured fault records. Shared by [`serve_worker`] and the
/// supervisor's in-process degradation path so both produce bit-identical
/// outcomes and fault records.
fn eval_chunk_local<V: Visitor>(
    compiled: &Compiled,
    values: &[i64],
    chunk: usize,
    policy: FaultPolicy,
    make_visitor: &dyn Fn() -> V,
) -> Result<ChunkDone<V>, ChunkAbort> {
    let (retry_max, backoff_ms) = match policy {
        FaultPolicy::Retry { max, backoff_ms } => (max, backoff_ms),
        _ => (0, 0),
    };
    let mut faults: Vec<FaultRecord> = Vec::new();
    let mut outcome: Option<SweepOutcome<V>> = None;
    for attempt in 0..=retry_max {
        if attempt > 0 && backoff_ms > 0 {
            std::thread::sleep(Duration::from_millis(backoff_ms));
        }
        let ctx = ChunkCtx { policy, injector: None, chunk, attempt, cancel: None };
        let attempt_result = catch_unwind(AssertUnwindSafe(|| {
            compiled.run_outer_chunk_supervised(values, make_visitor(), &ctx)
        }));
        let (kind, error, site, bindings) = match attempt_result {
            Ok(Ok(run)) => {
                faults.extend(run.faults);
                outcome = Some(run.outcome);
                break;
            }
            Ok(Err(e)) => {
                if policy == FaultPolicy::Abort {
                    return Err(ChunkAbort::Error(e.root().to_string()));
                }
                let (site, bindings) = match e.point_context() {
                    Some(ctx) => (ctx.site.clone(), ctx.bindings.clone()),
                    None => ("chunk".to_string(), Vec::new()),
                };
                (FaultKind::Error, e.root().to_string(), site, bindings)
            }
            Err(payload) => {
                let message = panic_message(payload);
                if policy == FaultPolicy::Abort {
                    return Err(ChunkAbort::Panic(message));
                }
                (FaultKind::Panic, message, "chunk".to_string(), Vec::new())
            }
        };
        let exhausted = attempt == retry_max;
        faults.push(FaultRecord {
            chunk,
            ordinal: 0,
            attempt,
            kind,
            action: if exhausted { FaultAction::QuarantinedChunk } else { FaultAction::Retried },
            site,
            error,
            bindings,
        });
        if exhausted {
            break;
        }
    }
    Ok(ChunkDone { outcome, faults })
}

// ---------------------------------------------------------------------------
// Frame (de)serialization
// ---------------------------------------------------------------------------

fn schedule_json(out: &mut String, schedule: Option<&[Vec<u32>]>) {
    use std::fmt::Write as _;
    match schedule {
        None => out.push_str("null"),
        Some(groups) => {
            out.push('[');
            for (i, group) in groups.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('[');
                for (j, c) in group.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{c}");
                }
                out.push(']');
            }
            out.push(']');
        }
    }
}

/// Serialize a finished chunk into a `done` frame payload.
fn done_frame<V: Visitor + SaveState>(chunk: usize, done: &ChunkDone<V>) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(256);
    let _ = write!(out, "{{\"v\":{PROTOCOL_VERSION},\"done\":{{\"chunk\":{chunk},\"outcome\":");
    match &done.outcome {
        None => out.push_str("null"),
        Some(o) => {
            out.push_str("{\"stats\":");
            stats_json(&mut out, &o.stats);
            out.push_str(",\"blocks\":");
            blocks_json(&mut out, &o.blocks);
            let _ = write!(
                out,
                ",\"lanes\":{{\"lane_evals\":{},\"lanes_masked\":{},\"scalar_fallbacks\":{},\
                 \"super_hits\":",
                o.lanes.lane_evals, o.lanes.lanes_masked, o.lanes.scalar_fallbacks
            );
            u64_array(&mut out, &o.lanes.super_hits);
            out.push_str("},\"schedule\":");
            schedule_json(&mut out, o.schedule.as_deref());
            out.push_str(",\"visitor\":");
            out.push_str(&o.visitor.save_state());
            out.push('}');
        }
    }
    out.push_str(",\"faults\":[");
    for (i, r) in done.faults.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        fault_record_json(&mut out, r);
    }
    out.push_str("]}}");
    out
}

/// Parse a `lanes` object written by [`done_frame`].
fn parse_lanes(doc: &JsonValue) -> Result<LaneStats, String> {
    let counter = |key: &str| {
        doc.get(key)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("worker: lanes.{key} missing"))
    };
    let super_hits = doc
        .get("super_hits")
        .and_then(JsonValue::items)
        .ok_or_else(|| "worker: lanes.super_hits missing".to_string())?
        .iter()
        .map(|v| v.as_u64().ok_or_else(|| "worker: lanes.super_hits not integers".to_string()))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(LaneStats {
        lane_evals: counter("lane_evals")?,
        lanes_masked: counter("lanes_masked")?,
        scalar_fallbacks: counter("scalar_fallbacks")?,
        super_hits,
    })
}

/// Fully validate a worker's `done` frame against what the supervisor
/// dispatched before anything is folded: the chunk index must match, counter
/// arrays must cover exactly the plan's constraints, and every nested block
/// (blocks, lanes, schedule, visitor state, fault records) must parse. Any
/// violation is a [`FaultKind::ProtocolError`] — the shard is re-dealt and
/// nothing from the lying worker reaches the merge.
fn parse_done<V: Visitor + SaveState>(
    doc: &JsonValue,
    expect_chunk: usize,
    n_constraints: usize,
    make_visitor: &dyn Fn() -> V,
) -> Result<ChunkDone<V>, String> {
    let done = doc.get("done").ok_or_else(|| "worker: missing done body".to_string())?;
    let chunk = done
        .get("chunk")
        .and_then(JsonValue::as_usize)
        .ok_or_else(|| "worker: done.chunk missing".to_string())?;
    if chunk != expect_chunk {
        return Err(format!("worker replied for chunk {chunk}, expected {expect_chunk}"));
    }
    let faults = done
        .get("faults")
        .and_then(JsonValue::items)
        .ok_or_else(|| "worker: done.faults missing".to_string())?
        .iter()
        .map(parse_fault_record)
        .collect::<Result<Vec<_>, _>>()?;
    if faults.iter().any(|f| f.chunk != expect_chunk) {
        return Err("worker: fault record for a different chunk".to_string());
    }
    let outcome = match done.get("outcome") {
        None => return Err("worker: done.outcome missing".to_string()),
        Some(JsonValue::Null) => None,
        Some(o) => {
            let stats =
                parse_stats(o.get("stats").ok_or_else(|| "worker: outcome.stats missing".to_string())?, "worker")?;
            if stats.evaluated.len() != n_constraints {
                return Err(format!(
                    "worker stats cover {} constraint(s), the plan has {n_constraints}",
                    stats.evaluated.len()
                ));
            }
            let blocks = parse_blocks(
                o.get("blocks").ok_or_else(|| "worker: outcome.blocks missing".to_string())?,
                "worker",
            )?;
            let lanes = parse_lanes(
                o.get("lanes").ok_or_else(|| "worker: outcome.lanes missing".to_string())?,
            )?;
            let schedule = match o.get("schedule") {
                None => return Err("worker: outcome.schedule missing".to_string()),
                Some(JsonValue::Null) => None,
                Some(s) => Some(
                    s.items()
                        .ok_or_else(|| "worker: schedule is not an array".to_string())?
                        .iter()
                        .map(|group| {
                            group
                                .items()
                                .ok_or_else(|| "worker: schedule group is not an array".to_string())?
                                .iter()
                                .map(|c| {
                                    c.as_u64()
                                        .and_then(|c| u32::try_from(c).ok())
                                        .ok_or_else(|| "worker: schedule entry not a u32".to_string())
                                })
                                .collect::<Result<Vec<u32>, _>>()
                        })
                        .collect::<Result<Vec<Vec<u32>>, _>>()?,
                ),
            };
            let mut visitor = make_visitor();
            visitor
                .load_state(o.get("visitor").ok_or_else(|| "worker: outcome.visitor missing".to_string())?)
                .map_err(|e| format!("worker: {e}"))?;
            Some(SweepOutcome { stats, blocks, lanes, schedule, visitor })
        }
    };
    Ok(ChunkDone { outcome, faults })
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

/// Serve shards over an arbitrary byte stream — the worker half of protocol
/// v1, normally wired to stdin/stdout by the hidden `repro worker` mode.
///
/// The worker builds its own [`Compiled`] engine from its own copy of the
/// plan; the handshake lets the supervisor verify (via the structural
/// fingerprint and [`EngineOptions::signature`]) that both sides agree on
/// what is being evaluated before any shard is dealt. While a shard is in
/// flight a ticker thread emits `hb` frames at a quarter of the negotiated
/// heartbeat interval, so a busy worker is never mistaken for a hung one.
/// Returns after a `bye` frame or clean EOF (the supervisor died — exiting
/// leaves no orphan). Protocol violations return `Err` so the binary can
/// exit nonzero.
pub fn serve_worker<V, F, R, W>(
    lp: &LoweredPlan,
    engine: EngineOptions,
    make_visitor: F,
    chaos: &WorkerChaos,
    mut input: R,
    output: W,
) -> Result<(), String>
where
    V: Visitor + SaveState,
    F: Fn() -> V,
    R: Read,
    W: Write + Send,
{
    let compiled = Compiled::with_options(lp.clone(), engine);
    compiled.lint_denied().map_err(|e| e.to_string())?;
    let out = Mutex::new(output);

    // Handshake: the hello carries the policy and heartbeat cadence; the
    // ready reply carries this worker's identity for the supervisor to check.
    let hello = read_frame(&mut input)?.ok_or_else(|| "eof before hello".to_string())?;
    let doc = JsonValue::parse(&hello).map_err(|e| format!("hello: {e}"))?;
    let hello = doc.get("hello").ok_or_else(|| "first frame is not hello".to_string())?;
    let policy = hello
        .get("policy")
        .and_then(JsonValue::as_str)
        .and_then(FaultPolicy::parse)
        .ok_or_else(|| "hello: unparseable policy".to_string())?;
    let hb_ms = hello.get("hb_ms").and_then(JsonValue::as_u64).unwrap_or(10_000);
    let ready = format!(
        "{{\"v\":{PROTOCOL_VERSION},\"ready\":{{\"structural\":\"{:016x}\",\"engine\":\"{}\"}}}}",
        lp.structural_hash(),
        compiled.options().signature()
    );
    write_frame(&mut *out.lock().unwrap(), &ready).map_err(|e| format!("ready: {e}"))?;

    let busy: Mutex<Option<usize>> = Mutex::new(None);
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let tick = Duration::from_millis((hb_ms / 4).clamp(10, 1_000));
            loop {
                std::thread::sleep(tick);
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let current = *busy.lock().unwrap();
                if let Some(chunk) = current {
                    let frame = format!("{{\"v\":{PROTOCOL_VERSION},\"hb\":{{\"chunk\":{chunk}}}}}");
                    // A write failure means the supervisor is gone; the next
                    // shard read will fail and end the serve loop.
                    let _ = write_frame(&mut *out.lock().unwrap(), &frame);
                }
            }
        });
        let result = serve_shards(&compiled, policy, &make_visitor, chaos, &mut input, &out, &busy);
        stop.store(true, Ordering::Relaxed);
        result
    })
}

/// The shard-serving loop of [`serve_worker`], separated so the heartbeat
/// ticker can be stopped on every exit path.
#[allow(clippy::too_many_arguments)]
fn serve_shards<V, W>(
    compiled: &Compiled,
    policy: FaultPolicy,
    make_visitor: &dyn Fn() -> V,
    chaos: &WorkerChaos,
    input: &mut dyn Read,
    out: &Mutex<W>,
    busy: &Mutex<Option<usize>>,
) -> Result<(), String>
where
    V: Visitor + SaveState,
    W: Write + Send,
{
    let mut received: u64 = 0;
    loop {
        let frame = match read_frame(input)? {
            None => return Ok(()),
            Some(f) => f,
        };
        let doc = JsonValue::parse(&frame).map_err(|e| format!("shard frame: {e}"))?;
        if doc.get("bye").is_some() {
            return Ok(());
        }
        let shard = doc.get("shard").ok_or_else(|| "expected shard or bye".to_string())?;
        let chunk = shard
            .get("chunk")
            .and_then(JsonValue::as_usize)
            .ok_or_else(|| "shard.chunk missing".to_string())?;
        let values = shard
            .get("values")
            .and_then(JsonValue::items)
            .ok_or_else(|| "shard.values missing".to_string())?
            .iter()
            .map(|v| v.as_i64().ok_or_else(|| "shard.values not integers".to_string()))
            .collect::<Result<Vec<i64>, _>>()?;
        received += 1;
        if chaos.die_after == Some(received) {
            // Crash with the shard in flight: the supervisor sees EOF and
            // must re-deal it (FaultKind::WorkerExit).
            std::process::exit(113);
        }
        if chaos.stall_after == Some(received) {
            // Go silent: no heartbeats, no reply. The supervisor's deadline
            // expires (FaultKind::WorkerTimeout) and it kills this process.
            *busy.lock().unwrap() = None;
            loop {
                std::thread::sleep(Duration::from_secs(3_600));
            }
        }
        *busy.lock().unwrap() = Some(chunk);
        let evaluated = eval_chunk_local(compiled, &values, chunk, policy, make_visitor);
        *busy.lock().unwrap() = None;
        let reply = match &evaluated {
            Ok(done) => done_frame(chunk, done),
            Err(abort) => {
                let (kind, message) = match abort {
                    ChunkAbort::Error(m) => ("error", m),
                    ChunkAbort::Panic(m) => ("panic", m),
                };
                let mut f = String::with_capacity(64 + message.len());
                use std::fmt::Write as _;
                let _ = write!(f, "{{\"v\":{PROTOCOL_VERSION},\"fail\":{{\"chunk\":{chunk},");
                json_str(&mut f, "kind", kind);
                f.push(',');
                json_str(&mut f, "error", message);
                f.push_str("}}");
                f
            }
        };
        write_frame(&mut *out.lock().unwrap(), &reply).map_err(|e| format!("reply: {e}"))?;
    }
}

// ---------------------------------------------------------------------------
// Supervisor side
// ---------------------------------------------------------------------------

/// A live worker process: its child handle, its stdin for frames out, and a
/// channel fed by a reader thread draining its stdout — so the supervisor
/// can wait on replies *with a deadline* (the stall detector).
struct Link {
    child: Child,
    stdin: ChildStdin,
    rx: Receiver<Result<String, String>>,
}

impl Link {
    /// Spawn the worker command and complete the `hello`/`ready` handshake,
    /// verifying it evaluates the same plan under the same engine options.
    fn connect(
        cmd: &[String],
        hello: &str,
        structural: &str,
        engine_sig: &str,
        deadline: Duration,
    ) -> Result<Link, String> {
        let (head, rest) = cmd.split_first().ok_or_else(|| "empty worker command".to_string())?;
        let mut child = Command::new(head)
            .args(rest)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .map_err(|e| format!("cannot spawn worker `{head}`: {e}"))?;
        let stdin = child.stdin.take().expect("stdin was piped");
        let mut stdout = child.stdout.take().expect("stdout was piped");
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || loop {
            match read_frame(&mut stdout) {
                Ok(Some(frame)) => {
                    if tx.send(Ok(frame)).is_err() {
                        break;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    let _ = tx.send(Err(e));
                    break;
                }
            }
        });
        let mut link = Link { child, stdin, rx };
        if let Err(e) = link.handshake(hello, structural, engine_sig, deadline) {
            link.kill();
            return Err(e);
        }
        Ok(link)
    }

    fn handshake(
        &mut self,
        hello: &str,
        structural: &str,
        engine_sig: &str,
        deadline: Duration,
    ) -> Result<(), String> {
        write_frame(&mut self.stdin, hello).map_err(|e| format!("send hello: {e}"))?;
        let frame = match self.rx.recv_timeout(deadline) {
            Ok(Ok(f)) => f,
            Ok(Err(e)) => return Err(format!("handshake: {e}")),
            Err(_) => return Err("no ready frame before the deadline".to_string()),
        };
        let doc = JsonValue::parse(&frame).map_err(|e| format!("ready: {e}"))?;
        let ready = doc.get("ready").ok_or_else(|| "first frame is not ready".to_string())?;
        if ready.get("structural").and_then(JsonValue::as_str) != Some(structural) {
            return Err("worker evaluates a different plan (structural fingerprint mismatch)"
                .to_string());
        }
        if ready.get("engine").and_then(JsonValue::as_str) != Some(engine_sig) {
            return Err("worker runs different engine options (signature mismatch)".to_string());
        }
        Ok(())
    }

    /// Kill and reap immediately (fault paths).
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Graceful shutdown: send `bye`, give the worker a short grace period
    /// to exit on its own, then kill and reap — children are never leaked.
    fn shutdown(self) {
        let Link { mut child, mut stdin, rx: _rx } = self;
        let _ = write_frame(&mut stdin, &format!("{{\"v\":{PROTOCOL_VERSION},\"bye\":{{}}}}"));
        drop(stdin);
        for _ in 0..50 {
            if let Ok(Some(_)) = child.try_wait() {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let _ = child.kill();
        let _ = child.wait();
    }
}

/// One shard in flight or queued for re-dealing: the chunk index, the
/// worker-level attempt counter, and the fault records accumulated by
/// earlier failed attempts (folded with the chunk when it completes, so the
/// recovery history survives in chunk order).
struct Shard {
    chunk: usize,
    attempt: u32,
    faults: Vec<FaultRecord>,
}

/// Shared dealing state across driver threads.
struct Deal {
    /// Next fresh chunk index.
    cursor: AtomicUsize,
    /// Shards re-queued after a worker-level fault, dealt before fresh ones.
    retry: Mutex<VecDeque<Shard>>,
    /// Chunks submitted to the collector (folded, quarantined or aborted).
    completed: AtomicUsize,
    /// Shards dispatched to worker processes (the chaos-kill ordinal).
    dealt: AtomicU64,
    /// Worker respawns consumed from the restart budget.
    restarts: AtomicUsize,
    /// Successful spawns (handshake included).
    spawned: AtomicU64,
    /// Successful re-spawns after a worker died mid-run.
    respawned: AtomicU64,
}

/// Run a lowered plan across worker processes; see the module docs for the
/// protocol and robustness model.
///
/// The merged outcome is bit-identical to [`crate::parallel::run_parallel`]
/// and to the serial engine — same survivors, same emission order, same
/// statistics — at any worker count, including under worker crashes and
/// re-dealt shards (as long as no shard exhausts its retry budget and is
/// quarantined).
pub fn run_distributed<V, F>(
    lp: &LoweredPlan,
    opts: &DistributeOptions,
    make_visitor: F,
) -> Result<(SweepOutcome<V>, SweepReport), SweepError>
where
    V: Visitor + Send + SaveState,
    F: Fn() -> V + Sync,
{
    distribute_supervised(lp, opts, make_visitor, None, None)
}

/// [`run_distributed`] with checkpoint persistence and optional resume —
/// the distributed twin of [`crate::checkpoint::run_checkpointed`], writing
/// the same format-2 files, so killing the *supervisor* is recoverable too.
pub fn run_distributed_checkpointed<V, F>(
    lp: &LoweredPlan,
    opts: &DistributeOptions,
    ck: &CheckpointConfig,
    make_visitor: F,
) -> Result<(SweepOutcome<V>, SweepReport), SweepError>
where
    V: Visitor + Send + SaveState,
    F: Fn() -> V + Sync,
{
    let space_name = lp.plan.space().name().to_string();
    let engine_sig = opts.engine.signature();
    let seed = if ck.resume {
        let text = std::fs::read_to_string(&ck.path).map_err(|e| {
            SweepError::Checkpoint(format!("cannot read checkpoint {}: {e}", ck.path.display()))
        })?;
        parse_checkpoint(&text, &space_name, &engine_sig, &make_visitor)
            .map_err(SweepError::Checkpoint)?
    } else {
        None
    };
    let writer = |snap: &crate::parallel::CkSnapshot<'_, V>| {
        write_checkpoint(&ck.path, &space_name, &engine_sig, snap)
    };
    let sink = CkSink { every: ck.every_chunks.max(1), write: &writer };
    distribute_supervised(lp, opts, make_visitor, seed, Some(&sink))
}

fn distribute_supervised<V, F>(
    lp: &LoweredPlan,
    opts: &DistributeOptions,
    make_visitor: F,
    resume: Option<ResumeSeed<V>>,
    sink: Option<&CkSink<'_, V>>,
) -> Result<(SweepOutcome<V>, SweepReport), SweepError>
where
    V: Visitor + Send + SaveState,
    F: Fn() -> V + Sync,
{
    let t_start = Instant::now();
    match opts.engine.engine {
        EngineTier::Walker => {
            return Err(SweepError::Config(
                "the walker tier is serial-only; distributed sweeps run the compiled tier"
                    .to_string(),
            ))
        }
        EngineTier::Native => {
            return Err(SweepError::Config(
                "the native tier cannot be distributed: shards already run in worker \
                 processes; use the compiled tier"
                    .to_string(),
            ))
        }
        _ => {}
    }
    let n_slots = opts.workers.max(1);
    let compiled = Compiled::with_options(lp.clone(), opts.engine);
    compiled.lint_denied()?;
    let space = lp.plan.space();
    let n_constraints = space.constraints().len();
    let policy = opts.fault_policy;

    let resumed_at = resume.as_ref().map(|r| r.next);
    let (mut stats, seed_blocks, seed_faults, seed_visitor, pinned) = match resume {
        Some(seed) => (
            seed.stats,
            seed.blocks,
            seed.faults,
            Some(seed.visitor),
            Some((seed.chunk_len, seed.outer_len)),
        ),
        None => {
            (PruneStats::new(n_constraints), BlockStats::default(), Vec::new(), None, None)
        }
    };

    // Preamble constraints run once, supervisor-side (workers evaluate only
    // chunk bodies). A resumed run's seed already includes them.
    let preamble_ok = if resumed_at.is_some() {
        let mut scratch = PruneStats::new(n_constraints);
        compiled.preamble_record(&mut scratch).map_err(SweepError::Eval)?
    } else {
        compiled.preamble_record(&mut stats).map_err(SweepError::Eval)?
    };

    let finish_early = |stats: &PruneStats, blocks: BlockStats, faults: Vec<FaultRecord>| {
        let mut report = SweepReport::new(
            space,
            stats,
            &blocks,
            n_slots,
            0,
            0,
            0,
            t_start.elapsed(),
            vec![],
            compiled.schedule_telemetry(None),
            compiled.lint_summary(),
        );
        report.resumed_at = resumed_at;
        report.fault_policy = policy.name();
        report.fault_counters = FaultCounters::from_records(&faults);
        report.faults = faults;
        report
    };

    let outer = if preamble_ok { compiled.outer_domain().map_err(SweepError::Eval)? } else { Vec::new() };
    if outer.is_empty() {
        let report = finish_early(&stats, seed_blocks, seed_faults.clone());
        return Ok((
            SweepOutcome {
                stats,
                blocks: seed_blocks,
                lanes: LaneStats::default(),
                schedule: None,
                visitor: seed_visitor.unwrap_or_else(&make_visitor),
            },
            report,
        ));
    }

    if let Some((_, expected_outer)) = pinned {
        if outer.len() != expected_outer {
            return Err(SweepError::Checkpoint(format!(
                "checkpointed level-0 domain has {expected_outer} value(s) but the realized \
                 domain has {}; the space changed since the checkpoint",
                outer.len()
            )));
        }
    }
    let chunk_len = pinned
        .map(|(len, _)| len)
        .unwrap_or_else(|| chunk_len_for(lp, outer.len(), n_slots, 0, opts.chunk_count));
    let chunks: Vec<&[i64]> = outer.chunks(chunk_len.max(1)).collect();
    let start = resumed_at.unwrap_or(0).min(chunks.len());
    let limit = if opts.stop_after_chunks > 0 {
        (start + opts.stop_after_chunks).min(chunks.len())
    } else {
        chunks.len()
    };
    if let Some(progress) = &opts.progress {
        progress.chunks_total.store(chunks.len(), Ordering::Relaxed);
        progress.chunks_done.store(start, Ordering::Relaxed);
        progress.tuples_decided.store(stats.survivors + stats.total_pruned(), Ordering::Relaxed);
    }

    let goal = limit - start;
    let abort = AtomicBool::new(false);
    let first_error: Mutex<Option<SweepError>> = Mutex::new(None);
    let collector = Mutex::new(Collector {
        next: start,
        pending: BTreeMap::new(),
        stats,
        blocks: seed_blocks,
        lanes: LaneStats::default(),
        faults: seed_faults,
        visitor: seed_visitor,
        schedule: None,
        outer_len: outer.len(),
        chunk_len,
        chunks: chunks.len(),
        since_save: 0,
    });
    let deal = Deal {
        cursor: AtomicUsize::new(start),
        retry: Mutex::new(VecDeque::new()),
        completed: AtomicUsize::new(0),
        dealt: AtomicU64::new(0),
        restarts: AtomicUsize::new(0),
        spawned: AtomicU64::new(0),
        respawned: AtomicU64::new(0),
    };
    let restart_budget =
        if opts.restart_max > 0 { opts.restart_max } else { 2 * n_slots };

    let structural = format!("{:016x}", lp.structural_hash());
    let engine_sig = opts.engine.signature();
    let hello = {
        let mut h = String::with_capacity(160);
        use std::fmt::Write as _;
        let _ = write!(h, "{{\"v\":{PROTOCOL_VERSION},\"hello\":{{");
        json_str(&mut h, "space", space.name());
        let _ = write!(
            h,
            ",\"structural\":\"{structural}\",\"engine\":\"{engine_sig}\",\"policy\":\"{}\",\
             \"hb_ms\":{}}}}}",
            policy.spec(),
            u64::try_from(opts.heartbeat.as_millis()).unwrap_or(u64::MAX).max(1)
        );
        h
    };

    let fail = |err: SweepError| {
        let mut slot = first_error.lock().unwrap();
        if slot.is_none() {
            *slot = Some(err);
        }
        abort.store(true, Ordering::Relaxed);
    };

    // One driver thread per worker slot. A driver owns at most one child
    // process and one in-flight shard at a time; finished shards are folded
    // in chunk order by the shared collector, so which worker evaluated a
    // chunk never affects the merged outcome.
    let drive = |slot: usize| -> WorkerTelemetry {
        let mut telemetry = WorkerTelemetry {
            worker: slot,
            chunks: 0,
            busy: Duration::ZERO,
            evaluated: 0,
            survivors: 0,
        };
        let mut link: Option<Link> = None;
        let mut started = false;
        // Permanent degradation to in-process evaluation: entered when
        // spawning fails or the restart budget is spent.
        let mut inproc = opts.worker_cmd.is_empty();
        'serve: loop {
            if abort.load(Ordering::Relaxed) {
                break;
            }
            let shard = {
                let mut queue = deal.retry.lock().unwrap();
                match queue.pop_front() {
                    Some(s) => Some(s),
                    None => {
                        drop(queue);
                        let i = deal.cursor.fetch_add(1, Ordering::Relaxed);
                        if i < limit {
                            Some(Shard { chunk: i, attempt: 0, faults: Vec::new() })
                        } else {
                            None
                        }
                    }
                }
            };
            let mut shard = match shard {
                Some(s) => s,
                None => {
                    if deal.completed.load(Ordering::Relaxed) >= goal {
                        break;
                    }
                    // Another driver's in-flight shard may yet be re-queued;
                    // stay available instead of exiting early.
                    std::thread::sleep(Duration::from_millis(5));
                    continue;
                }
            };
            let t0 = Instant::now();

            // Worker acquisition: first spawn is free, respawns draw on the
            // shared restart budget; failures degrade this slot permanently.
            if !inproc && link.is_none() {
                if started {
                    let used = deal.restarts.fetch_add(1, Ordering::Relaxed);
                    if used >= restart_budget {
                        inproc = true;
                    }
                }
                if !inproc {
                    match Link::connect(
                        &opts.worker_cmd,
                        &hello,
                        &structural,
                        &engine_sig,
                        opts.heartbeat,
                    ) {
                        Ok(l) => {
                            deal.spawned.fetch_add(1, Ordering::Relaxed);
                            if started {
                                deal.respawned.fetch_add(1, Ordering::Relaxed);
                            }
                            started = true;
                            link = Some(l);
                        }
                        Err(_) => inproc = true,
                    }
                }
            }

            if inproc {
                // Graceful degradation: evaluate the shard with the
                // supervisor's own engine — bit-identical by the determinism
                // contract, merely slower.
                let done = match eval_chunk_local(
                    &compiled,
                    chunks[shard.chunk],
                    shard.chunk,
                    policy,
                    &make_visitor,
                ) {
                    Ok(mut done) => {
                        let mut faults = std::mem::take(&mut shard.faults);
                        faults.extend(done.faults);
                        done.faults = faults;
                        done
                    }
                    Err(ChunkAbort::Error(message)) => {
                        fail(SweepError::Eval(EvalError::Custom(message)));
                        break;
                    }
                    Err(ChunkAbort::Panic(message)) => {
                        fail(SweepError::WorkerPanic { chunk: Some(shard.chunk), message });
                        break;
                    }
                };
                telemetry.busy += t0.elapsed();
                if !submit(&collector, &deal, opts, sink, &fail, shard.chunk, done, &mut telemetry)
                {
                    break;
                }
                continue;
            }

            // Dispatch the shard to the worker.
            let l = link.as_mut().expect("link acquired above");
            let shard_no = deal.dealt.fetch_add(1, Ordering::Relaxed) + 1;
            let mut frame = String::with_capacity(64 + chunks[shard.chunk].len() * 8);
            {
                use std::fmt::Write as _;
                let _ = write!(
                    frame,
                    "{{\"v\":{PROTOCOL_VERSION},\"shard\":{{\"chunk\":{},\"values\":",
                    shard.chunk
                );
                frame.push('[');
                for (i, v) in chunks[shard.chunk].iter().enumerate() {
                    if i > 0 {
                        frame.push(',');
                    }
                    let _ = write!(frame, "{v}");
                }
                frame.push_str("]}}");
            }
            let dispatched = write_frame(&mut l.stdin, &frame);
            if opts.chaos_kill_after == Some(shard_no) {
                // Deterministic chaos: SIGKILL our own worker with the shard
                // in flight. Recovery must be indistinguishable from a real
                // crash.
                let _ = l.child.kill();
            }
            let verdict: Result<ChunkDone<V>, (FaultKind, String)> = if dispatched.is_err() {
                Err((FaultKind::WorkerExit, "worker closed its pipe".to_string()))
            } else {
                await_reply(l, shard.chunk, n_constraints, &make_visitor, opts.heartbeat)
            };

            match verdict {
                Ok(mut done) => {
                    telemetry.busy += t0.elapsed();
                    let mut faults = std::mem::take(&mut shard.faults);
                    faults.extend(done.faults);
                    done.faults = faults;
                    if !submit(
                        &collector,
                        &deal,
                        opts,
                        sink,
                        &fail,
                        shard.chunk,
                        done,
                        &mut telemetry,
                    ) {
                        break;
                    }
                }
                Err((FaultKind::Error, message)) => {
                    // Abort-policy fail frame relayed by the worker.
                    fail(SweepError::Eval(EvalError::Custom(message)));
                    break;
                }
                Err((FaultKind::Panic, message)) => {
                    fail(SweepError::WorkerPanic { chunk: Some(shard.chunk), message });
                    break;
                }
                Err((kind, error)) => {
                    // Worker-level fault: kill the worker (nothing it says
                    // can be trusted now), record the fault, and either
                    // re-deal with backoff or quarantine the shard.
                    telemetry.busy += t0.elapsed();
                    if let Some(mut l) = link.take() {
                        l.kill();
                    }
                    let exhausted = shard.attempt >= opts.shard_retry_max;
                    shard.faults.push(FaultRecord {
                        chunk: shard.chunk,
                        ordinal: 0,
                        attempt: shard.attempt,
                        kind,
                        action: if exhausted {
                            FaultAction::QuarantinedChunk
                        } else {
                            FaultAction::Retried
                        },
                        site: "worker".to_string(),
                        error,
                        bindings: Vec::new(),
                    });
                    if exhausted {
                        let done =
                            ChunkDone { outcome: None, faults: std::mem::take(&mut shard.faults) };
                        if !submit(
                            &collector,
                            &deal,
                            opts,
                            sink,
                            &fail,
                            shard.chunk,
                            done,
                            &mut telemetry,
                        ) {
                            break;
                        }
                    } else {
                        let backoff = opts
                            .shard_backoff_ms
                            .saturating_mul(1u64 << shard.attempt.min(5))
                            .min(MAX_BACKOFF_MS);
                        if backoff > 0 {
                            std::thread::sleep(Duration::from_millis(backoff));
                        }
                        shard.attempt += 1;
                        deal.retry.lock().unwrap().push_back(shard);
                    }
                    continue 'serve;
                }
            }
        }
        if let Some(l) = link.take() {
            l.shutdown();
        }
        telemetry
    };

    let mut workers: Vec<WorkerTelemetry> = std::thread::scope(|scope| {
        let handles: Vec<_> =
            (0..n_slots.min(goal.max(1))).map(|s| scope.spawn(move || drive(s))).collect();
        handles
            .into_iter()
            .filter_map(|h| match h.join() {
                Ok(telemetry) => Some(telemetry),
                Err(payload) => {
                    fail(SweepError::WorkerPanic { chunk: None, message: panic_message(payload) });
                    None
                }
            })
            .collect()
    });
    workers.sort_by_key(|w| w.worker);

    if let Some(err) = first_error.into_inner().unwrap() {
        return Err(err);
    }

    let mut collector = collector.into_inner().unwrap();
    let partial = collector.next < chunks.len();
    if let Some(sink) = sink {
        collector.save(sink).map_err(SweepError::Checkpoint)?;
    }
    let Collector { stats, blocks, lanes, faults, visitor, schedule, .. } = collector;

    let mut report = SweepReport::new(
        space,
        &stats,
        &blocks,
        n_slots,
        outer.len(),
        chunk_len,
        chunks.len(),
        t_start.elapsed(),
        workers,
        compiled.schedule_telemetry(schedule.as_deref()),
        compiled.lint_summary(),
    );
    report.partial = partial;
    report.resumed_at = resumed_at;
    report.fault_policy = policy.name();
    report.fault_counters = FaultCounters::from_records(&faults);
    report.fault_counters.workers_spawned = deal.spawned.into_inner();
    report.fault_counters.worker_restarts = deal.respawned.into_inner();
    report.faults = faults;
    report.lanes = lanes.clone();
    Ok((
        SweepOutcome { stats, blocks, lanes, schedule, visitor: visitor.unwrap_or_else(make_visitor) },
        report,
    ))
}

/// Fold one finished shard into the collector and bump the completion
/// counter; returns `false` when the sweep must abort (checkpoint write
/// failure).
#[allow(clippy::too_many_arguments)]
fn submit<V: Visitor>(
    collector: &Mutex<Collector<V>>,
    deal: &Deal,
    opts: &DistributeOptions,
    sink: Option<&CkSink<'_, V>>,
    fail: &dyn Fn(SweepError),
    chunk: usize,
    done: ChunkDone<V>,
    telemetry: &mut WorkerTelemetry,
) -> bool {
    if let Some(out) = &done.outcome {
        telemetry.evaluated += out.stats.evaluated.iter().sum::<u64>();
        telemetry.survivors += out.stats.survivors;
    }
    telemetry.chunks += 1;
    let folded = collector.lock().unwrap().add(chunk, done, opts.progress.as_ref(), sink);
    deal.completed.fetch_add(1, Ordering::Relaxed);
    if let Err(msg) = folded {
        fail(SweepError::Checkpoint(msg));
        return false;
    }
    true
}

/// Wait for the worker's reply to an in-flight shard, treating heartbeat
/// frames as liveness and everything unexpected as a fault:
///
/// * `done` — fully validated, then returned for folding;
/// * `fail` — mapped to `FaultKind::Error`/`Panic` (abort policy);
/// * silence past the deadline — `WorkerTimeout`;
/// * closed pipe / read error — `WorkerExit`;
/// * anything malformed — `ProtocolError`.
fn await_reply<V: Visitor + SaveState>(
    link: &mut Link,
    chunk: usize,
    n_constraints: usize,
    make_visitor: &dyn Fn() -> V,
    deadline: Duration,
) -> Result<ChunkDone<V>, (FaultKind, String)> {
    loop {
        let frame = match link.rx.recv_timeout(deadline) {
            Ok(Ok(f)) => f,
            Ok(Err(e)) => return Err((FaultKind::WorkerExit, format!("worker pipe error: {e}"))),
            Err(RecvTimeoutError::Timeout) => {
                return Err((
                    FaultKind::WorkerTimeout,
                    format!("no frame within {deadline:?} while chunk {chunk} was in flight"),
                ))
            }
            Err(RecvTimeoutError::Disconnected) => {
                return Err((FaultKind::WorkerExit, "worker exited with a shard in flight".to_string()))
            }
        };
        let doc = match JsonValue::parse(&frame) {
            Ok(d) => d,
            Err(e) => return Err((FaultKind::ProtocolError, format!("malformed frame: {e}"))),
        };
        if doc.get("hb").is_some() {
            continue;
        }
        if let Some(failed) = doc.get("fail") {
            let message = failed
                .get("error")
                .and_then(JsonValue::as_str)
                .unwrap_or("unspecified worker failure")
                .to_string();
            let kind = match failed.get("kind").and_then(JsonValue::as_str) {
                Some("panic") => FaultKind::Panic,
                _ => FaultKind::Error,
            };
            return Err((kind, message));
        }
        if doc.get("done").is_some() {
            return parse_done(&doc, chunk, n_constraints, make_visitor)
                .map_err(|e| (FaultKind::ProtocolError, e));
        }
        return Err((FaultKind::ProtocolError, "unexpected frame type".to_string()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beast_core::constraint::ConstraintClass;
    use beast_core::expr::var;
    use beast_core::plan::{Plan, PlanOptions};
    use beast_core::space::Space;

    use crate::parallel::{run_parallel_report, ParallelOptions};
    use crate::visit::FingerprintVisitor;

    fn lowered() -> LoweredPlan {
        let space = Space::builder("dist")
            .constant("cap", 300)
            .range("a", 1, 33)
            .range("b", 1, 33)
            .range_step("c", var("a"), 65, var("a"))
            .derived("abc", var("a") * var("b") + var("c"))
            .constraint("over", ConstraintClass::Hard, var("abc").gt(var("cap")))
            .constraint("odd", ConstraintClass::Soft, (var("abc") % 2).ne(0))
            .build()
            .unwrap();
        let plan = Plan::new(&space, PlanOptions::default()).unwrap();
        LoweredPlan::new(&plan).unwrap()
    }

    #[test]
    fn frames_round_trip_and_reject_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"v\":1}").unwrap();
        write_frame(&mut buf, "").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), Some("{\"v\":1}".to_string()));
        assert_eq!(read_frame(&mut r).unwrap(), Some(String::new()));
        assert_eq!(read_frame(&mut r).unwrap(), None);

        // A hostile length prefix is refused without allocating.
        let huge = (MAX_FRAME + 1).to_be_bytes();
        assert!(read_frame(&mut &huge[..]).is_err());
        // Truncation mid-payload is an error, not EOF.
        let mut short = Vec::new();
        write_frame(&mut short, "abcdef").unwrap();
        short.truncate(short.len() - 2);
        assert!(read_frame(&mut &short[..]).is_err());
    }

    /// Drive [`serve_worker`] over in-memory pipes with a scripted
    /// supervisor and check the replies fold to the same result as the
    /// in-process engine.
    #[test]
    fn serve_worker_replies_match_in_process_evaluation() {
        let lp = lowered();
        let compiled = Compiled::with_options(lp.clone(), EngineOptions::default());
        let outer = compiled.outer_domain().unwrap();
        let structural = format!("{:016x}", lp.structural_hash());
        let sig = EngineOptions::default().signature();

        let mut script = Vec::new();
        let hello = format!(
            "{{\"v\":1,\"hello\":{{\"space\":\"dist\",\"structural\":\"{structural}\",\
             \"engine\":\"{sig}\",\"policy\":\"abort\",\"hb_ms\":10000}}}}"
        );
        write_frame(&mut script, &hello).unwrap();
        let mut shard = "{\"v\":1,\"shard\":{\"chunk\":0,\"values\":[".to_string();
        for (i, v) in outer.iter().enumerate() {
            if i > 0 {
                shard.push(',');
            }
            shard.push_str(&v.to_string());
        }
        shard.push_str("]}}");
        write_frame(&mut script, &shard).unwrap();
        write_frame(&mut script, "{\"v\":1,\"bye\":{}}").unwrap();

        let mut replies: Vec<u8> = Vec::new();
        serve_worker(
            &lp,
            EngineOptions::default(),
            FingerprintVisitor::new,
            &WorkerChaos::default(),
            &script[..],
            &mut replies,
        )
        .unwrap();

        let mut r = &replies[..];
        let ready = read_frame(&mut r).unwrap().unwrap();
        let ready = JsonValue::parse(&ready).unwrap();
        assert_eq!(
            ready.get("ready").unwrap().get("structural").unwrap().as_str(),
            Some(structural.as_str())
        );
        let done = read_frame(&mut r).unwrap().unwrap();
        let done = JsonValue::parse(&done).unwrap();
        let parsed: ChunkDone<FingerprintVisitor> =
            parse_done(&done, 0, 2, &FingerprintVisitor::new).unwrap();
        assert!(parsed.faults.is_empty());
        let from_worker = parsed.outcome.expect("clean chunk has an outcome");

        // The whole domain as one chunk equals a serial in-process run's
        // chunk outcome.
        let direct = eval_chunk_local(
            &compiled,
            &outer,
            0,
            FaultPolicy::Abort,
            &FingerprintVisitor::new,
        )
        .ok()
        .unwrap()
        .outcome
        .unwrap();
        assert_eq!(from_worker.visitor, direct.visitor);
        assert_eq!(from_worker.stats, direct.stats);
    }

    /// A worker command that cannot spawn degrades every slot to in-process
    /// evaluation — the sweep still completes, bit-identical to a threaded
    /// run.
    #[test]
    fn spawn_failure_degrades_to_in_process() {
        let lp = lowered();
        let mut opts =
            DistributeOptions::new(2, vec!["/nonexistent/beast-worker-binary".to_string()]);
        opts.chunk_count = 4;
        let (dist, report) = run_distributed(&lp, &opts, FingerprintVisitor::new).unwrap();

        let mut popts = ParallelOptions::new(1);
        popts.chunk_count = 4;
        let (serial, _) = run_parallel_report(&lp, &popts, FingerprintVisitor::new).unwrap();
        assert_eq!(dist.visitor, serial.visitor);
        assert_eq!(dist.stats, serial.stats);
        assert_eq!(report.fault_counters.workers_spawned, 0);
        assert!(!report.partial);
    }

    /// An empty worker command skips spawning entirely (pure in-process
    /// distribution), and the merge is identical at any slot count.
    #[test]
    fn in_process_distribution_is_bit_identical_across_slot_counts() {
        let lp = lowered();
        let mut reference: Option<FingerprintVisitor> = None;
        for workers in [1usize, 2, 4] {
            let mut opts = DistributeOptions::new(workers, Vec::new());
            opts.chunk_count = 8;
            let (out, report) = run_distributed(&lp, &opts, FingerprintVisitor::new).unwrap();
            assert!(!report.partial);
            match &reference {
                None => reference = Some(out.visitor),
                Some(r) => assert_eq!(&out.visitor, r, "divergence at {workers} workers"),
            }
        }
    }

    /// Tier gating: walker and native tiers are refused with a config error.
    #[test]
    fn non_compiled_tiers_are_rejected() {
        let lp = lowered();
        for tier in [EngineTier::Walker, EngineTier::Native] {
            let mut opts = DistributeOptions::new(1, Vec::new());
            opts.engine.engine = tier;
            let err = run_distributed(&lp, &opts, FingerprintVisitor::new).err().unwrap();
            assert!(matches!(err, SweepError::Config(_)), "tier {tier:?} not rejected");
        }
    }

    /// A lying worker reply (wrong chunk, short stats) is a protocol error.
    #[test]
    fn done_validation_rejects_lies() {
        let mk = FingerprintVisitor::new;
        let good = "{\"v\":1,\"done\":{\"chunk\":3,\"outcome\":{\"stats\":{\"evaluated\":[1,2],\
                    \"pruned\":[0,1],\"survivors\":1},\"blocks\":{\"subtree_skips\":0,\
                    \"congruence_skips\":0,\"points_skipped\":0,\"checks_elided\":0},\
                    \"lanes\":{\"lane_evals\":0,\"lanes_masked\":0,\"scalar_fallbacks\":0,\
                    \"super_hits\":[]},\"schedule\":null,\"visitor\":{\"hash\":1,\"pow\":2,\
                    \"count\":1}},\"faults\":[]}}";
        let doc = JsonValue::parse(good).unwrap();
        assert!(parse_done::<FingerprintVisitor>(&doc, 3, 2, &mk).is_ok());
        // Wrong chunk id.
        assert!(parse_done::<FingerprintVisitor>(&doc, 4, 2, &mk).is_err());
        // Counter arrays shorter than the constraint list.
        assert!(parse_done::<FingerprintVisitor>(&doc, 3, 3, &mk).is_err());
        // Missing visitor state.
        let broken = good.replace(",\"visitor\":{\"hash\":1,\"pow\":2,\"count\":1}", "");
        let doc = JsonValue::parse(&broken).unwrap();
        assert!(parse_done::<FingerprintVisitor>(&doc, 3, 2, &mk).is_err());
    }
}
