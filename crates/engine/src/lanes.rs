//! Slab (batched-lane) evaluation of straight-line postfix programs.
//!
//! The compiled engine's batch tier materializes an innermost loop's domain
//! into blocks of up to [`LANES`] `i64` values and evaluates each postfix
//! program once *per block* instead of once per point: every operation runs
//! as a tight fixed-width loop over all lanes (auto-vectorizable — no
//! per-lane branches on the arithmetic paths; data-dependent choices use
//! `select`-style conditional moves), producing one result slab plus a
//! *fallible mask* of lanes whose scalar evaluation would have errored or
//! panicked.
//!
//! # Lane-infallibility contract
//!
//! Slab evaluation must be panic-free for **every** lane value — including
//! tail lanes past the domain's end and lanes already rejected by an earlier
//! check, whose slabs carry garbage. Three op families need care:
//!
//! * **Division** (`Div`/`FloorDiv`/`Rem`, `DivCeil`/`RoundUp`): a lane
//!   whose divisor is zero — or whose operands hit the `i64::MIN / -1`
//!   overflow of `div_euclid` — is marked fallible and divided by a
//!   selected safe divisor instead. The scalar rerun of that lane then
//!   reproduces the exact scalar behavior (an [`EvalError::DivisionByZero`]
//!   or the division-overflow panic).
//! * **`DivCeil`/`RoundUp` intermediates**: the scalar evaluator computes
//!   `a + b - 1` (and `* b` for `RoundUp`) with *raw* arithmetic, which
//!   panics under debug overflow checks and wraps in release. A lane whose
//!   intermediate overflows is marked fallible, so the scalar rerun
//!   reproduces whichever behavior the current build has — the slab never
//!   has to choose.
//! * **Wrapping ops** (`Add`/`Sub`/`Mul`/`Neg`/`Abs`): the scalar evaluator
//!   wraps explicitly in both build profiles, so the slab wraps identically
//!   and is never fallible.
//!
//! Programs containing control flow (`&&`/`||`/ternary compile to jumps)
//! are not slab-translatable — lanes would diverge — and stay on the
//! per-lane scalar path; [`LaneProg::compile`] returns `None` for them.
//!
//! [`EvalError::DivisionByZero`]: beast_core::error::EvalError::DivisionByZero

use beast_core::expr::Builtin;
use beast_core::ir::IntBinOp;

use crate::postfix::{PfOp, Postfix};

/// Lane width of the slab evaluator. Fixed at the survivor-bitmask width;
/// [`EngineOptions::lane_width`](crate::compiled::EngineOptions::lane_width)
/// may select a smaller effective block size, never a larger one.
pub const LANES: usize = 64;

/// One slab of lane values.
pub type Lane = [i64; LANES];

/// One op of a lane program: a [`PfOp`] with slot reads resolved against
/// the batch plan's lane rows at translation time and lane-invariant
/// subprograms hoisted into the scalar prologue.
#[derive(Debug, Clone, Copy)]
enum LOp {
    /// Broadcast a literal.
    Const(i64),
    /// Broadcast a loop-invariant slot value.
    Slot(u32),
    /// Broadcast a hoisted prologue temp (see [`LaneProg::compile`]).
    Tmp(u32),
    /// Read a lane row (a slot written per-lane inside the batched body).
    Row(u32),
    /// Lane-wise strict binary op.
    Bin(IntBinOp),
    /// Lane-wise negate.
    Neg,
    /// Lane-wise logical not (0/1).
    Not,
    /// Lane-wise absolute value.
    Abs,
    /// Lane-wise two-argument builtin.
    Call2(Builtin),
    /// Lane-wise `!= 0` normalization.
    NormalizeBool,
}

/// A straight-line postfix program translated to slab form: a scalar
/// prologue of hoisted lane-invariant subprograms (evaluated once per
/// block) plus the lane-varying op stream.
#[derive(Debug, Clone)]
pub struct LaneProg {
    /// Hoisted lane-invariant subprograms; `pre[t]` computes the value
    /// broadcast by `LOp::Tmp(t)`.
    pre: Vec<Postfix>,
    ops: Vec<LOp>,
    max_stack: usize,
}

/// Reusable scratch for [`LaneProg::eval`]: the slab operand stack, a
/// scalar operand stack for the hoisted prologue, and the broadcast temp
/// values the prologue produced.
#[derive(Debug, Clone, Default)]
pub struct EvalScratch {
    stack: Vec<Lane>,
    sstack: Vec<i64>,
    tmps: Vec<i64>,
}

impl LaneProg {
    /// Translate `pf`, resolving slot reads against `rows` (the slots that
    /// vary per lane inside the batched body; row index = position in the
    /// slice). Returns `None` when the program contains control flow
    /// (jumps or pops from `&&`/`||`/ternary lowering): lanes would
    /// diverge, so such programs stay on the scalar path.
    ///
    /// Maximal lane-invariant subprograms — subtrees reading no lane row —
    /// are hoisted into the scalar prologue and broadcast through
    /// `LOp::Tmp`, so their cost is paid once per block rather than once
    /// per lane. A prologue evaluation error means every lane's scalar
    /// evaluation fails identically, so `eval` fails the whole block over
    /// to the scalar rerun path (which reproduces the per-point fault
    /// behavior exactly).
    pub fn compile(pf: &Postfix, rows: &[u32]) -> Option<LaneProg> {
        /// Abstract stack entry: the subprogram computing it, classified
        /// by whether any lane row flows into it.
        enum Node {
            Scalar(Vec<PfOp>),
            Lane(Vec<LOp>),
        }
        /// Materialize a node as lane ops, hoisting non-trivial scalar
        /// subprograms into the prologue (trivial ones broadcast
        /// directly — a `Tmp` would only add a prologue dispatch).
        fn to_lane(node: Node, pre: &mut Vec<Postfix>) -> Vec<LOp> {
            match node {
                Node::Lane(v) => v,
                Node::Scalar(v) => match v[..] {
                    [PfOp::Const(k)] => vec![LOp::Const(k)],
                    [PfOp::Slot(s)] => vec![LOp::Slot(s)],
                    _ => {
                        let t = pre.len() as u32;
                        pre.push(Postfix::from_ops(v));
                        vec![LOp::Tmp(t)]
                    }
                },
            }
        }

        let mut pre: Vec<Postfix> = Vec::new();
        let mut st: Vec<Node> = Vec::new();
        for op in pf.ops() {
            match *op {
                PfOp::Const(k) => st.push(Node::Scalar(vec![PfOp::Const(k)])),
                // `rposition`: a redefined slot must resolve to its most
                // recent row, exactly as the scalar evaluator reads the
                // latest slot write.
                PfOp::Slot(s) => st.push(match rows.iter().rposition(|&r| r == s) {
                    Some(r) => Node::Lane(vec![LOp::Row(r as u32)]),
                    None => Node::Scalar(vec![PfOp::Slot(s)]),
                }),
                PfOp::Bin(_) | PfOp::Call2(_) => {
                    let b = st.pop()?;
                    let a = st.pop()?;
                    let (sop, lop) = match *op {
                        PfOp::Bin(o) => (PfOp::Bin(o), LOp::Bin(o)),
                        PfOp::Call2(f) => (PfOp::Call2(f), LOp::Call2(f)),
                        _ => unreachable!(),
                    };
                    match (a, b) {
                        (Node::Scalar(mut va), Node::Scalar(vb)) => {
                            va.extend(vb);
                            va.push(sop);
                            st.push(Node::Scalar(va));
                        }
                        (a, b) => {
                            let mut va = to_lane(a, &mut pre);
                            va.extend(to_lane(b, &mut pre));
                            va.push(lop);
                            st.push(Node::Lane(va));
                        }
                    }
                }
                PfOp::Neg | PfOp::Not | PfOp::Abs | PfOp::NormalizeBool => {
                    match st.last_mut()? {
                        Node::Scalar(v) => v.push(*op),
                        Node::Lane(v) => v.push(match *op {
                            PfOp::Neg => LOp::Neg,
                            PfOp::Not => LOp::Not,
                            PfOp::Abs => LOp::Abs,
                            _ => LOp::NormalizeBool,
                        }),
                    }
                }
                PfOp::Pop
                | PfOp::Jmp(_)
                | PfOp::JmpIfZeroKeep(_)
                | PfOp::JmpIfNonZeroKeep(_)
                | PfOp::JmpIfZeroPop(_) => return None,
            }
        }
        // A well-formed straight-line program reduces to exactly one node
        // (possibly fully lane-invariant: a one-op broadcast program).
        if st.len() != 1 {
            return None;
        }
        let ops = to_lane(st.pop().expect("checked"), &mut pre);
        let max_stack = lane_stack_bound(&ops);
        Some(LaneProg { pre, ops, max_stack })
    }

    /// Number of slab ops (diagnostics).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Number of hoisted lane-invariant prologue programs (diagnostics).
    pub fn hoisted(&self) -> usize {
        self.pre.len()
    }

    /// True for the empty program (never produced by `compile`).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Evaluate lanes `0..n` at once, writing the result slab into `out`
    /// and returning the fallible mask: bit `i` set means lane `i`'s scalar
    /// evaluation would error or panic, so its `out` value is garbage and
    /// the lane must be re-run on the scalar path. Lanes at or past `n` are
    /// not evaluated at all — their `out` values stay garbage and their
    /// mask bits stay clear — so slab cost scales with the *live* block
    /// size, not the full lane width (innermost domains are routinely far
    /// shorter than [`LANES`]). The caller intersects the mask with its
    /// alive/tail masks; the evaluation itself is total and panic-free for
    /// every lane value.
    ///
    /// `slots` supplies broadcast (loop-invariant) slot values, `rows` the
    /// per-lane slabs in batch-plan row order, `scratch` the reusable
    /// operand stacks. If a hoisted prologue program errors, the returned
    /// mask is all-ones: the error is lane-invariant, so every lane must
    /// take the scalar rerun path (which reproduces it per point).
    pub fn eval(
        &self,
        slots: &[i64],
        rows: &[Lane],
        n: usize,
        scratch: &mut EvalScratch,
        out: &mut Lane,
    ) -> u64 {
        debug_assert!(n <= LANES);
        let EvalScratch { stack, sstack, tmps } = scratch;
        tmps.clear();
        for p in &self.pre {
            match p.eval(slots, sstack) {
                Ok(v) => tmps.push(v),
                Err(_) => return !0u64,
            }
        }
        if stack.len() < self.max_stack {
            stack.resize(self.max_stack, [0i64; LANES]);
        }
        let mut sp = 0usize;
        let mut fall = 0u64;
        for op in &self.ops {
            match *op {
                LOp::Const(k) => {
                    stack[sp][..n].fill(k);
                    sp += 1;
                }
                LOp::Slot(s) => {
                    stack[sp][..n].fill(slots[s as usize]);
                    sp += 1;
                }
                LOp::Tmp(t) => {
                    stack[sp][..n].fill(tmps[t as usize]);
                    sp += 1;
                }
                LOp::Row(r) => {
                    stack[sp][..n].copy_from_slice(&rows[r as usize][..n]);
                    sp += 1;
                }
                LOp::Bin(op) => {
                    sp -= 1;
                    let (lo, hi) = stack.split_at_mut(sp);
                    fall |= bin_lanes(op, &mut lo[sp - 1][..n], &hi[0][..n]);
                }
                LOp::Call2(f) => {
                    sp -= 1;
                    let (lo, hi) = stack.split_at_mut(sp);
                    fall |= call2_lanes(f, &mut lo[sp - 1][..n], &hi[0][..n]);
                }
                LOp::Neg => {
                    for v in stack[sp - 1][..n].iter_mut() {
                        *v = v.wrapping_neg();
                    }
                }
                LOp::Not => {
                    for v in stack[sp - 1][..n].iter_mut() {
                        *v = i64::from(*v == 0);
                    }
                }
                LOp::Abs => {
                    for v in stack[sp - 1][..n].iter_mut() {
                        *v = v.wrapping_abs();
                    }
                }
                LOp::NormalizeBool => {
                    for v in stack[sp - 1][..n].iter_mut() {
                        *v = i64::from(*v != 0);
                    }
                }
            }
        }
        debug_assert_eq!(sp, 1, "program must leave exactly one slab");
        out[..n].copy_from_slice(&stack[0][..n]);
        fall
    }
}

/// Worst-case slab stack depth of a lane op stream (pushes minus pops,
/// linearly — lane programs are jump-free).
fn lane_stack_bound(ops: &[LOp]) -> usize {
    let mut depth: isize = 0;
    let mut max: isize = 1;
    for op in ops {
        match op {
            LOp::Const(_) | LOp::Slot(_) | LOp::Tmp(_) | LOp::Row(_) => {
                depth += 1;
                max = max.max(depth);
            }
            LOp::Bin(_) | LOp::Call2(_) => depth -= 1,
            LOp::Neg | LOp::Not | LOp::Abs | LOp::NormalizeBool => {}
        }
    }
    max as usize
}

/// Lane-wise strict binary op over equal-length lane slices, mirroring the
/// scalar evaluator bit for bit on non-fallible lanes; returns the fallible
/// mask.
fn bin_lanes(op: IntBinOp, a: &mut [i64], b: &[i64]) -> u64 {
    let n = a.len();
    debug_assert_eq!(n, b.len());
    let mut fall = 0u64;
    match op {
        IntBinOp::Add => {
            for i in 0..n {
                a[i] = a[i].wrapping_add(b[i]);
            }
        }
        IntBinOp::Sub => {
            for i in 0..n {
                a[i] = a[i].wrapping_sub(b[i]);
            }
        }
        IntBinOp::Mul => {
            for i in 0..n {
                a[i] = a[i].wrapping_mul(b[i]);
            }
        }
        IntBinOp::Div => {
            // Scalar: error on b == 0; `wrapping_div` absorbs MIN / -1.
            for i in 0..n {
                let bad = b[i] == 0;
                fall |= (bad as u64) << i;
                let d = if bad { 1 } else { b[i] };
                a[i] = a[i].wrapping_div(d);
            }
        }
        IntBinOp::FloorDiv => {
            // Scalar: error on b == 0; `div_euclid` panics on MIN / -1.
            for i in 0..n {
                let bad = b[i] == 0 || (a[i] == i64::MIN && b[i] == -1);
                fall |= (bad as u64) << i;
                let d = if bad { 1 } else { b[i] };
                a[i] = a[i].div_euclid(d);
            }
        }
        IntBinOp::Rem => {
            // Scalar: error on b == 0; `wrapping_rem` absorbs MIN % -1.
            for i in 0..n {
                let bad = b[i] == 0;
                fall |= (bad as u64) << i;
                let d = if bad { 1 } else { b[i] };
                a[i] = a[i].wrapping_rem(d);
            }
        }
        IntBinOp::Lt => {
            for i in 0..n {
                a[i] = i64::from(a[i] < b[i]);
            }
        }
        IntBinOp::Le => {
            for i in 0..n {
                a[i] = i64::from(a[i] <= b[i]);
            }
        }
        IntBinOp::Gt => {
            for i in 0..n {
                a[i] = i64::from(a[i] > b[i]);
            }
        }
        IntBinOp::Ge => {
            for i in 0..n {
                a[i] = i64::from(a[i] >= b[i]);
            }
        }
        IntBinOp::Eq => {
            for i in 0..n {
                a[i] = i64::from(a[i] == b[i]);
            }
        }
        IntBinOp::Ne => {
            for i in 0..n {
                a[i] = i64::from(a[i] != b[i]);
            }
        }
        IntBinOp::And | IntBinOp::Or => unreachable!("lazy ops compile to jumps"),
    }
    fall
}

/// Lane-wise two-argument builtin over equal-length lane slices; returns
/// the fallible mask.
fn call2_lanes(f: Builtin, a: &mut [i64], b: &[i64]) -> u64 {
    let n = a.len();
    debug_assert_eq!(n, b.len());
    let mut fall = 0u64;
    match f {
        Builtin::Min => {
            for i in 0..n {
                a[i] = a[i].min(b[i]);
            }
        }
        Builtin::Max => {
            for i in 0..n {
                a[i] = a[i].max(b[i]);
            }
        }
        Builtin::DivCeil => {
            // Scalar computes `(a + b - 1).div_euclid(b)` with raw +/-:
            // zero divisor errors, intermediate overflow panics (debug) or
            // wraps (release), MIN / -1 division panics. All three lane
            // classes go fallible; the rest match scalar exactly because
            // wrapping-without-overflow is exact.
            for i in 0..n {
                let (x, y) = (a[i], b[i]);
                let bad = y == 0
                    || match x.checked_add(y).and_then(|t| t.checked_sub(1)) {
                        None => true,
                        Some(t) => t == i64::MIN && y == -1,
                    };
                fall |= (bad as u64) << i;
                let d = if bad { 1 } else { y };
                let t = if bad { 0 } else { x.wrapping_add(y).wrapping_sub(1) };
                a[i] = t.div_euclid(d);
            }
        }
        Builtin::Gcd => {
            for i in 0..n {
                let (mut x, mut y) = (a[i].unsigned_abs(), b[i].unsigned_abs());
                while y != 0 {
                    let t = x % y;
                    x = y;
                    y = t;
                }
                a[i] = x as i64;
            }
        }
        Builtin::RoundUp => {
            // `DivCeil` plus a raw `* b`: the product overflow is one more
            // fallible class.
            for i in 0..n {
                let (x, y) = (a[i], b[i]);
                let bad = y == 0
                    || match x.checked_add(y).and_then(|t| t.checked_sub(1)) {
                        None => true,
                        Some(t) => {
                            (t == i64::MIN && y == -1)
                                || t.div_euclid(y).checked_mul(y).is_none()
                        }
                    };
                fall |= (bad as u64) << i;
                let d = if bad { 1 } else { y };
                let t = if bad { 0 } else { x.wrapping_add(y).wrapping_sub(1) };
                a[i] = t.div_euclid(d).wrapping_mul(d);
            }
        }
        Builtin::Abs => unreachable!("unary"),
    }
    fall
}

#[cfg(test)]
mod tests {
    use super::*;
    use beast_core::ir::IntExpr as E;

    fn pf(e: &E) -> Postfix {
        Postfix::compile(e)
    }

    fn bin(op: IntBinOp, a: E, b: E) -> E {
        E::Bin(op, Box::new(a), Box::new(b))
    }

    /// Run `prog` lane-wise with row 0 = `vals` and compare every lane
    /// against the scalar evaluator.
    fn check_lanes(p: &Postfix, slots: &[i64], row_slot: u32, vals: &[i64]) {
        let lp = LaneProg::compile(p, &[row_slot]).expect("straight-line");
        let mut row = [0i64; LANES];
        row[..vals.len()].copy_from_slice(vals);
        let mut scratch = EvalScratch::default();
        let mut out = [0i64; LANES];
        let fall = lp.eval(slots, &[row], vals.len(), &mut scratch, &mut out);
        let mut sslots = slots.to_vec();
        let mut sstack = Vec::new();
        for (i, &v) in vals.iter().enumerate() {
            sslots[row_slot as usize] = v;
            let scalar = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                p.eval(&sslots, &mut sstack)
            }));
            if fall & (1 << i) == 0 {
                let scalar = scalar.expect("non-fallible lane must not panic");
                assert_eq!(scalar, Ok(out[i]), "lane {i} value {v}");
            } else {
                // Fallible lanes must really be fallible in at least one
                // build profile; with overflow checks on (tests), that
                // means the scalar path errors or panics.
                #[cfg(debug_assertions)]
                assert!(
                    scalar.is_err() || scalar.unwrap().is_err(),
                    "lane {i} value {v} marked fallible but scalar succeeded"
                );
            }
        }
    }

    #[test]
    fn arithmetic_matches_scalar_on_extremes() {
        let e = bin(
            IntBinOp::Mul,
            bin(IntBinOp::Add, E::Slot(0), E::Slot(1)),
            E::Const(3),
        );
        let vals = [0, 1, -1, i64::MAX, i64::MIN, 1 << 62, -(1 << 62), 7];
        check_lanes(&pf(&e), &[0, 5], 0, &vals);
    }

    #[test]
    fn division_marks_zero_divisors_fallible() {
        let e = bin(IntBinOp::Div, E::Const(100), E::Slot(0));
        check_lanes(&pf(&e), &[0], 0, &[1, 0, -1, 5, 0, i64::MIN]);
        let e = bin(IntBinOp::FloorDiv, E::Slot(0), E::Slot(1));
        // Lane pattern includes MIN / -1 (div_euclid overflow).
        check_lanes(&pf(&e), &[i64::MIN, 0], 1, &[-1, 1, 0, 3]);
        let e = bin(IntBinOp::Rem, E::Slot(0), E::Slot(1));
        check_lanes(&pf(&e), &[i64::MIN, 0], 1, &[-1, 1, 0, 3]);
    }

    #[test]
    fn builtins_match_scalar() {
        let e = E::Call2(
            Builtin::DivCeil,
            Box::new(E::Slot(0)),
            Box::new(E::Slot(1)),
        );
        check_lanes(&pf(&e), &[37, 0], 1, &[4, 0, -4, 1, i64::MAX]);
        let e = E::Call2(
            Builtin::RoundUp,
            Box::new(E::Slot(0)),
            Box::new(E::Slot(1)),
        );
        check_lanes(&pf(&e), &[37, 0], 1, &[4, 0, -4, 1, i64::MAX]);
        let e = E::Call2(Builtin::Gcd, Box::new(E::Slot(0)), Box::new(E::Const(24)));
        check_lanes(&pf(&e), &[0], 0, &[18, 0, -18, 7, i64::MIN]);
    }

    #[test]
    fn jumpy_programs_are_rejected() {
        // x != 0 && 12 % x == 0 lowers to guard jumps.
        let e = bin(
            IntBinOp::And,
            bin(IntBinOp::Ne, E::Slot(0), E::Const(0)),
            bin(
                IntBinOp::Eq,
                bin(IntBinOp::Rem, E::Const(12), E::Slot(0)),
                E::Const(0),
            ),
        );
        assert!(LaneProg::compile(&pf(&e), &[0]).is_none());
    }

    #[test]
    fn lane_invariant_subexpressions_are_hoisted() {
        // (s1 * s2 + 1) % row: the whole left operand reads no lane row,
        // so it must fold into one hoisted prologue temp, leaving a
        // three-op lane program (Tmp, Row, Rem).
        let e = bin(
            IntBinOp::Rem,
            bin(
                IntBinOp::Add,
                bin(IntBinOp::Mul, E::Slot(1), E::Slot(2)),
                E::Const(1),
            ),
            E::Slot(0),
        );
        let p = pf(&e);
        let lp = LaneProg::compile(&p, &[0]).unwrap();
        assert_eq!(lp.hoisted(), 1, "invariant subtree not hoisted");
        assert_eq!(lp.len(), 3, "lane program should be Tmp Row Rem");
        check_lanes(&p, &[0, 6, 7], 0, &[1, 2, 3, 0, 43, -5]);
    }

    #[test]
    fn hoisted_prologue_error_fails_the_whole_block() {
        // row % (10 / s1) with s1 == 0: the divide-by-zero is
        // lane-invariant, so every lane must be marked fallible and no
        // slab result used.
        let e = bin(
            IntBinOp::Rem,
            E::Slot(0),
            bin(IntBinOp::Div, E::Const(10), E::Slot(1)),
        );
        let lp = LaneProg::compile(&pf(&e), &[0]).unwrap();
        assert_eq!(lp.hoisted(), 1);
        let mut scratch = EvalScratch::default();
        let mut out = [0i64; LANES];
        let fall = lp.eval(&[0, 0], &[[7i64; LANES]], 4, &mut scratch, &mut out);
        assert_eq!(fall, !0, "prologue error must fail every lane over");
        // With a nonzero divisor the same program evaluates normally.
        let fall = lp.eval(&[0, 5], &[[7i64; LANES]], 4, &mut scratch, &mut out);
        assert_eq!(fall & 0b1111, 0);
        assert_eq!(out[0], 7 % 2);
    }

    #[test]
    fn tail_and_dead_lane_garbage_is_harmless() {
        // Division by a row whose tail lanes are zero: the slab must not
        // fault even when asked to evaluate the garbage tail, and live
        // lanes must still be exact.
        let e = bin(IntBinOp::Div, E::Const(64), E::Slot(0));
        let lp = LaneProg::compile(&pf(&e), &[0]).unwrap();
        let mut row = [0i64; LANES]; // all-zero garbage tail
        row[0] = 4;
        row[1] = 2;
        let mut scratch = EvalScratch::default();
        let mut out = [0i64; LANES];
        let fall = lp.eval(&[0], &[row], LANES, &mut scratch, &mut out);
        assert_eq!(out[0], 16);
        assert_eq!(out[1], 32);
        assert_eq!(fall & 0b11, 0);
        assert_eq!(fall >> 2, (1u64 << (LANES - 2)) - 1, "tail lanes fallible");

        // With the runtime lane bound the garbage tail is never evaluated:
        // no fall bits at or past `n`, and live lanes are unchanged.
        let fall = lp.eval(&[0], &[row], 2, &mut scratch, &mut out);
        assert_eq!(out[0], 16);
        assert_eq!(out[1], 32);
        assert_eq!(fall, 0, "lanes past the bound must not be evaluated");
    }
}
