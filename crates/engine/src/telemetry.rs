//! Sweep telemetry: a machine-readable account of what a parallel sweep did
//! and where the time went.
//!
//! The paper reports *aggregate* numbers (total sweep time, total survivors,
//! §XI); this module records the breakdown that explains them — per-constraint
//! and per-DAG-level prune counters, per-worker wall time and chunk counts
//! under the dynamic scheduler, and overall throughput — as a [`SweepReport`]
//! that renders both as a text table and as JSON (hand-rolled, std-only: the
//! build environment cannot vendor `serde`).
//!
//! Live progress during a sweep is exposed through [`SweepProgress`], a block
//! of atomic counters that workers bump after every chunk; any monitor thread
//! may poll [`SweepProgress::snapshot`] without perturbing the hot path.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

use beast_core::analyze::LintSummary;
use beast_core::space::Space;

use crate::fault::FaultRecord;
use crate::stats::{BlockStats, FaultCounters, LaneStats, PruneStats};

/// Shared progress counters for a running sweep.
///
/// Workers update these with relaxed atomics once per completed chunk (never
/// per point), so polling them costs the sweep nothing measurable.
#[derive(Debug, Default)]
pub struct SweepProgress {
    /// Chunks fully processed so far.
    pub chunks_done: AtomicUsize,
    /// Total chunks in this sweep (set once before workers start).
    pub chunks_total: AtomicUsize,
    /// Tuples decided so far: survivors plus constraint rejections.
    pub tuples_decided: AtomicU64,
}

/// One point-in-time view of a sweep's progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgressSnapshot {
    /// Chunks fully processed.
    pub chunks_done: usize,
    /// Total chunks.
    pub chunks_total: usize,
    /// Tuples decided (survivors + rejections).
    pub tuples_decided: u64,
}

impl SweepProgress {
    /// Read all counters at once.
    pub fn snapshot(&self) -> ProgressSnapshot {
        ProgressSnapshot {
            chunks_done: self.chunks_done.load(Ordering::Relaxed),
            chunks_total: self.chunks_total.load(Ordering::Relaxed),
            tuples_decided: self.tuples_decided.load(Ordering::Relaxed),
        }
    }

    /// Completed fraction in `[0, 1]` (0 when the total is not yet known).
    pub fn fraction_done(&self) -> f64 {
        let s = self.snapshot();
        if s.chunks_total == 0 {
            0.0
        } else {
            s.chunks_done as f64 / s.chunks_total as f64
        }
    }
}

/// What one worker thread did during a sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerTelemetry {
    /// Worker index (0-based).
    pub worker: usize,
    /// Chunks this worker pulled from the shared queue.
    pub chunks: u64,
    /// Wall time spent inside chunk evaluation.
    pub busy: Duration,
    /// Constraint evaluations this worker performed.
    pub evaluated: u64,
    /// Survivors this worker visited.
    pub survivors: u64,
}

/// Pruning counters for one constraint, annotated with its DAG level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstraintTelemetry {
    /// Constraint name.
    pub name: String,
    /// Constraint class (`hard` / `soft` / `correctness` / `generic`).
    pub class: String,
    /// DAG level the planner hoisted the check to (0 = outermost).
    pub level: usize,
    /// Position of this constraint's check in the engine's flattened check
    /// order — the *scheduled* order, which differs from plan order under
    /// static/adaptive constraint scheduling.
    pub schedule_rank: usize,
    /// Times evaluated.
    pub evaluated: u64,
    /// Times it rejected the tuple.
    pub pruned: u64,
}

impl ConstraintTelemetry {
    /// Rejections per evaluation (0 when never evaluated).
    pub fn kill_rate(&self) -> f64 {
        if self.evaluated == 0 {
            0.0
        } else {
            self.pruned as f64 / self.evaluated as f64
        }
    }
}

/// Pruning counters aggregated over all constraints hoisted to one DAG
/// level — the "how early do we cut" view of the funnel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelTelemetry {
    /// DAG level (0 = outermost, evaluated least often per raw tuple).
    pub level: usize,
    /// Constraint evaluations at this level.
    pub evaluated: u64,
    /// Rejections at this level.
    pub pruned: u64,
}

impl LevelTelemetry {
    /// Rejections per evaluation at this level (0 when never evaluated).
    pub fn kill_rate(&self) -> f64 {
        if self.evaluated == 0 {
            0.0
        } else {
            self.pruned as f64 / self.evaluated as f64
        }
    }
}

/// How one reorder-safe check group (the checks sharing a loop level) was
/// ordered by the constraint scheduler.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GroupSchedule {
    /// Loop level of the group (0 = directly under the outermost loop).
    pub level: usize,
    /// Constraint names in the order checks *started* executing (declared
    /// order, or the cost-model order under static/adaptive scheduling).
    pub initial: Vec<String>,
    /// Constraint names in the order in effect when the sweep finished
    /// (differs from `initial` only when adaptive re-sorting fired; under
    /// the parallel driver this is chunk 0's final order).
    pub final_order: Vec<String>,
}

/// The constraint schedule a sweep ran with.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScheduleTelemetry {
    /// Schedule mode name: `declared`, `static` or `adaptive`.
    pub mode: String,
    /// Constraint index → rank in the engine's flattened check order
    /// (surfaced per constraint as `schedule_rank`).
    pub ranks: Vec<usize>,
    /// Per-group orders, outermost group first.
    pub groups: Vec<GroupSchedule>,
}

/// Machine-readable record of one parallel sweep: configuration, pruning
/// funnel, per-worker load, and throughput.
///
/// Produced by [`crate::parallel::run_parallel_report`], printed by
/// `repro threads`, and consumed by the `parallel_scaling` benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Space name.
    pub space: String,
    /// Worker threads requested.
    pub threads: usize,
    /// Values in the realized level-0 domain.
    pub outer_len: usize,
    /// Level-0 values per scheduler chunk.
    pub chunk_len: usize,
    /// Number of chunks the domain was split into.
    pub chunks: usize,
    /// End-to-end sweep wall time.
    pub elapsed: Duration,
    /// Surviving points.
    pub survivors: u64,
    /// Total constraint evaluations.
    pub evaluated: u64,
    /// Total rejections.
    pub pruned: u64,
    /// Loop subtrees skipped by the interval block pruner (0 with
    /// `--no-intervals` or when nothing was statically decidable).
    pub subtree_skips: u64,
    /// Subset of `subtree_skips` decided only by the congruence half of
    /// the reduced product (0 with `--no-congruence`).
    pub congruence_skips: u64,
    /// Lower-bound estimate of raw tuples never enumerated thanks to
    /// subtree skips.
    pub points_skipped: u64,
    /// Per-point constraint evaluations elided because the check was
    /// statically true over its subtree (still counted in `evaluated`).
    pub checks_elided: u64,
    /// Chunks satisfied from the sub-sweep cache instead of re-enumeration
    /// (0 unless the sweep ran under `crate::service`'s memo).
    pub cache_hits: u64,
    /// Chunks that consulted the sub-sweep cache and missed (0 when no
    /// cache was attached).
    pub cache_misses: u64,
    /// Batched-lane and superinstruction counters (all zero when the
    /// compiled engine ran with `batch` off or another backend ran the
    /// sweep). Purely observational — survivors and pruning counters are
    /// bit-identical with batching on or off.
    pub lanes: LaneStats,
    /// Space-linter summary recorded at engine compile time (`None` when
    /// the lint gate is `Allow`).
    pub lint: Option<LintSummary>,
    /// Per-constraint rows, in plan order.
    pub constraints: Vec<ConstraintTelemetry>,
    /// Per-DAG-level aggregation, ascending by level.
    pub levels: Vec<LevelTelemetry>,
    /// Per-worker load, ascending by worker index.
    pub workers: Vec<WorkerTelemetry>,
    /// The constraint schedule the sweep ran with.
    pub schedule: ScheduleTelemetry,
    /// True when the sweep stopped early (cancel, deadline, or a simulated
    /// kill) and the outcome covers only a prefix of the chunk grid; a
    /// checkpointed partial sweep can be resumed to completion.
    pub partial: bool,
    /// Chunk index the sweep resumed from (`None` for a fresh run).
    pub resumed_at: Option<usize>,
    /// Name of the fault policy the sweep ran with.
    pub fault_policy: String,
    /// Aggregated per-policy fault counters.
    pub fault_counters: FaultCounters,
    /// Structured fault records, merged in chunk order.
    pub faults: Vec<FaultRecord>,
    /// Runtime-native tier counters (`None` when the tier was not active:
    /// not requested, or preparation fell back to the in-process engine).
    pub native: Option<crate::native::NativeStats>,
}

impl SweepReport {
    /// Assemble a report from merged sweep statistics plus scheduler and
    /// worker bookkeeping.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        space: &Space,
        stats: &PruneStats,
        blocks: &BlockStats,
        threads: usize,
        outer_len: usize,
        chunk_len: usize,
        chunks: usize,
        elapsed: Duration,
        workers: Vec<WorkerTelemetry>,
        schedule: ScheduleTelemetry,
        lint: Option<LintSummary>,
    ) -> SweepReport {
        let dag = space.dag();
        let constraints: Vec<ConstraintTelemetry> = space
            .constraints()
            .iter()
            .enumerate()
            .map(|(i, c)| ConstraintTelemetry {
                name: c.name.to_string(),
                class: c.class.to_string(),
                level: dag.level(space.constraint_node(i)),
                schedule_rank: schedule.ranks.get(i).copied().unwrap_or(i),
                evaluated: stats.evaluated[i],
                pruned: stats.pruned[i],
            })
            .collect();
        let mut levels: Vec<LevelTelemetry> = Vec::new();
        for c in &constraints {
            match levels.iter_mut().find(|l| l.level == c.level) {
                Some(l) => {
                    l.evaluated += c.evaluated;
                    l.pruned += c.pruned;
                }
                None => levels.push(LevelTelemetry {
                    level: c.level,
                    evaluated: c.evaluated,
                    pruned: c.pruned,
                }),
            }
        }
        levels.sort_by_key(|l| l.level);
        SweepReport {
            space: space.name().to_string(),
            threads,
            outer_len,
            chunk_len,
            chunks,
            elapsed,
            survivors: stats.survivors,
            evaluated: stats.evaluated.iter().sum(),
            pruned: stats.pruned.iter().sum(),
            subtree_skips: blocks.subtree_skips,
            congruence_skips: blocks.congruence_skips,
            points_skipped: blocks.points_skipped,
            checks_elided: blocks.checks_elided,
            cache_hits: 0,
            cache_misses: 0,
            lanes: LaneStats::default(),
            lint,
            constraints,
            levels,
            workers,
            schedule,
            partial: false,
            resumed_at: None,
            fault_policy: "abort".to_string(),
            fault_counters: FaultCounters::default(),
            faults: Vec::new(),
            native: None,
        }
    }

    /// Tuples decided per second: (survivors + rejections) / elapsed.
    ///
    /// Sub-microsecond elapsed times (trivial spaces, timer granularity)
    /// are noise, not throughput; they return 0 instead of a huge or
    /// infinite rate leaking into JSON.
    pub fn tuples_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs < 1e-6 {
            0.0
        } else {
            (self.survivors + self.pruned) as f64 / secs
        }
    }

    /// Load imbalance across workers: max busy time / mean busy time.
    ///
    /// 1.0 is a perfectly balanced sweep; under the old static
    /// one-chunk-per-thread split, DAG-hoisted pruning routinely pushed this
    /// past 2 on skewed spaces (one thread serializing the sweep).
    pub fn imbalance(&self) -> f64 {
        if self.workers.is_empty() {
            return 1.0;
        }
        let busys: Vec<f64> = self.workers.iter().map(|w| w.busy.as_secs_f64()).collect();
        let max = busys.iter().cloned().fold(0.0f64, f64::max);
        let mean = busys.iter().sum::<f64>() / busys.len() as f64;
        // Near-zero mean busy time (trivial spaces finish inside timer
        // granularity) would turn the ratio into noise, inf, or NaN;
        // report a perfectly balanced 1.0 instead.
        if mean < 1e-9 {
            1.0
        } else {
            max / mean
        }
    }

    /// Render as JSON (stable key order, no external dependencies).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push('{');
        json_str(&mut out, "space", &self.space);
        out.push(',');
        json_num(&mut out, "threads", self.threads as f64);
        out.push(',');
        json_num(&mut out, "outer_len", self.outer_len as f64);
        out.push(',');
        json_num(&mut out, "chunk_len", self.chunk_len as f64);
        out.push(',');
        json_num(&mut out, "chunks", self.chunks as f64);
        out.push(',');
        json_num(&mut out, "elapsed_s", self.elapsed.as_secs_f64());
        out.push(',');
        json_num(&mut out, "tuples_per_sec", self.tuples_per_sec());
        out.push(',');
        json_num(&mut out, "survivors", self.survivors as f64);
        out.push(',');
        json_num(&mut out, "evaluated", self.evaluated as f64);
        out.push(',');
        json_num(&mut out, "pruned", self.pruned as f64);
        out.push(',');
        json_num(&mut out, "subtree_skips", self.subtree_skips as f64);
        out.push(',');
        json_num(&mut out, "congruence_skips", self.congruence_skips as f64);
        out.push(',');
        json_num(&mut out, "points_skipped", self.points_skipped as f64);
        out.push(',');
        json_num(&mut out, "checks_elided", self.checks_elided as f64);
        out.push(',');
        json_num(&mut out, "cache_hits", self.cache_hits as f64);
        out.push(',');
        json_num(&mut out, "cache_misses", self.cache_misses as f64);
        out.push(',');
        json_num(&mut out, "lane_evals", self.lanes.lane_evals as f64);
        out.push(',');
        json_num(&mut out, "lanes_masked", self.lanes.lanes_masked as f64);
        out.push(',');
        json_num(&mut out, "scalar_fallbacks", self.lanes.scalar_fallbacks as f64);
        out.push_str(",\"super_hits\":[");
        for (i, h) in self.lanes.super_hits.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            // Exact decimal integers, never through f64 (rounds above 2^53).
            out.push_str(&h.to_string());
        }
        out.push(']');
        out.push(',');
        json_num(&mut out, "imbalance", self.imbalance());
        out.push_str(",\"native\":");
        match self.native {
            Some(n) => {
                // Exact decimal integers, never through f64.
                out.push_str("{\"compile_ms\":");
                out.push_str(&n.compile_ms.to_string());
                out.push_str(",\"artifact_cache_hits\":");
                out.push_str(&n.artifact_cache_hits.to_string());
                out.push_str(",\"chunks_native\":");
                out.push_str(&n.chunks_native.to_string());
                out.push_str(",\"rows_streamed\":");
                out.push_str(&n.rows_streamed.to_string());
                out.push_str(",\"chunks_fallback\":");
                out.push_str(&n.chunks_fallback.to_string());
                out.push('}');
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"partial\":");
        out.push_str(if self.partial { "true" } else { "false" });
        out.push_str(",\"resumed_at\":");
        match self.resumed_at {
            Some(c) => out.push_str(&c.to_string()),
            None => out.push_str("null"),
        }
        out.push(',');
        json_str(&mut out, "fault_policy", &self.fault_policy);
        out.push_str(",\"fault_counters\":{");
        json_num(&mut out, "points_skipped", self.fault_counters.points_skipped as f64);
        out.push(',');
        json_num(
            &mut out,
            "chunks_quarantined",
            self.fault_counters.chunks_quarantined as f64,
        );
        out.push(',');
        json_num(&mut out, "retries", self.fault_counters.retries as f64);
        out.push(',');
        json_num(&mut out, "panics", self.fault_counters.panics as f64);
        out.push(',');
        json_num(&mut out, "workers_spawned", self.fault_counters.workers_spawned as f64);
        out.push(',');
        json_num(&mut out, "worker_restarts", self.fault_counters.worker_restarts as f64);
        out.push(',');
        json_num(&mut out, "shards_retried", self.fault_counters.shards_retried as f64);
        out.push(',');
        json_num(&mut out, "heartbeat_timeouts", self.fault_counters.heartbeat_timeouts as f64);
        out.push_str("},\"faults\":[");
        for (i, r) in self.faults.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            fault_record_json(&mut out, r);
        }
        out.push(']');
        out.push_str(",\"lint\":");
        match self.lint {
            Some(s) => {
                out.push('{');
                json_num(&mut out, "errors", s.errors as f64);
                out.push(',');
                json_num(&mut out, "warnings", s.warnings as f64);
                out.push(',');
                json_num(&mut out, "infos", s.infos as f64);
                out.push('}');
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"constraints\":[");
        for (i, c) in self.constraints.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            json_str(&mut out, "name", &c.name);
            out.push(',');
            json_str(&mut out, "class", &c.class);
            out.push(',');
            json_num(&mut out, "level", c.level as f64);
            out.push(',');
            json_num(&mut out, "schedule_rank", c.schedule_rank as f64);
            out.push(',');
            json_num(&mut out, "evaluated", c.evaluated as f64);
            out.push(',');
            json_num(&mut out, "pruned", c.pruned as f64);
            out.push(',');
            json_num(&mut out, "kill_rate", c.kill_rate());
            out.push('}');
        }
        out.push_str("],\"levels\":[");
        for (i, l) in self.levels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            json_num(&mut out, "level", l.level as f64);
            out.push(',');
            json_num(&mut out, "evaluated", l.evaluated as f64);
            out.push(',');
            json_num(&mut out, "pruned", l.pruned as f64);
            out.push(',');
            json_num(&mut out, "kill_rate", l.kill_rate());
            out.push('}');
        }
        out.push_str("],\"schedule\":{");
        json_str(&mut out, "mode", &self.schedule.mode);
        out.push_str(",\"levels\":[");
        for (i, g) in self.schedule.groups.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            json_num(&mut out, "level", g.level as f64);
            out.push_str(",\"initial\":");
            json_str_array(&mut out, &g.initial);
            out.push_str(",\"final\":");
            json_str_array(&mut out, &g.final_order);
            out.push('}');
        }
        out.push_str("]},\"workers\":[");
        for (i, w) in self.workers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            json_num(&mut out, "worker", w.worker as f64);
            out.push(',');
            json_num(&mut out, "chunks", w.chunks as f64);
            out.push(',');
            json_num(&mut out, "busy_s", w.busy.as_secs_f64());
            out.push(',');
            json_num(&mut out, "evaluated", w.evaluated as f64);
            out.push(',');
            json_num(&mut out, "survivors", w.survivors as f64);
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Render as a human-readable multi-table summary.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "sweep `{}`: {} outer values in {} chunk(s) of {} on {} thread(s)",
            self.space, self.outer_len, self.chunks, self.chunk_len, self.threads
        );
        let _ = writeln!(
            out,
            "elapsed {:.3} s   {:.2} M tuples/s   survivors {}   pruned {}   imbalance {:.2}",
            self.elapsed.as_secs_f64(),
            self.tuples_per_sec() / 1e6,
            self.survivors,
            self.pruned,
            self.imbalance()
        );
        if self.subtree_skips > 0 || self.checks_elided > 0 {
            let _ = writeln!(
                out,
                "block pruning: {} subtree skips ({} by congruence, ≥ {} points never enumerated), {} checks elided",
                self.subtree_skips, self.congruence_skips, self.points_skipped, self.checks_elided
            );
        }
        if self.cache_hits + self.cache_misses > 0 {
            let _ = writeln!(
                out,
                "sub-sweep cache: {} hit(s), {} miss(es)",
                self.cache_hits, self.cache_misses
            );
        }
        if let Some(n) = self.native {
            let _ = writeln!(
                out,
                "native tier: {} chunk(s) in worker processes ({} fallback), {} row(s) streamed, compile {} ms{}",
                n.chunks_native,
                n.chunks_fallback,
                n.rows_streamed,
                n.compile_ms,
                if n.artifact_cache_hits > 0 { " (artifact cache hit)" } else { "" }
            );
        }
        if self.lanes.lane_evals > 0 || self.lanes.total_super_hits() > 0 {
            let _ = writeln!(
                out,
                "lane batching: {} lane evals, {} tail lanes masked, {} scalar fallbacks, {} superinstruction hit(s)",
                self.lanes.lane_evals,
                self.lanes.lanes_masked,
                self.lanes.scalar_fallbacks,
                self.lanes.total_super_hits()
            );
        }
        if let Some(s) = self.lint {
            if s.errors + s.warnings + s.infos > 0 {
                let _ = writeln!(
                    out,
                    "lint: {} error(s), {} warning(s), {} info(s) — see `repro lint`",
                    s.errors, s.warnings, s.infos
                );
            }
        }
        if self.partial || self.resumed_at.is_some() {
            let _ = writeln!(
                out,
                "coverage: partial={}{}",
                self.partial,
                match self.resumed_at {
                    Some(c) => format!("   resumed at chunk {c}"),
                    None => String::new(),
                }
            );
        }
        if self.fault_counters.total() > 0 {
            let c = self.fault_counters;
            let _ = writeln!(
                out,
                "faults ({}): {} point(s) skipped, {} chunk(s) quarantined, {} retry(ies), {} panic(s)",
                self.fault_policy,
                c.points_skipped,
                c.chunks_quarantined,
                c.retries,
                c.panics
            );
        }
        if self.fault_counters.workers_spawned > 0 {
            let c = self.fault_counters;
            let _ = writeln!(
                out,
                "workers: {} spawned, {} restart(s), {} shard retry(ies), {} heartbeat timeout(s)",
                c.workers_spawned,
                c.worker_restarts,
                c.shards_retried,
                c.heartbeat_timeouts
            );
        }
        let _ = writeln!(
            out,
            "\n{:<24} {:<12} {:>5} {:>14} {:>14} {:>8}",
            "constraint", "class", "level", "evaluated", "pruned", "kill%"
        );
        for c in &self.constraints {
            let _ = writeln!(
                out,
                "{:<24} {:<12} {:>5} {:>14} {:>14} {:>7.2}%",
                c.name,
                c.class,
                c.level,
                c.evaluated,
                c.pruned,
                100.0 * c.kill_rate()
            );
        }
        let _ = writeln!(
            out,
            "\n{:<6} {:>14} {:>14} {:>8}",
            "level", "evaluated", "pruned", "kill%"
        );
        for l in &self.levels {
            let _ = writeln!(
                out,
                "{:<6} {:>14} {:>14} {:>7.2}%",
                l.level,
                l.evaluated,
                l.pruned,
                100.0 * l.kill_rate()
            );
        }
        if !self.schedule.groups.is_empty() {
            let _ = writeln!(out, "\ncheck schedule ({}):", self.schedule.mode);
            for g in &self.schedule.groups {
                let _ =
                    writeln!(out, "  level {}: {}", g.level, g.initial.join(" → "));
                if g.final_order != g.initial {
                    let _ = writeln!(
                        out,
                        "  level {} (final): {}",
                        g.level,
                        g.final_order.join(" → ")
                    );
                }
            }
        }
        let _ = writeln!(
            out,
            "\n{:<7} {:>7} {:>10} {:>14} {:>12}",
            "worker", "chunks", "busy s", "evaluated", "survivors"
        );
        for w in &self.workers {
            let _ = writeln!(
                out,
                "{:<7} {:>7} {:>10.3} {:>14} {:>12}",
                w.worker,
                w.chunks,
                w.busy.as_secs_f64(),
                w.evaluated,
                w.survivors
            );
        }
        out
    }
}

/// Append one [`FaultRecord`] as a JSON object (stable key order; shared by
/// the report serializer and the checkpoint writer).
pub(crate) fn fault_record_json(out: &mut String, r: &FaultRecord) {
    use std::fmt::Write as _;
    // Counters are written as exact decimal integers (never through f64,
    // which silently rounds above 2^53).
    let _ = write!(
        out,
        "{{\"chunk\":{},\"ordinal\":{},\"attempt\":{},",
        r.chunk, r.ordinal, r.attempt
    );
    json_str(out, "kind", r.kind.name());
    out.push(',');
    json_str(out, "action", r.action.name());
    out.push(',');
    json_str(out, "site", &r.site);
    out.push(',');
    json_str(out, "error", &r.error);
    out.push_str(",\"bindings\":[");
    for (i, (name, value)) in r.bindings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        json_str_value(out, name);
        let _ = write!(out, ",{value}]");
    }
    out.push_str("]}");
}

/// Append a bare escaped JSON string (no key).
pub(crate) fn json_str_value(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append `"key":"escaped value"`.
pub(crate) fn json_str(out: &mut String, key: &str, value: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    json_str_value(out, value);
}

/// Append `["a","b",...]` of escaped strings.
fn json_str_array(out: &mut String, items: &[String]) {
    out.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_str_value(out, item);
    }
    out.push(']');
}

/// Append `"key":number` (non-finite values become 0 — JSON has no NaN).
pub(crate) fn json_num(out: &mut String, key: &str, value: f64) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    if value.is_finite() {
        if value == value.trunc() && value.abs() < 9.0e15 {
            out.push_str(&format!("{}", value as i64));
        } else {
            out.push_str(&format!("{value}"));
        }
    } else {
        out.push('0');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beast_core::constraint::ConstraintClass;
    use beast_core::expr::var;

    fn sample_report() -> SweepReport {
        let space = Space::builder("tele")
            .constant("cap", 10)
            .range("a", 0, 8)
            .range("b", 0, 8)
            .derived("ab", var("a") * var("b"))
            .constraint("a_odd", ConstraintClass::Soft, (var("a") % 2).ne(0))
            .constraint("over", ConstraintClass::Hard, var("ab").gt(var("cap")))
            .build()
            .unwrap();
        let mut stats = PruneStats::new(2);
        for _ in 0..8 {
            stats.record(0, false);
        }
        for i in 0..64u64 {
            stats.record(1, i % 4 == 0);
            if i % 4 != 0 {
                stats.record_survivor();
            }
        }
        let workers = vec![
            WorkerTelemetry {
                worker: 0,
                chunks: 3,
                busy: Duration::from_millis(30),
                evaluated: 40,
                survivors: 24,
            },
            WorkerTelemetry {
                worker: 1,
                chunks: 2,
                busy: Duration::from_millis(10),
                evaluated: 32,
                survivors: 24,
            },
        ];
        let blocks = BlockStats {
            subtree_skips: 3,
            congruence_skips: 1,
            points_skipped: 120,
            checks_elided: 5,
        };
        let schedule = ScheduleTelemetry {
            mode: "adaptive".to_string(),
            ranks: vec![0, 1],
            groups: vec![GroupSchedule {
                level: 1,
                initial: vec!["a_odd".to_string(), "over".to_string()],
                final_order: vec!["over".to_string(), "a_odd".to_string()],
            }],
        };
        SweepReport::new(
            &space,
            &stats,
            &blocks,
            2,
            8,
            2,
            4,
            Duration::from_millis(40),
            workers,
            schedule,
            Some(LintSummary { errors: 0, warnings: 2, infos: 5 }),
        )
    }

    #[test]
    fn constraint_levels_come_from_the_dag() {
        let r = sample_report();
        // `a_odd` depends only on the level-0 iterator; `over` depends on a
        // derived of both iterators and sits deeper.
        let a_odd = r.constraints.iter().find(|c| c.name == "a_odd").unwrap();
        let over = r.constraints.iter().find(|c| c.name == "over").unwrap();
        assert!(a_odd.level < over.level);
        assert_eq!(a_odd.evaluated, 8);
        assert_eq!(over.pruned, 16);
    }

    #[test]
    fn levels_aggregate_constraints() {
        let r = sample_report();
        let total_eval: u64 = r.levels.iter().map(|l| l.evaluated).sum();
        assert_eq!(total_eval, r.evaluated);
        assert!(r.levels.windows(2).all(|w| w[0].level < w[1].level));
    }

    #[test]
    fn imbalance_is_max_over_mean() {
        let r = sample_report();
        // busy = 30ms and 10ms → mean 20ms → imbalance 1.5.
        assert!((r.imbalance() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn json_is_well_formed_and_complete() {
        let r = sample_report();
        let json = r.to_json();
        // Structural sanity without a JSON parser: balanced braces/brackets,
        // all sections present, no trailing commas.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for key in [
            "\"space\":\"tele\"",
            "\"threads\":2",
            "\"constraints\":[",
            "\"levels\":[",
            "\"workers\":[",
            "\"tuples_per_sec\":",
            "\"imbalance\":1.5",
            "\"busy_s\":0.03",
            "\"subtree_skips\":3",
            "\"congruence_skips\":1",
            "\"points_skipped\":120",
            "\"checks_elided\":5",
            "\"lint\":{\"errors\":0,\"warnings\":2,\"infos\":5}",
            "\"schedule_rank\":",
            "\"schedule\":{\"mode\":\"adaptive\"",
            "\"partial\":false",
            "\"resumed_at\":null",
            "\"fault_policy\":\"abort\"",
            "\"fault_counters\":{\"points_skipped\":0,\"chunks_quarantined\":0,\"retries\":0,\"panics\":0,\"workers_spawned\":0,\"worker_restarts\":0,\"shards_retried\":0,\"heartbeat_timeouts\":0}",
            "\"faults\":[]",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(!json.contains(",]") && !json.contains(",}"));
    }

    /// Fault fields serialize with a pinned shape: a populated record keeps
    /// the exact key order downstream tooling greps for, `resumed_at`
    /// switches from `null` to a number, and the text rendering surfaces
    /// the counters and coverage line.
    #[test]
    fn fault_fields_have_pinned_json_shape() {
        use crate::fault::{FaultAction, FaultKind, FaultRecord};
        let mut r = sample_report();
        r.partial = true;
        r.resumed_at = Some(4);
        r.fault_policy = "quarantine_chunk".to_string();
        r.faults.push(FaultRecord {
            chunk: 7,
            ordinal: 3,
            attempt: 1,
            kind: FaultKind::Error,
            action: FaultAction::QuarantinedChunk,
            site: "low_fmas".to_string(),
            error: "division by zero".to_string(),
            bindings: vec![("blk_m".to_string(), 96)],
        });
        r.faults.push(FaultRecord {
            chunk: 9,
            ordinal: 0,
            attempt: 0,
            kind: FaultKind::WorkerExit,
            action: FaultAction::Retried,
            site: "worker".to_string(),
            error: "worker exited: signal 9".to_string(),
            bindings: vec![],
        });
        r.fault_counters = crate::stats::FaultCounters::from_records(&r.faults);
        r.fault_counters.workers_spawned = 4;
        r.fault_counters.worker_restarts = 1;
        let json = r.to_json();
        assert!(json.contains("\"partial\":true"), "{json}");
        assert!(json.contains("\"resumed_at\":4"), "{json}");
        assert!(
            json.contains(
                "{\"chunk\":7,\"ordinal\":3,\"attempt\":1,\"kind\":\"error\",\
                 \"action\":\"quarantined_chunk\",\"site\":\"low_fmas\",\
                 \"error\":\"division by zero\",\"bindings\":[[\"blk_m\",96]]}"
            ),
            "fault record shape changed: {json}"
        );
        assert!(
            json.contains(
                "{\"chunk\":9,\"ordinal\":0,\"attempt\":0,\"kind\":\"worker_exit\",\
                 \"action\":\"retried\",\"site\":\"worker\",\
                 \"error\":\"worker exited: signal 9\",\"bindings\":[]}"
            ),
            "worker fault record shape changed: {json}"
        );
        assert!(json.contains("\"chunks_quarantined\":1"), "{json}");
        assert!(
            json.contains(
                "\"workers_spawned\":4,\"worker_restarts\":1,\
                 \"shards_retried\":1,\"heartbeat_timeouts\":0"
            ),
            "worker counter shape changed: {json}"
        );
        let text = r.render_text();
        assert!(text.contains("partial=true"), "{text}");
        assert!(text.contains("resumed at chunk 4"), "{text}");
        assert!(text.contains("1 chunk(s) quarantined"), "{text}");
        assert!(
            text.contains("workers: 4 spawned, 1 restart(s), 1 shard retry(ies), 0 heartbeat timeout(s)"),
            "{text}"
        );
    }

    /// The lint block degrades to an explicit `null` (not a missing key)
    /// when the gate skipped the analyzer, and the congruence counter sits
    /// next to `subtree_skips` in the pinned key order.
    #[test]
    fn lint_block_and_congruence_counter_have_pinned_shape() {
        let mut r = sample_report();
        let json = r.to_json();
        assert!(
            json.contains("\"subtree_skips\":3,\"congruence_skips\":1,\"points_skipped\":120"),
            "block-pruning key order changed: {json}"
        );
        r.lint = None;
        let json = r.to_json();
        assert!(json.contains("\"lint\":null"), "{json}");
        let text = sample_report().render_text();
        assert!(text.contains("3 subtree skips (1 by congruence"), "{text}");
        assert!(text.contains("lint: 0 error(s), 2 warning(s), 5 info(s)"), "{text}");
    }

    /// Pin the serialized shape of the scheduling fields: per-constraint
    /// `schedule_rank`, per-level `kill_rate`, and the `schedule` section
    /// with per-group initial/final orders.
    #[test]
    fn schedule_fields_have_pinned_json_shape() {
        let r = sample_report();
        let json = r.to_json();
        assert!(
            json.contains(
                "\"schedule\":{\"mode\":\"adaptive\",\"levels\":[{\"level\":1,\
                 \"initial\":[\"a_odd\",\"over\"],\"final\":[\"over\",\"a_odd\"]}]}"
            ),
            "schedule section shape changed: {json}"
        );
        // Each constraint row carries its rank in the scheduled check order.
        assert!(
            json.contains("\"name\":\"a_odd\",\"class\":\"soft\",\"level\":1,\"schedule_rank\":0"),
            "{json}"
        );
        assert!(json.contains("\"schedule_rank\":1"));
        // Levels carry a kill_rate (over: 16 pruned / 64 evaluated = 0.25).
        assert!(json.contains("\"pruned\":16,\"kill_rate\":0.25"), "{json}");
    }

    /// Near-zero elapsed/busy times must not leak inf/NaN into the report.
    #[test]
    fn trivial_sweeps_guard_against_non_finite_rates() {
        let mut r = sample_report();
        r.elapsed = Duration::ZERO;
        for w in &mut r.workers {
            w.busy = Duration::ZERO;
        }
        assert_eq!(r.tuples_per_sec(), 0.0);
        assert_eq!(r.imbalance(), 1.0);
        // Sub-microsecond times are timer noise, not throughput.
        r.elapsed = Duration::from_nanos(1);
        assert_eq!(r.tuples_per_sec(), 0.0);
        let json = r.to_json();
        // Non-finite numbers would appear as bare values after a colon
        // (`"infos"` is a legitimate key, so match the value position).
        assert!(!json.contains(":inf") && !json.contains(":NaN"), "{json}");
    }

    /// Lane-batching counters serialize with a pinned shape: zeros plus an
    /// empty `super_hits` array by default, keyed between the cache
    /// counters and `imbalance`; populated counters keep the exact key
    /// order and surface in the text rendering.
    #[test]
    fn lane_counters_have_pinned_json_shape() {
        let mut r = sample_report();
        let json = r.to_json();
        assert!(
            json.contains(
                "\"cache_misses\":0,\"lane_evals\":0,\"lanes_masked\":0,\
                 \"scalar_fallbacks\":0,\"super_hits\":[],\"imbalance\":"
            ),
            "lane counter key order changed: {json}"
        );
        let text = r.render_text();
        assert!(!text.contains("lane batching"), "{text}");
        r.lanes = LaneStats {
            lane_evals: 1000,
            lanes_masked: 12,
            scalar_fallbacks: 3,
            super_hits: vec![40, 0],
        };
        let json = r.to_json();
        assert!(
            json.contains(
                "\"lane_evals\":1000,\"lanes_masked\":12,\
                 \"scalar_fallbacks\":3,\"super_hits\":[40,0]"
            ),
            "{json}"
        );
        let text = r.render_text();
        assert!(
            text.contains(
                "lane batching: 1000 lane evals, 12 tail lanes masked, \
                 3 scalar fallbacks, 40 superinstruction hit(s)"
            ),
            "{text}"
        );
    }

    /// The native-tier block serializes with a pinned shape: `null` when
    /// the tier was inactive, a fixed-key-order object when it ran, keyed
    /// between `imbalance` and `partial`; active counters also surface in
    /// the text rendering.
    #[test]
    fn native_counters_have_pinned_json_shape() {
        let mut r = sample_report();
        let json = r.to_json();
        assert!(json.contains(",\"native\":null,\"partial\":"), "{json}");
        let text = r.render_text();
        assert!(!text.contains("native tier"), "{text}");
        r.native = Some(crate::native::NativeStats {
            compile_ms: 120,
            artifact_cache_hits: 1,
            chunks_native: 7,
            rows_streamed: 4096,
            chunks_fallback: 1,
        });
        let json = r.to_json();
        assert!(
            json.contains(
                ",\"native\":{\"compile_ms\":120,\"artifact_cache_hits\":1,\
                 \"chunks_native\":7,\"rows_streamed\":4096,\
                 \"chunks_fallback\":1},\"partial\":"
            ),
            "native counter key order changed: {json}"
        );
        let text = r.render_text();
        assert!(
            text.contains(
                "native tier: 7 chunk(s) in worker processes (1 fallback), \
                 4096 row(s) streamed, compile 120 ms (artifact cache hit)"
            ),
            "{text}"
        );
    }

    #[test]
    fn json_escapes_names() {
        let mut out = String::new();
        json_str(&mut out, "k", "a\"b\\c\nd");
        assert_eq!(out, "\"k\":\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn progress_snapshot_reads_counters() {
        let p = SweepProgress::default();
        p.chunks_total.store(10, Ordering::Relaxed);
        p.chunks_done.store(4, Ordering::Relaxed);
        p.tuples_decided.store(1000, Ordering::Relaxed);
        let s = p.snapshot();
        assert_eq!((s.chunks_done, s.chunks_total, s.tuples_decided), (4, 10, 1000));
        assert!((p.fraction_done() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn text_rendering_mentions_all_sections() {
        let r = sample_report();
        let text = r.render_text();
        assert!(text.contains("sweep `tele`"));
        assert!(text.contains("constraint"));
        assert!(text.contains("worker"));
        assert!(text.contains("imbalance 1.50"));
    }
}
