//! Surviving points of a search-space sweep.

use std::fmt;
use std::sync::Arc;

use beast_core::expr::Bindings;
use beast_core::value::Value;

/// An owned surviving point: the values of every iterator and derived
/// variable at a tuple that passed all pruning constraints.
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    names: Arc<[Arc<str>]>,
    values: Vec<Value>,
}

impl Point {
    /// Construct from parallel name/value lists.
    pub fn new(names: Arc<[Arc<str>]>, values: Vec<Value>) -> Point {
        debug_assert_eq!(names.len(), values.len());
        Point { names, values }
    }

    /// Variable names, in slot order (iterators first, then derived).
    pub fn names(&self) -> &[Arc<str>] {
        &self.names
    }

    /// Variable values, parallel to [`Point::names`].
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Look up a variable by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.names
            .iter()
            .position(|n| &**n == name)
            .map(|i| &self.values[i])
    }

    /// Look up an integer variable by name; panics with a clear message if
    /// missing or non-integer (points produced by the engines are integral).
    pub fn get_int(&self, name: &str) -> i64 {
        self.get(name)
            .unwrap_or_else(|| panic!("point has no variable `{name}`"))
            .as_int()
            .unwrap_or_else(|_| panic!("variable `{name}` is not an integer"))
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the point has no variables (never produced by the engines).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (n, v)) in self.names.iter().zip(&self.values).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n}={v}")?;
        }
        write!(f, "}}")
    }
}

impl Bindings for Point {
    fn get(&self, name: &str) -> Option<Value> {
        Point::get(self, name).cloned()
    }
}

/// A borrowed view of the current point, handed to visitors without
/// allocating. Backends expose either a flat slot array (VM / compiled) or a
/// generic binding environment (walker).
pub enum PointRef<'a> {
    /// Slot-array form.
    Slots {
        /// Variable names in slot order.
        names: &'a [Arc<str>],
        /// Slot values.
        slots: &'a [i64],
    },
    /// Generic environment form.
    Env {
        /// Variable names.
        names: &'a [Arc<str>],
        /// The environment to read them from.
        env: &'a dyn Bindings,
    },
}

impl PointRef<'_> {
    /// Variable names.
    pub fn names(&self) -> &[Arc<str>] {
        match self {
            PointRef::Slots { names, .. } | PointRef::Env { names, .. } => names,
        }
    }

    /// Value of variable `i`.
    pub fn value(&self, i: usize) -> Value {
        match self {
            PointRef::Slots { slots, .. } => Value::Int(slots[i]),
            PointRef::Env { names, env } => env
                .get(&names[i])
                .expect("visited point must have all variables bound"),
        }
    }

    /// Look up a variable by name.
    pub fn get(&self, name: &str) -> Option<Value> {
        match self {
            PointRef::Slots { names, slots } => names
                .iter()
                .position(|n| &**n == name)
                .map(|i| Value::Int(slots[i])),
            PointRef::Env { env, .. } => env.get(name),
        }
    }

    /// Materialize into an owned [`Point`].
    pub fn to_point(&self, names: &Arc<[Arc<str>]>) -> Point {
        let values = (0..self.names().len()).map(|i| self.value(i)).collect();
        Point::new(Arc::clone(names), values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names() -> Arc<[Arc<str>]> {
        Arc::from(vec![Arc::<str>::from("a"), Arc::<str>::from("b")].into_boxed_slice())
    }

    #[test]
    fn point_lookup_and_display() {
        let p = Point::new(names(), vec![Value::Int(3), Value::Int(7)]);
        assert_eq!(p.get_int("a"), 3);
        assert_eq!(p.get("b"), Some(&Value::Int(7)));
        assert_eq!(p.get("c"), None);
        assert_eq!(p.to_string(), "{a=3, b=7}");
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn point_is_bindings() {
        let p = Point::new(names(), vec![Value::Int(3), Value::Int(7)]);
        assert_eq!(Bindings::get(&p, "a"), Some(Value::Int(3)));
    }

    #[test]
    fn slot_view_roundtrip() {
        let ns = names();
        let slots = [10i64, 20];
        let view = PointRef::Slots { names: &ns, slots: &slots };
        assert_eq!(view.get("b"), Some(Value::Int(20)));
        let p = view.to_point(&ns);
        assert_eq!(p.get_int("a"), 10);
    }

    #[test]
    #[should_panic(expected = "has no variable")]
    fn get_int_panics_on_missing() {
        let p = Point::new(names(), vec![Value::Int(1), Value::Int(2)]);
        p.get_int("zzz");
    }
}
