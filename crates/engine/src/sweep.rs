//! One-call sweep helpers: plan → lower → compile → run in a single
//! function, for callers who do not need to reuse the intermediate
//! artifacts.

use std::sync::Arc;

use beast_core::error::{EvalError, SpaceError};
use beast_core::ir::LoweredPlan;
use beast_core::plan::{Plan, PlanOptions};
use beast_core::space::Space;

use crate::compiled::Compiled;
use crate::parallel::{run_parallel, run_parallel_report, ParallelOptions};
use crate::point::{Point, PointRef};
use crate::stats::PruneStats;
use crate::telemetry::SweepReport;
use crate::visit::{BestK, CollectVisitor, CountVisitor};

/// Errors from the sweep drivers and one-call helpers.
#[derive(Debug)]
pub enum SweepError {
    /// Planning or lowering failed.
    Space(SpaceError),
    /// Evaluation failed.
    Eval(EvalError),
    /// A worker thread panicked. Under [`FaultPolicy::Abort`](crate::fault::FaultPolicy)
    /// the panic payload surfaces here as a structured error instead of
    /// poisoning the orchestrator's `join`; other policies convert panics
    /// into quarantined-chunk [`FaultRecord`](crate::fault::FaultRecord)s.
    WorkerPanic {
        /// Chunk being evaluated when the panic fired (`None` when the panic
        /// escaped outside any chunk).
        chunk: Option<usize>,
        /// Stringified panic payload.
        message: String,
    },
    /// Reading, writing or validating a checkpoint file failed.
    Checkpoint(String),
    /// The requested engine options cannot drive this sweep (for example,
    /// the serial walker tier handed to the parallel driver).
    Config(String),
}

impl From<SpaceError> for SweepError {
    fn from(e: SpaceError) -> Self {
        SweepError::Space(e)
    }
}

impl From<EvalError> for SweepError {
    fn from(e: EvalError) -> Self {
        SweepError::Eval(e)
    }
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Space(e) => write!(f, "{e}"),
            SweepError::Eval(e) => write!(f, "{e}"),
            SweepError::WorkerPanic { chunk: Some(c), message } => {
                write!(f, "worker panicked in chunk {c}: {message}")
            }
            SweepError::WorkerPanic { chunk: None, message } => {
                write!(f, "worker panicked: {message}")
            }
            SweepError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
            SweepError::Config(msg) => write!(f, "configuration error: {msg}"),
        }
    }
}

impl std::error::Error for SweepError {}

fn compile(space: &Arc<Space>) -> Result<Compiled, SweepError> {
    let plan = Plan::new(space, PlanOptions::default())?;
    Ok(Compiled::new(LoweredPlan::new(&plan)?))
}

/// Count the survivors of a space (default plan, compiled engine).
pub fn count(space: &Arc<Space>) -> Result<(u64, PruneStats), SweepError> {
    let out = compile(space)?.run(CountVisitor::default())?;
    Ok((out.visitor.count, out.stats))
}

/// Collect up to `cap` surviving points.
pub fn collect(space: &Arc<Space>, cap: usize) -> Result<(Vec<Point>, PruneStats), SweepError> {
    let compiled = compile(space)?;
    let out = compiled.run(CollectVisitor::new(compiled.point_names().clone(), cap))?;
    Ok((out.visitor.points, out.stats))
}

/// Keep the `k` best survivors under `score` (higher wins), swept across
/// `threads` worker threads.
pub fn best_k<F>(
    space: &Arc<Space>,
    k: usize,
    threads: usize,
    score: F,
) -> Result<(Vec<(f64, Point)>, PruneStats), SweepError>
where
    F: Fn(&PointRef<'_>) -> f64 + Send + Sync + Clone + 'static,
{
    let plan = Plan::new(space, PlanOptions::default())?;
    let lowered = LoweredPlan::new(&plan)?;
    let names = Compiled::new(lowered.clone()).point_names().clone();
    let out = run_parallel(&lowered, threads, move || {
        BestK::new(names.clone(), k, score.clone())
    })?;
    Ok((out.visitor.best, out.stats))
}

/// Count survivors across `threads` worker threads and return the full
/// [`SweepReport`] (pruning funnel, per-worker timings, scheduler shape).
pub fn count_report(
    space: &Arc<Space>,
    threads: usize,
) -> Result<(u64, SweepReport), SweepError> {
    let plan = Plan::new(space, PlanOptions::default())?;
    let lowered = LoweredPlan::new(&plan)?;
    let (out, report) =
        run_parallel_report(&lowered, &ParallelOptions::new(threads), CountVisitor::default)?;
    Ok((out.visitor.count, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use beast_core::constraint::ConstraintClass;
    use beast_core::expr::var;

    fn space() -> Arc<Space> {
        Space::builder("sweep_helpers")
            .range("x", 0, 50)
            .range("y", 0, 10)
            .constraint("diag", ConstraintClass::Generic, var("x").lt(var("y")))
            .build()
            .unwrap()
    }

    #[test]
    fn count_matches_brute_force() {
        let (n, stats) = count(&space()).unwrap();
        // keep x >= y: for y in 0..10, x in y..50 → sum (50 - y)
        let expect: u64 = (0..10u64).map(|y| 50 - y).sum();
        assert_eq!(n, expect);
        assert_eq!(stats.survivors, n);
    }

    #[test]
    fn collect_caps() {
        let (points, _) = collect(&space(), 7).unwrap();
        assert_eq!(points.len(), 7);
        assert!(points.iter().all(|p| p.get_int("x") >= p.get_int("y")));
    }

    #[test]
    fn best_k_finds_maximum() {
        let (best, _) = best_k(&space(), 3, 2, |p| {
            (p.get("x").unwrap().as_int().unwrap() + p.get("y").unwrap().as_int().unwrap())
                as f64
        })
        .unwrap();
        assert_eq!(best.len(), 3);
        // Max of x + y subject to x >= y: (49, 9).
        assert_eq!(best[0].0, 58.0);
        assert_eq!(best[0].1.get_int("x"), 49);
    }

    #[test]
    fn count_report_matches_count() {
        let (n, stats) = count(&space()).unwrap();
        let (n2, report) = count_report(&space(), 4).unwrap();
        assert_eq!(n2, n);
        assert_eq!(report.survivors, stats.survivors);
        assert_eq!(report.pruned, stats.total_pruned());
    }

    #[test]
    fn errors_surface() {
        let bad = Space::builder("dz")
            .range("x", 0, 4)
            .derived("boom", var("x") / var("x"))
            .build()
            .unwrap();
        assert!(matches!(count(&bad), Err(SweepError::Eval(_))));
    }
}
