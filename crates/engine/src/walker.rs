//! The *walker*: an AST-interpreting evaluation backend whose cost model
//! mirrors CPython's, used to reproduce Fig. 17 of the paper.
//!
//! Like Python, every variable access goes through an associative-array
//! lookup (a `HashMap` keyed by name, with the default collision-resistant
//! hasher — the analog of Python's dict-backed scopes), and loop control can
//! be driven three ways, mirroring the paper's three syntactic variants:
//!
//! * [`LoopStyle::While`] — the loop variable, bound and stride live in the
//!   environment and are re-read/re-written through the hash map on every
//!   iteration (the paper's `while` variant, the slowest);
//! * [`LoopStyle::RangeMaterialized`] — the whole domain is materialized
//!   into a `Vec` up front, like Python 2's `range()` building a list;
//! * [`LoopStyle::RangeLazy`] — the domain is iterated lazily, like
//!   `xrange()` (the fastest Python variant in Fig. 17).

use std::collections::HashMap;
use std::sync::Arc;

use beast_core::error::EvalError;
use beast_core::expr::Bindings;
use beast_core::iterator::Realized;
use beast_core::plan::{Plan, Step};
use beast_core::value::Value;

use crate::point::PointRef;
use crate::stats::{BlockStats, PruneStats};
use crate::visit::Visitor;

/// Loop-control strategy, the experimental variable of Fig. 17.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoopStyle {
    /// Loop control through the environment, like a Python `while` loop.
    While,
    /// Materialize the domain into a list first, like Python 2 `range()`.
    RangeMaterialized,
    /// Iterate the domain lazily, like Python 2 `xrange()`.
    #[default]
    RangeLazy,
}

/// Result of a sweep: pruning statistics (the visitor is returned by value
/// from [`Walker::run`]).
#[derive(Debug)]
pub struct SweepOutcome<V> {
    /// Per-constraint pruning counters.
    pub stats: PruneStats,
    /// Interval block-pruning counters. Always zero for backends without
    /// block pruning (walker, VM) and for the compiled engine with
    /// intervals disabled.
    pub blocks: BlockStats,
    /// Final per-group check order observed by an adaptive-schedule run
    /// (constraint indices, one inner `Vec` per reorder-safe check group).
    /// `None` for backends and modes without online scheduling (walker, VM,
    /// and the compiled engine under declared/static schedules).
    pub schedule: Option<Vec<Vec<u32>>>,
    /// Batched-lane-tier and superinstruction telemetry. All-zero for
    /// backends without the tier (walker, VM) and for the compiled engine
    /// with batching off; replayed cached chunks also report the default
    /// (telemetry-only, like `schedule`).
    pub lanes: crate::stats::LaneStats,
    /// The visitor, holding whatever it accumulated.
    pub visitor: V,
}

/// The interpreting backend.
pub struct Walker<'p> {
    plan: &'p Plan,
    style: LoopStyle,
    point_names: Arc<[Arc<str>]>,
}

impl<'p> Walker<'p> {
    /// Create a walker for a plan with the given loop style.
    pub fn new(plan: &'p Plan, style: LoopStyle) -> Walker<'p> {
        let space = plan.space();
        let mut names: Vec<Arc<str>> = Vec::new();
        names.extend(space.iters().iter().map(|d| d.name.clone()));
        names.extend(space.deriveds().iter().map(|d| d.name.clone()));
        Walker { plan, style, point_names: Arc::from(names.into_boxed_slice()) }
    }

    /// Names reported for visited points (iterators then derived variables).
    pub fn point_names(&self) -> &Arc<[Arc<str>]> {
        &self.point_names
    }

    /// Run the sweep, feeding survivors to the visitor.
    pub fn run<V: Visitor>(&self, visitor: V) -> Result<SweepOutcome<V>, EvalError> {
        let space = self.plan.space();
        let mut env: HashMap<Arc<str>, Value> = space
            .consts()
            .iter()
            .map(|(n, v)| (n.clone(), v.clone()))
            .collect();
        let mut state = RunState {
            stats: PruneStats::new(space.constraints().len()),
            visitor,
        };
        self.exec(0, &mut env, &mut state)?;
        Ok(SweepOutcome {
            stats: state.stats,
            blocks: BlockStats::default(),
            schedule: None,
            lanes: crate::stats::LaneStats::default(),
            visitor: state.visitor,
        })
    }

    fn exec<V: Visitor>(
        &self,
        pos: usize,
        env: &mut HashMap<Arc<str>, Value>,
        state: &mut RunState<V>,
    ) -> Result<(), EvalError> {
        let steps = self.plan.steps();
        if pos >= steps.len() {
            return Ok(());
        }
        let space = self.plan.space();
        match steps[pos] {
            Step::Bind { iter, .. } => {
                let def = &space.iters()[iter];
                let name = &def.name;
                match self.style {
                    LoopStyle::While => {
                        // Model a Python `while`: the control state lives in
                        // the environment and every iteration re-reads and
                        // re-writes it through the hash map.
                        let domain = def.kind.realize(&EnvView(env))?;
                        let (start, stop, step) = match domain {
                            Realized::Range { start, stop, step } => (start, stop, step),
                            Realized::Values(values) => {
                                // Non-range domains fall back to list
                                // iteration; the while-style overhead is
                                // modeled by indexing through the env.
                                let idx_name: Arc<str> =
                                    Arc::from(format!("__idx_{name}").as_str());
                                env.insert(idx_name.clone(), Value::Int(0));
                                loop {
                                    let i = env
                                        .get(&idx_name)
                                        .expect("index var")
                                        .as_int()?;
                                    if i as usize >= values.len() {
                                        break;
                                    }
                                    env.insert(name.clone(), values[i as usize].clone());
                                    self.exec(pos + 1, env, state)?;
                                    let i = env.get(&idx_name).expect("index var").as_int()?;
                                    env.insert(idx_name.clone(), Value::Int(i + 1));
                                }
                                env.remove(&idx_name);
                                env.remove(name);
                                return Ok(());
                            }
                        };
                        if step == 0 {
                            return Ok(());
                        }
                        let stop_name: Arc<str> =
                            Arc::from(format!("__stop_{name}").as_str());
                        let step_name: Arc<str> =
                            Arc::from(format!("__step_{name}").as_str());
                        env.insert(name.clone(), Value::Int(start));
                        env.insert(stop_name.clone(), Value::Int(stop));
                        env.insert(step_name.clone(), Value::Int(step));
                        loop {
                            let v = env.get(name).expect("loop var").as_int()?;
                            let stop = env.get(&stop_name).expect("stop").as_int()?;
                            let in_range = if step > 0 { v < stop } else { v > stop };
                            if !in_range {
                                break;
                            }
                            self.exec(pos + 1, env, state)?;
                            let v = env.get(name).expect("loop var").as_int()?;
                            let st = env.get(&step_name).expect("step").as_int()?;
                            env.insert(name.clone(), Value::Int(v + st));
                        }
                        env.remove(&stop_name);
                        env.remove(&step_name);
                        env.remove(name);
                    }
                    LoopStyle::RangeMaterialized => {
                        let values = def.kind.realize(&EnvView(env))?.to_values();
                        for v in values {
                            env.insert(name.clone(), v);
                            self.exec(pos + 1, env, state)?;
                        }
                        env.remove(name);
                    }
                    LoopStyle::RangeLazy => {
                        let domain = def.kind.realize(&EnvView(env))?;
                        for v in domain.iter() {
                            env.insert(name.clone(), v);
                            self.exec(pos + 1, env, state)?;
                        }
                        env.remove(name);
                    }
                }
                Ok(())
            }
            Step::Define { derived } => {
                let def = &space.deriveds()[derived];
                let value = def.kind.eval(&EnvView(env))?;
                env.insert(def.name.clone(), value);
                self.exec(pos + 1, env, state)
            }
            Step::Check { constraint } => {
                let def = &space.constraints()[constraint];
                let rejected = def.kind.rejects(&EnvView(env))?;
                state.stats.record(constraint, rejected);
                if rejected {
                    // Prune: abandon this tuple; control returns to the
                    // innermost enclosing loop, which continues.
                    return Ok(());
                }
                self.exec(pos + 1, env, state)
            }
            Step::Visit => {
                state.stats.record_survivor();
                let view = PointRef::Env { names: &self.point_names, env: &EnvView(env) };
                state.visitor.visit(&view);
                Ok(())
            }
        }
    }
}

struct RunState<V> {
    stats: PruneStats,
    visitor: V,
}

/// Read-only [`Bindings`] view over the walker's mutable environment.
struct EnvView<'a>(&'a HashMap<Arc<str>, Value>);

impl Bindings for EnvView<'_> {
    fn get(&self, name: &str) -> Option<Value> {
        self.0.get(name).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beast_core::constraint::ConstraintClass;
    use beast_core::expr::var;
    use beast_core::plan::PlanOptions;
    use beast_core::space::Space;

    use crate::visit::{CollectVisitor, CountVisitor};

    fn mini_plan() -> Plan {
        let s = Space::builder("mini")
            .constant("cap", 20)
            .range("a", 1, 5)
            .range_step("b", var("a"), 13, var("a"))
            .derived("ab", var("a") * var("b"))
            .constraint("over", ConstraintClass::Hard, var("ab").gt(var("cap")))
            .build()
            .unwrap();
        Plan::new(&s, PlanOptions::default()).unwrap()
    }

    /// Ground truth by brute force.
    fn expected_survivors() -> Vec<(i64, i64)> {
        let mut out = Vec::new();
        for a in 1..5i64 {
            let mut b = a;
            while b < 13 {
                if a * b <= 20 {
                    out.push((a, b));
                }
                b += a;
            }
        }
        out
    }

    #[test]
    fn all_styles_agree_with_brute_force() {
        let plan = mini_plan();
        let expected = expected_survivors();
        for style in [LoopStyle::While, LoopStyle::RangeMaterialized, LoopStyle::RangeLazy] {
            let walker = Walker::new(&plan, style);
            let out = walker
                .run(CollectVisitor::new(walker.point_names().clone(), 1000))
                .unwrap();
            let got: Vec<(i64, i64)> = out
                .visitor
                .points
                .iter()
                .map(|p| (p.get_int("a"), p.get_int("b")))
                .collect();
            assert_eq!(got, expected, "style {style:?}");
            assert_eq!(out.stats.survivors, expected.len() as u64);
        }
    }

    #[test]
    fn stats_count_evaluations_and_rejections() {
        let plan = mini_plan();
        let walker = Walker::new(&plan, LoopStyle::RangeLazy);
        let out = walker.run(CountVisitor::default()).unwrap();
        // Every (a, b) tuple is checked exactly once: sum over a of |b(a)|.
        let tuples: u64 = (1..5u64).map(|a| 12 / a).sum();
        assert_eq!(out.stats.evaluated[0], tuples);
        assert_eq!(
            out.stats.pruned[0] + out.stats.survivors,
            out.stats.evaluated[0]
        );
    }

    #[test]
    fn derived_values_visible_to_visitor() {
        let plan = mini_plan();
        let walker = Walker::new(&plan, LoopStyle::RangeLazy);
        let out = walker
            .run(CollectVisitor::new(walker.point_names().clone(), 1000))
            .unwrap();
        for p in &out.visitor.points {
            assert_eq!(p.get_int("ab"), p.get_int("a") * p.get_int("b"));
        }
    }

    #[test]
    fn while_style_handles_list_domains() {
        let s = Space::builder("list")
            .list("x", [3i64, 1, 4, 1, 5])
            .build()
            .unwrap();
        let plan = Plan::new(&s, PlanOptions::default()).unwrap();
        let walker = Walker::new(&plan, LoopStyle::While);
        let out = walker
            .run(CollectVisitor::new(walker.point_names().clone(), 10))
            .unwrap();
        let got: Vec<i64> = out.visitor.points.iter().map(|p| p.get_int("x")).collect();
        assert_eq!(got, vec![3, 1, 4, 1, 5]);
    }

    #[test]
    fn closure_iterators_work_in_walker() {
        let s = Space::builder("primes")
            .constant("max", 12)
            .closure_iter("p", &["max"], |env| {
                let max = env.require_int("max").unwrap_or(0);
                let mut known: Vec<i64> = Vec::new();
                let mut n = 1i64;
                std::iter::from_fn(move || loop {
                    n += 1;
                    if n > max {
                        return None;
                    }
                    if known.iter().all(|k| n % k != 0) {
                        known.push(n);
                        return Some(Value::Int(n));
                    }
                })
            })
            .build()
            .unwrap();
        let plan = Plan::new(&s, PlanOptions::default()).unwrap();
        let walker = Walker::new(&plan, LoopStyle::RangeLazy);
        let out = walker
            .run(CollectVisitor::new(walker.point_names().clone(), 10))
            .unwrap();
        let got: Vec<i64> = out.visitor.points.iter().map(|p| p.get_int("p")).collect();
        assert_eq!(got, vec![2, 3, 5, 7, 11]);
    }

    #[test]
    fn negative_step_ranges() {
        let s = Space::builder("down")
            .range_step("x", 4, 0, -1)
            .build()
            .unwrap();
        let plan = Plan::new(&s, PlanOptions::default()).unwrap();
        for style in [LoopStyle::While, LoopStyle::RangeLazy, LoopStyle::RangeMaterialized] {
            let walker = Walker::new(&plan, style);
            let out = walker
                .run(CollectVisitor::new(walker.point_names().clone(), 10))
                .unwrap();
            let got: Vec<i64> = out.visitor.points.iter().map(|p| p.get_int("x")).collect();
            assert_eq!(got, vec![4, 3, 2, 1], "style {style:?}");
        }
    }

    #[test]
    fn unhoisted_plan_gives_same_survivors_more_work() {
        let space = mini_plan();
        let hoisted = Walker::new(&space, LoopStyle::RangeLazy)
            .run(CountVisitor::default())
            .unwrap();
        let un = Plan::new(space.space(), PlanOptions::unhoisted()).unwrap();
        let unhoisted = Walker::new(&un, LoopStyle::RangeLazy)
            .run(CountVisitor::default())
            .unwrap();
        assert_eq!(hoisted.visitor.count, unhoisted.visitor.count);
        assert!(unhoisted.stats.evaluated[0] >= hoisted.stats.evaluated[0]);
    }
}
