//! Visitors: what to do with each surviving point of a sweep.

use std::sync::Arc;

use rand::Rng;

use crate::point::{Point, PointRef};

/// A sink for surviving points. The engines call [`Visitor::visit`] once per
/// tuple that passes all pruning constraints.
pub trait Visitor {
    /// Called for each survivor.
    fn visit(&mut self, point: &PointRef<'_>);

    /// Merge another visitor of the same type into this one (used when
    /// joining per-thread visitors after a parallel sweep).
    fn merge(&mut self, other: Self)
    where
        Self: Sized;
}

/// Counts survivors; the cheapest visitor, used by all throughput benchmarks.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CountVisitor {
    /// Number of surviving points seen.
    pub count: u64,
}

impl Visitor for CountVisitor {
    #[inline]
    fn visit(&mut self, _point: &PointRef<'_>) {
        self.count += 1;
    }

    fn merge(&mut self, other: Self) {
        self.count += other.count;
    }
}

/// Collects survivors into owned [`Point`]s, up to a cap (spaces can have
/// millions of survivors; an unbounded collector would exhaust memory).
#[derive(Debug, Clone)]
pub struct CollectVisitor {
    names: Arc<[Arc<str>]>,
    /// Collected points, at most `cap`.
    pub points: Vec<Point>,
    /// Total survivors seen (may exceed `points.len()`).
    pub total: u64,
    cap: usize,
}

impl CollectVisitor {
    /// Collect at most `cap` points over the given variable names.
    pub fn new(names: Arc<[Arc<str>]>, cap: usize) -> CollectVisitor {
        CollectVisitor { names, points: Vec::new(), total: 0, cap }
    }

    /// True if the cap was hit and some survivors were dropped.
    pub fn truncated(&self) -> bool {
        self.total > self.points.len() as u64
    }
}

impl Visitor for CollectVisitor {
    fn visit(&mut self, point: &PointRef<'_>) {
        self.total += 1;
        if self.points.len() < self.cap {
            self.points.push(point.to_point(&self.names));
        }
    }

    fn merge(&mut self, other: Self) {
        self.total += other.total;
        for p in other.points {
            if self.points.len() >= self.cap {
                break;
            }
            self.points.push(p);
        }
    }
}

/// Order-sensitive FNV fingerprint of the survivor stream: each point is
/// hashed FNV-1a over its values, and the per-point hashes are chained with
/// a polynomial rolling hash. Two sweeps have equal fingerprints iff they
/// emitted the same points in the same order (modulo hash collisions), which
/// is exactly the determinism contract of the parallel driver — so this is
/// the visitor the fault-tolerance and resume tests (and `repro sweep`)
/// compare runs with.
///
/// Mergeable out of one pass: `H(A ‖ B) = H(A)·pᴸᴮ + H(B)` (wrapping), so
/// chunk-local fingerprints merged in chunk order equal the serial
/// fingerprint bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FingerprintVisitor {
    /// Rolling hash of the emission sequence so far.
    pub hash: u64,
    /// `p^count` (wrapping): the factor a following segment's hash is
    /// shifted by when merging.
    pub pow: u64,
    /// Number of points hashed.
    pub count: u64,
}

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime; also the (odd) rolling-hash base.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for FingerprintVisitor {
    fn default() -> Self {
        FingerprintVisitor { hash: 0, pow: 1, count: 0 }
    }
}

impl FingerprintVisitor {
    /// Fresh, empty fingerprint.
    pub fn new() -> Self {
        Self::default()
    }

    fn hash_point(point: &PointRef<'_>) -> u64 {
        let mut h = FNV_OFFSET;
        let mut byte = |b: u8| {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        };
        for i in 0..point.names().len() {
            match point.value(i) {
                beast_core::value::Value::Int(x) => {
                    for b in x.to_le_bytes() {
                        byte(b);
                    }
                }
                other => {
                    for b in other.to_string().bytes() {
                        byte(b);
                    }
                }
            }
        }
        h
    }
}

impl Visitor for FingerprintVisitor {
    fn visit(&mut self, point: &PointRef<'_>) {
        let h = Self::hash_point(point);
        self.hash = self.hash.wrapping_mul(FNV_PRIME).wrapping_add(h);
        self.pow = self.pow.wrapping_mul(FNV_PRIME);
        self.count += 1;
    }

    fn merge(&mut self, other: Self) {
        self.hash = self.hash.wrapping_mul(other.pow).wrapping_add(other.hash);
        self.pow = self.pow.wrapping_mul(other.pow);
        self.count += other.count;
    }
}

/// Keeps the best `k` survivors under a user score (higher is better) — the
/// autotuning selector: score with a performance model, keep the candidates
/// worth actually benchmarking.
pub struct BestK {
    names: Arc<[Arc<str>]>,
    k: usize,
    score: Arc<dyn Fn(&PointRef<'_>) -> f64 + Send + Sync>,
    /// (score, point) pairs, kept sorted descending by score.
    pub best: Vec<(f64, Point)>,
    /// Total survivors seen.
    pub total: u64,
}

impl BestK {
    /// Keep the `k` highest-scoring points.
    pub fn new(
        names: Arc<[Arc<str>]>,
        k: usize,
        score: impl Fn(&PointRef<'_>) -> f64 + Send + Sync + 'static,
    ) -> BestK {
        BestK { names, k, score: Arc::new(score), best: Vec::new(), total: 0 }
    }

    /// The single best point, if any survivor was seen.
    pub fn best_point(&self) -> Option<(f64, &Point)> {
        self.best.first().map(|(s, p)| (*s, p))
    }

    fn insert(&mut self, score: f64, point: Point) {
        let pos = self
            .best
            .partition_point(|(s, _)| *s >= score);
        if pos < self.k {
            self.best.insert(pos, (score, point));
            self.best.truncate(self.k);
        }
    }

    /// Clone the configuration (not the collected state) for a worker thread.
    pub fn fresh(&self) -> BestK {
        BestK {
            names: Arc::clone(&self.names),
            k: self.k,
            score: Arc::clone(&self.score),
            best: Vec::new(),
            total: 0,
        }
    }
}

impl Visitor for BestK {
    fn visit(&mut self, point: &PointRef<'_>) {
        self.total += 1;
        let s = (self.score)(point);
        if self.best.len() < self.k
            || s > self.best.last().map(|(x, _)| *x).unwrap_or(f64::NEG_INFINITY)
        {
            let p = point.to_point(&self.names);
            self.insert(s, p);
        }
    }

    fn merge(&mut self, other: Self) {
        self.total += other.total;
        for (s, p) in other.best {
            self.insert(s, p);
        }
    }
}

impl std::fmt::Debug for BestK {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BestK")
            .field("k", &self.k)
            .field("total", &self.total)
            .field("best_len", &self.best.len())
            .finish()
    }
}

/// Reservoir sampler: a uniform random sample of `k` survivors, useful for
/// inspecting what a pruning configuration lets through.
pub struct Reservoir<R: Rng> {
    names: Arc<[Arc<str>]>,
    k: usize,
    /// The sample.
    pub sample: Vec<Point>,
    /// Total survivors seen.
    pub total: u64,
    rng: R,
}

impl<R: Rng> Reservoir<R> {
    /// Sample `k` points uniformly using the given RNG.
    pub fn new(names: Arc<[Arc<str>]>, k: usize, rng: R) -> Reservoir<R> {
        Reservoir { names, k, sample: Vec::new(), total: 0, rng }
    }
}

impl<R: Rng> Visitor for Reservoir<R> {
    fn visit(&mut self, point: &PointRef<'_>) {
        self.total += 1;
        if self.sample.len() < self.k {
            self.sample.push(point.to_point(&self.names));
        } else {
            let j = self.rng.gen_range(0..self.total);
            if (j as usize) < self.k {
                self.sample[j as usize] = point.to_point(&self.names);
            }
        }
    }

    fn merge(&mut self, other: Self) {
        // Cheap approximate merge: pool and re-trim. Statistically exact
        // merging would weight by totals; for inspection purposes pooling is
        // sufficient and documented.
        self.total += other.total;
        self.sample.extend(other.sample);
        while self.sample.len() > self.k {
            let i = self.rng.gen_range(0..self.sample.len());
            self.sample.swap_remove(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beast_core::value::Value;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn names() -> Arc<[Arc<str>]> {
        Arc::from(vec![Arc::<str>::from("x")].into_boxed_slice())
    }

    fn visit_ints<V: Visitor>(v: &mut V, ints: &[i64]) {
        let ns = names();
        for &i in ints {
            let slots = [i];
            v.visit(&PointRef::Slots { names: &ns, slots: &slots });
        }
    }

    #[test]
    fn count_visitor_counts_and_merges() {
        let mut a = CountVisitor::default();
        visit_ints(&mut a, &[1, 2, 3]);
        let mut b = CountVisitor::default();
        visit_ints(&mut b, &[4]);
        a.merge(b);
        assert_eq!(a.count, 4);
    }

    #[test]
    fn collect_visitor_caps() {
        let mut c = CollectVisitor::new(names(), 2);
        visit_ints(&mut c, &[1, 2, 3, 4]);
        assert_eq!(c.points.len(), 2);
        assert_eq!(c.total, 4);
        assert!(c.truncated());
        assert_eq!(c.points[0].get("x"), Some(&Value::Int(1)));
    }

    #[test]
    fn best_k_keeps_highest() {
        let mut b = BestK::new(names(), 2, |p| p.get("x").unwrap().as_int().unwrap() as f64);
        visit_ints(&mut b, &[5, 1, 9, 3, 7]);
        let scores: Vec<f64> = b.best.iter().map(|(s, _)| *s).collect();
        assert_eq!(scores, vec![9.0, 7.0]);
        assert_eq!(b.best_point().unwrap().0, 9.0);
        assert_eq!(b.total, 5);
    }

    #[test]
    fn best_k_merge() {
        let mut a = BestK::new(names(), 3, |p| p.get("x").unwrap().as_int().unwrap() as f64);
        visit_ints(&mut a, &[5, 1]);
        let mut b = a.fresh();
        visit_ints(&mut b, &[9, 2, 7]);
        a.merge(b);
        let scores: Vec<f64> = a.best.iter().map(|(s, _)| *s).collect();
        assert_eq!(scores, vec![9.0, 7.0, 5.0]);
        assert_eq!(a.total, 5);
    }

    #[test]
    fn fingerprint_merge_equals_serial() {
        let mut serial = FingerprintVisitor::new();
        visit_ints(&mut serial, &[1, 2, 3, 4, 5]);
        let mut a = FingerprintVisitor::new();
        visit_ints(&mut a, &[1, 2]);
        let mut b = FingerprintVisitor::new();
        visit_ints(&mut b, &[3, 4, 5]);
        a.merge(b);
        assert_eq!(a, serial);
        // Order sensitivity: swapping two points changes the hash.
        let mut swapped = FingerprintVisitor::new();
        visit_ints(&mut swapped, &[2, 1, 3, 4, 5]);
        assert_ne!(swapped.hash, serial.hash);
        assert_eq!(serial.count, 5);
    }

    #[test]
    fn reservoir_is_bounded_and_unbiased_enough() {
        let rng = StdRng::seed_from_u64(42);
        let mut r = Reservoir::new(names(), 10, rng);
        visit_ints(&mut r, &(0..1000).collect::<Vec<i64>>());
        assert_eq!(r.sample.len(), 10);
        assert_eq!(r.total, 1000);
        // All sampled values must come from the visited set.
        assert!(r.sample.iter().all(|p| (0..1000).contains(&p.get_int("x"))));
    }
}
