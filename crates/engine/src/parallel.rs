//! Multithreaded sweep evaluation — the paper's Section X-B observation that
//! parallelization "can be very beneficial at the outermost loop nests,
//! close to level 0" — plus the fault-tolerant supervisor that keeps a
//! multi-hour sweep alive across bad points, panicking chunks, deadlines and
//! process restarts.
//!
//! # Dynamic scheduling
//!
//! The driver realizes the outermost loop's domain once (level-0 iterators
//! depend only on constants by construction) and splits it into chunks that
//! are deliberately *finer* than one-per-thread. Workers then pull chunks
//! from a shared [`AtomicUsize`] cursor as they finish — a work-stealing-style
//! dynamic schedule with a single global queue.
//!
//! Static one-chunk-per-thread splitting (what this module did originally)
//! assumes the cost below each level-0 value is uniform. DAG-hoisted pruning
//! makes it anything but: a level-0 constraint can cut an entire subtree
//! after one comparison, while a neighbouring value fans out into millions of
//! tuples, so one unlucky thread ends up serializing the sweep. With dynamic
//! chunk pulling the fast threads simply take more chunks; the
//! [`SweepReport::imbalance`](crate::telemetry::SweepReport::imbalance)
//! metric makes the difference observable.
//!
//! Chunk granularity adapts to the shape of the plan via
//! [`LoweredPlan::static_fanout_below_outer`]: when every inner domain is
//! statically sized, subtree costs are near-uniform and a modest number of
//! chunks per thread suffices; when inner domains depend on outer variables
//! (the skewed regime), the driver cuts finer chunks. Callers that need a
//! *thread-invariant* grid (fault injection, checkpoint/resume) pin it with
//! [`ParallelOptions::chunk_count`].
//!
//! # Fault supervision
//!
//! [`ParallelOptions::fault_policy`] decides what an
//! [`EvalError`] or a chunk panic does to the
//! sweep: abort it (the default, with panics surfaced as structured
//! [`SweepError::WorkerPanic`] instead of poisoning the orchestrator), skip
//! the failing point, quarantine the chunk, or retry the chunk with backoff.
//! Every recovered fault becomes a [`FaultRecord`] merged in chunk order and
//! surfaced in the [`SweepReport`]. Panics are caught per chunk attempt with
//! [`std::panic::catch_unwind`]; per-chunk state is private, so a poisoned
//! chunk never corrupts the merged outcome.
//!
//! Cooperative cancellation ([`ParallelOptions::cancel`]) and wall-clock
//! deadlines ([`ParallelOptions::deadline`]) are polled both between chunks
//! and *inside* chunks (every few thousand loop advances), so stopping
//! latency is bounded by the poll interval, not by chunk length. A stopped
//! sweep returns the merged chunk-order prefix with
//! [`SweepReport::partial`] set — resumable when checkpointing is on (see
//! [`crate::checkpoint`]).
//!
//! # Determinism contract
//!
//! For a given plan, [`run_parallel`] and [`run_parallel_report`] produce
//! results **bit-for-bit identical to the serial [`Compiled::run`] and to
//! themselves at every thread count**:
//!
//! * each chunk is evaluated with a private visitor and statistics block
//!   (no shared mutable state on the hot path);
//! * per-chunk results are merged *in chunk order* — which worker happened
//!   to execute a chunk never affects the merged outcome;
//! * chunk boundaries only partition the level-0 domain, so concatenating
//!   chunk results in order reproduces the serial visit order exactly;
//! * preamble (constants-only) constraints are recorded once, not per chunk.
//!
//! Faults extend the contract rather than break it: injector decisions and
//! recovery actions are keyed on `(chunk, point ordinal, attempt)` — never on
//! thread identity or timing — so with a pinned chunk grid the fault records,
//! the surviving-point sequence and the merged statistics are identical at
//! any thread count, and an interrupted-then-resumed sweep is bit-identical
//! to an uninterrupted one. Only the *telemetry* (worker timings,
//! chunks-per-worker) varies run to run. This is enforced by
//! `tests/determinism.rs` and `tests/fault_tolerance.rs`.
//!
//! The same contract is what makes chunk-level *memoization* sound: the
//! supervisor exposes an internal `ChunkMemo` hook consulted at each chunk
//! boundary, and because a stored fault-free outcome is folded exactly where
//! evaluation would have folded, a cache hit cannot change the merge. The
//! fingerprint-keyed cache in [`crate::service::cache`] builds on this;
//! per-run hit/miss traffic lands in
//! [`SweepReport::cache_hits`]/[`SweepReport::cache_misses`].

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use beast_core::error::EvalError;
use beast_core::ir::LoweredPlan;

use crate::compiled::{ChunkCtx, Compiled, EngineOptions, EngineTier};
use crate::fault::{
    CancelProbe, CancelToken, FaultAction, FaultInjector, FaultKind, FaultPolicy, FaultRecord,
};
use crate::native::NativeContext;
use crate::stats::{BlockStats, FaultCounters, LaneStats, PruneStats};
use crate::sweep::SweepError;
use crate::telemetry::{SweepProgress, SweepReport, WorkerTelemetry};
use crate::visit::Visitor;
use crate::walker::SweepOutcome;

/// Chunks per thread when inner loop domains are statically sized (near-
/// uniform subtree cost; chunks mainly serve scheduling slack).
const CHUNKS_PER_THREAD_UNIFORM: usize = 8;

/// Chunks per thread when some inner domain depends on outer variables or
/// is opaque (skewed subtree cost; fine chunks are what balances the load).
const CHUNKS_PER_THREAD_SKEWED: usize = 32;

/// Configuration for [`run_parallel_report`].
#[derive(Debug, Clone, Default)]
pub struct ParallelOptions {
    /// Worker threads (values below 1 are treated as 1).
    pub threads: usize,
    /// Scheduler chunks per thread; 0 picks automatically from the plan's
    /// static fanout (fine chunks for skewed spaces, coarser for uniform).
    /// Ignored when [`ParallelOptions::chunk_count`] is set.
    pub chunks_per_thread: usize,
    /// Explicit total number of scheduler chunks, independent of the thread
    /// count (0 = derive from `threads × chunks_per_thread`). Fault
    /// injection, checkpointing and the cross-thread-count determinism
    /// assertions all require a pinned grid, because chunk indices key both
    /// injector decisions and the completed-chunk prefix.
    pub chunk_count: usize,
    /// Optional shared progress counters, bumped once per completed chunk.
    pub progress: Option<Arc<SweepProgress>>,
    /// Compiled-engine options (interval block pruning is on by default;
    /// results are identical either way, see the determinism contract).
    pub engine: EngineOptions,
    /// What an evaluation error or chunk panic does to the sweep.
    pub fault_policy: FaultPolicy,
    /// Optional deterministic fault injector (tests, CI, chaos drills).
    pub injector: Option<FaultInjector>,
    /// Optional cooperative cancellation token shared with the caller.
    pub cancel: Option<Arc<CancelToken>>,
    /// Optional wall-clock budget; when it expires the sweep degrades to a
    /// partial result exactly as if cancelled.
    pub deadline: Option<Duration>,
    /// Stop pulling new chunks after this many (0 = no limit). This is the
    /// deterministic "kill the process after K chunks" knob used by the
    /// checkpoint/resume tests and the CI smoke job; unlike a deadline it
    /// always stops at a chunk boundary.
    pub stop_after_chunks: usize,
}

impl ParallelOptions {
    /// Options for `threads` workers with automatic chunk sizing.
    pub fn new(threads: usize) -> ParallelOptions {
        ParallelOptions { threads, ..ParallelOptions::default() }
    }
}

/// Run a lowered plan across `threads` worker threads.
///
/// `make_visitor` constructs one private visitor per scheduler chunk; the
/// per-chunk results are merged in chunk order, so the merged visitor sees
/// points in exactly the serial order regardless of thread count or
/// scheduling — see the module-level determinism contract.
///
/// With `threads == 1` this degenerates to a serial run with identical
/// statistics to [`Compiled::run`].
pub fn run_parallel<V, F>(
    lp: &LoweredPlan,
    threads: usize,
    make_visitor: F,
) -> Result<SweepOutcome<V>, SweepError>
where
    V: Visitor + Send,
    F: Fn() -> V + Sync,
{
    run_parallel_report(lp, &ParallelOptions::new(threads), make_visitor)
        .map(|(outcome, _)| outcome)
}

/// [`run_parallel`] plus a [`SweepReport`] with the pruning funnel,
/// per-worker timings, scheduler telemetry and fault records.
///
/// The sweep outcome obeys the module-level determinism contract; only the
/// report's timing fields vary between runs.
pub fn run_parallel_report<V, F>(
    lp: &LoweredPlan,
    opts: &ParallelOptions,
    make_visitor: F,
) -> Result<(SweepOutcome<V>, SweepReport), SweepError>
where
    V: Visitor + Send,
    F: Fn() -> V + Sync,
{
    run_supervised(lp, opts, make_visitor, None, None, None)
}

/// Merged state an interrupted sweep hands back to [`run_supervised`] so the
/// resumed run completes only the missing chunk suffix.
pub(crate) struct ResumeSeed<V> {
    /// Level-0 domain length the interrupted run saw; re-validated against
    /// the freshly realized domain so a checkpoint from a different space
    /// shape fails loudly instead of merging nonsense.
    pub outer_len: usize,
    /// Chunk length of the interrupted run — pinned, because chunk indices
    /// key the completed prefix and the injector.
    pub chunk_len: usize,
    /// First chunk index not yet folded (the completed prefix is `0..next`).
    pub next: usize,
    /// Merged statistics of the completed prefix (preamble included).
    pub stats: PruneStats,
    /// Merged block-pruning counters of the completed prefix.
    pub blocks: BlockStats,
    /// Fault records of the completed prefix.
    pub faults: Vec<FaultRecord>,
    /// Merged visitor state of the completed prefix.
    pub visitor: V,
}

/// A point-in-time view of the merged chunk-order prefix, handed to the
/// checkpoint writer.
pub(crate) struct CkSnapshot<'a, V> {
    pub outer_len: usize,
    pub chunk_len: usize,
    pub chunks: usize,
    pub next: usize,
    pub stats: &'a PruneStats,
    pub blocks: &'a BlockStats,
    pub faults: &'a [FaultRecord],
    pub visitor: &'a V,
}

/// Where and how often to persist checkpoints during a supervised run.
pub(crate) struct CkSink<'a, V> {
    /// Persist after this many newly folded chunks (and always at the end).
    pub every: usize,
    /// Writer; failures abort the sweep with [`SweepError::Checkpoint`].
    #[allow(clippy::type_complexity)]
    pub write: &'a (dyn Fn(&CkSnapshot<'_, V>) -> Result<(), String> + Sync),
}

/// Sub-sweep memo consulted by [`run_supervised`] at every chunk boundary.
///
/// A hit replaces chunk evaluation entirely: the returned outcome is folded
/// exactly where a freshly evaluated one would be, so the merged result is
/// bit-identical as long as implementations only return outcomes previously
/// stored for the *same* `(chunk index, level-0 values)` under the same plan
/// — the contract `crate::service::cache` enforces with its structural-hash
/// key. Only fault-free chunks are offered to [`ChunkMemo::store`]; a
/// skipped-point or quarantined chunk must never be replayed from cache
/// because its outcome depends on the fault policy, not just the plan.
pub(crate) trait ChunkMemo<V>: Sync {
    /// Return the memoized outcome for `chunk` covering `values`, if any.
    fn lookup(&self, chunk: usize, values: &[i64]) -> Option<SweepOutcome<V>>;
    /// Offer a freshly evaluated, fault-free chunk outcome for storage.
    fn store(&self, chunk: usize, values: &[i64], outcome: &SweepOutcome<V>);
}

/// What one finished chunk contributes to the merge: its outcome (`None`
/// when the chunk was quarantined) plus the faults recorded while running it.
pub(crate) struct ChunkDone<V> {
    pub(crate) outcome: Option<SweepOutcome<V>>,
    pub(crate) faults: Vec<FaultRecord>,
}

/// Chunk-order prefix folder shared by all workers behind a mutex.
///
/// Chunks finish out of order; the collector parks them in `pending` and
/// folds the contiguous prefix `0..next` as it becomes available. Folding —
/// not chunk completion — is the unit of progress accounting, which makes
/// the `tuples_decided` counter idempotent under retries: a chunk index is
/// folded exactly once no matter how many attempts it took.
pub(crate) struct Collector<V> {
    pub(crate) next: usize,
    pub(crate) pending: BTreeMap<usize, ChunkDone<V>>,
    pub(crate) stats: PruneStats,
    pub(crate) blocks: BlockStats,
    pub(crate) lanes: LaneStats,
    pub(crate) faults: Vec<FaultRecord>,
    pub(crate) visitor: Option<V>,
    pub(crate) schedule: Option<Vec<Vec<u32>>>,
    pub(crate) outer_len: usize,
    pub(crate) chunk_len: usize,
    pub(crate) chunks: usize,
    pub(crate) since_save: usize,
}

impl<V: Visitor> Collector<V> {
    /// Park `done` under chunk index `i`, fold the contiguous prefix, and
    /// persist a checkpoint when the sink interval elapsed.
    pub(crate) fn add(
        &mut self,
        i: usize,
        done: ChunkDone<V>,
        progress: Option<&Arc<SweepProgress>>,
        sink: Option<&CkSink<'_, V>>,
    ) -> Result<(), String> {
        self.pending.insert(i, done);
        let mut advanced = false;
        while let Some(done) = self.pending.remove(&self.next) {
            if let Some(out) = done.outcome {
                if self.next == 0 {
                    self.schedule = out.schedule;
                }
                self.stats.merge(&out.stats);
                self.blocks.merge(&out.blocks);
                self.lanes.merge(&out.lanes);
                if let Some(progress) = progress {
                    progress.tuples_decided.fetch_add(
                        out.stats.survivors + out.stats.total_pruned(),
                        Ordering::Relaxed,
                    );
                }
                self.visitor = Some(match self.visitor.take() {
                    None => out.visitor,
                    Some(mut acc) => {
                        acc.merge(out.visitor);
                        acc
                    }
                });
            }
            self.faults.extend(done.faults);
            if let Some(progress) = progress {
                progress.chunks_done.fetch_add(1, Ordering::Relaxed);
            }
            self.next += 1;
            self.since_save += 1;
            advanced = true;
        }
        if advanced {
            if let Some(sink) = sink {
                if self.since_save >= sink.every.max(1) {
                    self.save(sink)?;
                }
            }
        }
        Ok(())
    }

    pub(crate) fn save(&mut self, sink: &CkSink<'_, V>) -> Result<(), String> {
        // The visitor may be `None` before any chunk folded; persist only
        // once there is real progress (a fresh run needs no checkpoint).
        if let Some(visitor) = &self.visitor {
            (sink.write)(&CkSnapshot {
                outer_len: self.outer_len,
                chunk_len: self.chunk_len,
                chunks: self.chunks,
                next: self.next,
                stats: &self.stats,
                blocks: &self.blocks,
                faults: &self.faults,
                visitor,
            })?;
            self.since_save = 0;
        }
        Ok(())
    }
}

/// Full-control sweep driver behind [`run_parallel_report`] and
/// [`crate::checkpoint::run_checkpointed`]: dynamic chunk scheduling with
/// fault policies, panic isolation, cancellation/deadline, resume seeding
/// and periodic checkpoint persistence.
pub(crate) fn run_supervised<V, F>(
    lp: &LoweredPlan,
    opts: &ParallelOptions,
    make_visitor: F,
    resume: Option<ResumeSeed<V>>,
    sink: Option<&CkSink<'_, V>>,
    memo: Option<&dyn ChunkMemo<V>>,
) -> Result<(SweepOutcome<V>, SweepReport), SweepError>
where
    V: Visitor + Send,
    F: Fn() -> V + Sync,
{
    let threads = opts.threads.max(1);
    let t_start = Instant::now();
    if opts.engine.engine == EngineTier::Walker {
        return Err(SweepError::Config(
            "the walker tier is serial-only; use the compiled or native tier \
             for parallel sweeps"
                .to_string(),
        ));
    }
    // Runtime-native tier: lower the plan to a C chunk worker and compile it
    // once up front. Preparation failure (no compiler, opaque steps, compile
    // error) silently falls back to the in-process engine — the tier is an
    // accelerator, never a requirement. Fault injection stays in-process:
    // injected faults are keyed to evaluation sites the worker binary cannot
    // observe.
    let native: Option<NativeContext> =
        if opts.engine.engine == EngineTier::Native && opts.injector.is_none() {
            NativeContext::prepare(lp, &opts.engine).ok()
        } else {
            None
        };
    // Native workers account per point in declared order (no block pruning,
    // no reordering), so when the tier is active the in-process engine that
    // evaluates fallback chunks is normalized to the same accounting —
    // otherwise a fallback chunk's PruneStats would diverge from its
    // worker-evaluated twin. Survivors, order and fingerprints are identical
    // under any options; only the evaluated/pruned split is at stake.
    let engine_opts = if native.is_some() {
        EngineOptions {
            intervals: false,
            congruence: false,
            schedule: Default::default(),
            ..opts.engine
        }
    } else {
        opts.engine
    };
    let compiled = Compiled::with_options(lp.clone(), engine_opts);
    compiled.lint_denied()?;
    let space = lp.plan.space();
    let policy = opts.fault_policy;

    let resumed_at = resume.as_ref().map(|r| r.next);
    let (mut stats, seed_blocks, seed_faults, seed_visitor, pinned) = match resume {
        Some(seed) => (
            seed.stats,
            seed.blocks,
            seed.faults,
            Some(seed.visitor),
            Some((seed.chunk_len, seed.outer_len)),
        ),
        None => (
            PruneStats::new(space.constraints().len()),
            BlockStats::default(),
            Vec::new(),
            None,
            None,
        ),
    };

    // Preamble constraints (constants only) run once per sweep. A resumed
    // run's seed statistics already include them, so it re-executes the
    // preamble (errors still surface) but records into scratch counters.
    let preamble_ok = if resumed_at.is_some() {
        let mut scratch = PruneStats::new(space.constraints().len());
        compiled.preamble_record(&mut scratch).map_err(SweepError::Eval)?
    } else {
        compiled.preamble_record(&mut stats).map_err(SweepError::Eval)?
    };

    let finish_early = |stats: PruneStats, blocks: BlockStats, faults: Vec<FaultRecord>| {
        let mut report = SweepReport::new(
            space,
            &stats,
            &blocks,
            threads,
            0,
            0,
            0,
            t_start.elapsed(),
            vec![],
            compiled.schedule_telemetry(None),
            compiled.lint_summary(),
        );
        report.resumed_at = resumed_at;
        report.fault_policy = policy.name();
        report.fault_counters = FaultCounters::from_records(&faults);
        report.faults = faults;
        report.native = native.as_ref().map(|n| n.stats());
        report
    };

    if !preamble_ok {
        let report = finish_early(stats.clone(), seed_blocks, seed_faults.clone());
        return Ok((
            SweepOutcome {
                stats,
                blocks: seed_blocks,
                lanes: LaneStats::default(),
                schedule: None,
                visitor: seed_visitor.unwrap_or_else(&make_visitor),
            },
            report,
        ));
    }

    let outer = compiled.outer_domain().map_err(SweepError::Eval)?;
    if outer.is_empty() {
        let report = finish_early(stats.clone(), seed_blocks, seed_faults.clone());
        return Ok((
            SweepOutcome {
                stats,
                blocks: seed_blocks,
                lanes: LaneStats::default(),
                schedule: None,
                visitor: seed_visitor.unwrap_or_else(&make_visitor),
            },
            report,
        ));
    }

    if let Some((_, expected_outer)) = pinned {
        if outer.len() != expected_outer {
            return Err(SweepError::Checkpoint(format!(
                "checkpointed level-0 domain has {expected_outer} value(s) but the \
                 realized domain has {}; the space changed since the checkpoint",
                outer.len()
            )));
        }
    }
    let chunk_len = pinned.map(|(len, _)| len).unwrap_or_else(|| {
        chunk_len_for(lp, outer.len(), threads, opts.chunks_per_thread, opts.chunk_count)
    });
    let chunks: Vec<&[i64]> = outer.chunks(chunk_len.max(1)).collect();
    let start = resumed_at.unwrap_or(0).min(chunks.len());
    let limit = if opts.stop_after_chunks > 0 {
        (start + opts.stop_after_chunks).min(chunks.len())
    } else {
        chunks.len()
    };
    if let Some(progress) = &opts.progress {
        progress.chunks_total.store(chunks.len(), Ordering::Relaxed);
        progress.chunks_done.store(start, Ordering::Relaxed);
        progress
            .tuples_decided
            .store(stats.survivors + stats.total_pruned(), Ordering::Relaxed);
    }

    let probe = CancelProbe::new(opts.cancel.clone(), opts.deadline.map(|d| t_start + d));
    let n_workers = threads.min((limit - start).max(1));
    let cursor = AtomicUsize::new(start);
    let memo_hits = AtomicU64::new(0);
    let memo_misses = AtomicU64::new(0);
    let abort = AtomicBool::new(false);
    let first_error: Mutex<Option<SweepError>> = Mutex::new(None);
    let collector = Mutex::new(Collector {
        next: start,
        pending: BTreeMap::new(),
        stats,
        blocks: seed_blocks,
        // Lane telemetry is not checkpointed (it is observational only, like
        // the schedule); a resumed run reports counters for its own chunks.
        lanes: LaneStats::default(),
        faults: seed_faults,
        visitor: seed_visitor,
        schedule: None,
        outer_len: outer.len(),
        chunk_len,
        chunks: chunks.len(),
        since_save: 0,
    });

    let fail = |err: SweepError| {
        let mut slot = first_error.lock().unwrap();
        if slot.is_none() {
            *slot = Some(err);
        }
        abort.store(true, Ordering::Relaxed);
    };

    // Each worker drains the shared cursor; finished chunks are folded in
    // chunk-index order by the collector, so the merged result is
    // independent of the race for chunks. Errors and panics are resolved
    // per the fault policy right here, at the chunk boundary.
    let worker_loop = |worker: usize| -> WorkerTelemetry {
        let mut telemetry = WorkerTelemetry {
            worker,
            chunks: 0,
            busy: Duration::ZERO,
            evaluated: 0,
            survivors: 0,
        };
        let (retry_max, backoff_ms) = match policy {
            FaultPolicy::Retry { max, backoff_ms } => (max, backoff_ms),
            _ => (0, 0),
        };
        'pull: loop {
            if abort.load(Ordering::Relaxed) || probe.cancelled() {
                break;
            }
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= limit {
                break;
            }
            let t0 = Instant::now();
            let mut chunk_faults: Vec<FaultRecord> = Vec::new();
            let mut outcome: Option<SweepOutcome<V>> = None;
            // Sub-sweep cache: a hit replaces evaluation of this chunk with
            // the memoized outcome, folded exactly where a fresh one would
            // be — the merge path cannot tell the difference.
            if let Some(memo) = memo {
                if let Some(cached) = memo.lookup(i, chunks[i]) {
                    memo_hits.fetch_add(1, Ordering::Relaxed);
                    telemetry.busy += t0.elapsed();
                    telemetry.chunks += 1;
                    // Replayed work still counts toward the merged totals,
                    // so worker sums keep matching the report.
                    telemetry.evaluated += cached.stats.evaluated.iter().sum::<u64>();
                    telemetry.survivors += cached.stats.survivors;
                    let folded = collector.lock().unwrap().add(
                        i,
                        ChunkDone { outcome: Some(cached), faults: Vec::new() },
                        opts.progress.as_ref(),
                        sink,
                    );
                    if let Err(msg) = folded {
                        fail(SweepError::Checkpoint(msg));
                        break;
                    }
                    continue 'pull;
                }
                memo_misses.fetch_add(1, Ordering::Relaxed);
            }
            // Native tier: dispatch the chunk to a worker process. Any
            // worker-side failure (spawn, crash, protocol violation) is
            // counted and falls through to the in-process path below — the
            // fallback re-evaluates from scratch, and no visit happened yet
            // because the worker's output is fully validated before replay.
            if let Some(nat) = &native {
                match nat.run_chunk(chunks[i], compiled.point_names(), make_visitor()) {
                    Ok(out) => {
                        if let Some(memo) = memo {
                            memo.store(i, chunks[i], &out);
                        }
                        telemetry.busy += t0.elapsed();
                        telemetry.chunks += 1;
                        telemetry.evaluated += out.stats.evaluated.iter().sum::<u64>();
                        telemetry.survivors += out.stats.survivors;
                        let folded = collector.lock().unwrap().add(
                            i,
                            ChunkDone { outcome: Some(out), faults: Vec::new() },
                            opts.progress.as_ref(),
                            sink,
                        );
                        if let Err(msg) = folded {
                            fail(SweepError::Checkpoint(msg));
                            break;
                        }
                        continue 'pull;
                    }
                    Err(_) => nat.note_fallback(),
                }
            }
            for attempt in 0..=retry_max {
                if attempt > 0 && backoff_ms > 0 {
                    std::thread::sleep(Duration::from_millis(backoff_ms));
                }
                let ctx = ChunkCtx {
                    policy,
                    injector: opts.injector.as_ref(),
                    chunk: i,
                    attempt,
                    cancel: Some(&probe),
                };
                let attempt_result = catch_unwind(AssertUnwindSafe(|| {
                    if let Some(inj) = &opts.injector {
                        if inj.chunk_panic(i, attempt) {
                            panic!("injected panic (chunk {i})");
                        }
                    }
                    compiled.run_outer_chunk_supervised(chunks[i], make_visitor(), &ctx)
                }));
                let (kind, error, site, bindings) = match attempt_result {
                    Ok(Ok(run)) => {
                        chunk_faults.extend(run.faults);
                        outcome = Some(run.outcome);
                        break;
                    }
                    Ok(Err(EvalError::Cancelled)) => {
                        // Cancel/deadline tripped mid-chunk: drop the chunk
                        // entirely (it will be re-run on resume) and stop.
                        telemetry.busy += t0.elapsed();
                        break 'pull;
                    }
                    Ok(Err(e)) => {
                        if policy == FaultPolicy::Abort {
                            fail(SweepError::Eval(e));
                            telemetry.busy += t0.elapsed();
                            break 'pull;
                        }
                        let (site, bindings) = match e.point_context() {
                            Some(ctx) => (ctx.site.clone(), ctx.bindings.clone()),
                            None => ("chunk".to_string(), Vec::new()),
                        };
                        (FaultKind::Error, e.root().to_string(), site, bindings)
                    }
                    Err(payload) => {
                        let message = panic_message(payload);
                        if policy == FaultPolicy::Abort {
                            fail(SweepError::WorkerPanic { chunk: Some(i), message });
                            telemetry.busy += t0.elapsed();
                            break 'pull;
                        }
                        (FaultKind::Panic, message, "chunk".to_string(), Vec::new())
                    }
                };
                let exhausted = attempt == retry_max;
                chunk_faults.push(FaultRecord {
                    chunk: i,
                    ordinal: 0,
                    attempt,
                    kind,
                    action: if exhausted {
                        FaultAction::QuarantinedChunk
                    } else {
                        FaultAction::Retried
                    },
                    site,
                    error,
                    bindings,
                });
                if exhausted {
                    break;
                }
            }
            if let (Some(memo), Some(out)) = (memo, &outcome) {
                // Only clean chunks are cacheable: an outcome shaped by a
                // fault policy (skipped points, retries) must be recomputed,
                // not replayed under a possibly different policy.
                if chunk_faults.is_empty() {
                    memo.store(i, chunks[i], out);
                }
            }
            telemetry.busy += t0.elapsed();
            telemetry.chunks += 1;
            if let Some(out) = &outcome {
                telemetry.evaluated += out.stats.evaluated.iter().sum::<u64>();
                telemetry.survivors += out.stats.survivors;
            }
            let folded = collector.lock().unwrap().add(
                i,
                ChunkDone { outcome, faults: chunk_faults },
                opts.progress.as_ref(),
                sink,
            );
            if let Err(msg) = folded {
                fail(SweepError::Checkpoint(msg));
                break;
            }
        }
        telemetry
    };

    let mut workers: Vec<WorkerTelemetry> = if n_workers == 1 {
        vec![worker_loop(0)]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n_workers)
                .map(|w| scope.spawn(move || worker_loop(w)))
                .collect();
            handles
                .into_iter()
                .filter_map(|h| match h.join() {
                    Ok(telemetry) => Some(telemetry),
                    Err(payload) => {
                        // The supervisor loop itself panicked (outside the
                        // per-chunk catch_unwind). Surface it as a structured
                        // error instead of re-panicking in the orchestrator.
                        fail(SweepError::WorkerPanic {
                            chunk: None,
                            message: panic_message(payload),
                        });
                        None
                    }
                })
                .collect()
        })
    };
    workers.sort_by_key(|w| w.worker);

    if let Some(err) = first_error.into_inner().unwrap() {
        return Err(err);
    }

    let mut collector = collector.into_inner().unwrap();
    let partial = collector.next < chunks.len();
    if let Some(sink) = sink {
        // Final flush so the file always reflects the folded prefix edge.
        collector.save(sink).map_err(SweepError::Checkpoint)?;
    }
    let Collector { stats, blocks, lanes, faults, visitor, schedule, .. } = collector;

    let mut report = SweepReport::new(
        space,
        &stats,
        &blocks,
        threads,
        outer.len(),
        chunk_len,
        chunks.len(),
        t_start.elapsed(),
        workers,
        compiled.schedule_telemetry(schedule.as_deref()),
        compiled.lint_summary(),
    );
    report.partial = partial;
    report.resumed_at = resumed_at;
    report.fault_policy = policy.name();
    report.fault_counters = FaultCounters::from_records(&faults);
    report.faults = faults;
    report.cache_hits = memo_hits.into_inner();
    report.cache_misses = memo_misses.into_inner();
    report.lanes = lanes.clone();
    report.native = native.as_ref().map(|n| n.stats());
    Ok((
        SweepOutcome {
            stats,
            blocks,
            lanes,
            schedule,
            visitor: visitor.unwrap_or_else(make_visitor),
        },
        report,
    ))
}

/// Render a caught panic payload (almost always a `String` or `&str`).
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(payload) => match payload.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "non-string panic payload".to_string(),
        },
    }
}

/// Pick the number of level-0 values per scheduler chunk.
///
/// An explicit `chunk_count` pins the grid regardless of thread count. With
/// one thread the whole domain is otherwise one chunk (serial fast path).
/// With more, the domain is cut into `threads × chunks_per_thread` pieces,
/// where `chunks_per_thread` comes from the caller or, automatically, from
/// whether the plan's inner loop domains are statically sized
/// ([`LoweredPlan::static_fanout_below_outer`]): dependent or opaque inner
/// domains mean skewed subtree costs and get 4× finer chunks.
pub(crate) fn chunk_len_for(
    lp: &LoweredPlan,
    outer_len: usize,
    threads: usize,
    chunks_per_thread: usize,
    chunk_count: usize,
) -> usize {
    if chunk_count > 0 {
        return outer_len.div_ceil(chunk_count).max(1);
    }
    if threads <= 1 {
        return outer_len;
    }
    let per_thread = if chunks_per_thread > 0 {
        chunks_per_thread
    } else if lp.static_fanout_below_outer().is_some() {
        CHUNKS_PER_THREAD_UNIFORM
    } else {
        CHUNKS_PER_THREAD_SKEWED
    };
    outer_len.div_ceil(threads.saturating_mul(per_thread).max(1)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use beast_core::constraint::ConstraintClass;
    use beast_core::expr::var;
    use beast_core::plan::{Plan, PlanOptions};
    use beast_core::space::Space;

    use crate::visit::{CollectVisitor, CountVisitor};

    fn lowered(space: &std::sync::Arc<Space>) -> LoweredPlan {
        let plan = Plan::new(space, PlanOptions::default()).unwrap();
        LoweredPlan::new(&plan).unwrap()
    }

    fn space() -> std::sync::Arc<Space> {
        Space::builder("par")
            .constant("cap", 300)
            .range("a", 1, 33)
            .range("b", 1, 33)
            .range_step("c", var("a"), 65, var("a"))
            .derived("abc", var("a") * var("b") + var("c"))
            .constraint("over", ConstraintClass::Hard, var("abc").gt(var("cap")))
            .build()
            .unwrap()
    }

    #[test]
    fn parallel_matches_serial_for_any_thread_count() {
        let lp = lowered(&space());
        let serial = Compiled::new(lp.clone()).run(CountVisitor::default()).unwrap();
        for threads in [1, 2, 3, 8, 64] {
            let par = run_parallel(&lp, threads, CountVisitor::default).unwrap();
            assert_eq!(par.visitor.count, serial.visitor.count, "{threads} threads");
            assert_eq!(par.stats, serial.stats, "{threads} threads");
        }
    }

    #[test]
    fn chunk_order_gives_deterministic_collection() {
        let lp = lowered(&space());
        let names = Compiled::new(lp.clone()).point_names().clone();
        let serial = Compiled::new(lp.clone())
            .run(CollectVisitor::new(names.clone(), usize::MAX))
            .unwrap();
        let par = run_parallel(&lp, 4, || CollectVisitor::new(names.clone(), usize::MAX))
            .unwrap();
        assert_eq!(par.visitor.points, serial.visitor.points);
    }

    #[test]
    fn explicit_chunks_per_thread_respected() {
        let lp = lowered(&space());
        let opts = ParallelOptions {
            threads: 2,
            chunks_per_thread: 4,
            ..ParallelOptions::default()
        };
        let (_, report) = run_parallel_report(&lp, &opts, CountVisitor::default).unwrap();
        // 32 outer values into 2×4 = 8 target chunks → chunk_len 4.
        assert_eq!(report.chunk_len, 4);
        assert_eq!(report.chunks, 8);
    }

    #[test]
    fn explicit_chunk_count_pins_grid_across_thread_counts() {
        let lp = lowered(&space());
        let mut reports = Vec::new();
        for threads in [1, 3, 8] {
            let opts = ParallelOptions {
                threads,
                chunk_count: 5,
                ..ParallelOptions::default()
            };
            let (_, report) =
                run_parallel_report(&lp, &opts, CountVisitor::default).unwrap();
            reports.push(report);
        }
        assert!(reports.iter().all(|r| r.chunk_len == reports[0].chunk_len));
        assert!(reports.iter().all(|r| r.chunks == 5));
    }

    #[test]
    fn skewed_plans_get_finer_chunks_than_uniform_ones() {
        // `space()` has a range_step loop depending on `a` → skewed.
        let skewed = lowered(&space());
        assert_eq!(skewed.static_fanout_below_outer(), None);
        assert_eq!(
            chunk_len_for(&skewed, 1024, 4, 0, 0),
            1024usize.div_ceil(4 * CHUNKS_PER_THREAD_SKEWED)
        );
        let uniform = lowered(
            &Space::builder("uni")
                .range("a", 0, 1024)
                .range("b", 0, 7)
                .build()
                .unwrap(),
        );
        assert!(uniform.static_fanout_below_outer().is_some());
        assert_eq!(
            chunk_len_for(&uniform, 1024, 4, 0, 0),
            1024usize.div_ceil(4 * CHUNKS_PER_THREAD_UNIFORM)
        );
        // Serial runs never split; an explicit chunk count overrides all.
        assert_eq!(chunk_len_for(&uniform, 1024, 1, 0, 0), 1024);
        assert_eq!(chunk_len_for(&uniform, 1024, 1, 0, 16), 64);
    }

    #[test]
    fn report_accounts_for_all_chunks_and_work() {
        let lp = lowered(&space());
        let serial = Compiled::new(lp.clone()).run(CountVisitor::default()).unwrap();
        let (out, report) =
            run_parallel_report(&lp, &ParallelOptions::new(4), CountVisitor::default).unwrap();
        assert_eq!(out.stats, serial.stats);
        assert_eq!(report.chunks, report.outer_len.div_ceil(report.chunk_len));
        let worker_chunks: u64 = report.workers.iter().map(|w| w.chunks).sum();
        assert_eq!(worker_chunks, report.chunks as u64);
        let worker_survivors: u64 = report.workers.iter().map(|w| w.survivors).sum();
        assert_eq!(worker_survivors, report.survivors);
        // Workers never record the preamble, so their evaluation totals sum
        // to the merged totals minus the preamble-recorded ones (none here).
        let worker_evaluated: u64 = report.workers.iter().map(|w| w.evaluated).sum();
        assert_eq!(worker_evaluated, report.evaluated);
        assert!(report.imbalance() >= 1.0);
        assert!(!report.partial);
        assert_eq!(report.fault_policy, "abort");
        assert!(report.faults.is_empty());
    }

    #[test]
    fn progress_counters_reach_totals() {
        let lp = lowered(&space());
        let progress = Arc::new(SweepProgress::default());
        let opts = ParallelOptions {
            threads: 4,
            chunks_per_thread: 0,
            progress: Some(progress.clone()),
            ..ParallelOptions::default()
        };
        let (out, report) = run_parallel_report(&lp, &opts, CountVisitor::default).unwrap();
        let snap = progress.snapshot();
        assert_eq!(snap.chunks_done, snap.chunks_total);
        assert_eq!(snap.chunks_total, report.chunks);
        assert_eq!(snap.tuples_decided, out.stats.survivors + out.stats.total_pruned());
        assert!((progress.fraction_done() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn more_threads_than_outer_values() {
        let s = Space::builder("tiny").range("x", 0, 3).build().unwrap();
        let lp = lowered(&s);
        let out = run_parallel(&lp, 16, CountVisitor::default).unwrap();
        assert_eq!(out.visitor.count, 3);
    }

    #[test]
    fn preamble_rejection_short_circuits() {
        let s = Space::builder("pre")
            .constant("off", 1)
            .range("x", 0, 1000)
            .constraint("disabled", ConstraintClass::Generic, var("off").eq(1))
            .build()
            .unwrap();
        let lp = lowered(&s);
        let out = run_parallel(&lp, 4, CountVisitor::default).unwrap();
        assert_eq!(out.visitor.count, 0);
        assert_eq!(out.stats.pruned[0], 1);
        assert_eq!(out.stats.evaluated[0], 1);
    }

    #[test]
    fn empty_outer_domain() {
        let s = Space::builder("empty").range("x", 5, 5).build().unwrap();
        let lp = lowered(&s);
        let out = run_parallel(&lp, 4, CountVisitor::default).unwrap();
        assert_eq!(out.visitor.count, 0);
    }

    fn dz_space() -> std::sync::Arc<Space> {
        Space::builder("dz")
            .range("x", 0, 64)
            .derived("bad", var("x") / (var("x") - 10))
            .build()
            .unwrap()
    }

    #[test]
    fn errors_propagate_from_workers_with_point_context() {
        let lp = lowered(&dz_space());
        let err = run_parallel(&lp, 4, CountVisitor::default).unwrap_err();
        let SweepError::Eval(e) = err else {
            panic!("expected Eval error, got {err:?}")
        };
        assert_eq!(e.root(), &beast_core::error::EvalError::DivisionByZero);
        let ctx = e.point_context().expect("escaped error carries point context");
        assert_eq!(ctx.site, "bad");
        assert_eq!(ctx.bindings, vec![("x".to_string(), 10)]);
    }

    #[test]
    fn skip_point_policy_drops_only_the_bad_point() {
        let lp = lowered(&dz_space());
        let opts = ParallelOptions {
            threads: 4,
            fault_policy: FaultPolicy::SkipPoint,
            ..ParallelOptions::default()
        };
        let (out, report) = run_parallel_report(&lp, &opts, CountVisitor::default).unwrap();
        // Only x = 10 divides by zero; the other 63 values survive.
        assert_eq!(out.visitor.count, 63);
        assert_eq!(report.fault_counters.points_skipped, 1);
        assert_eq!(report.faults.len(), 1);
        let r = &report.faults[0];
        assert_eq!(r.site, "bad");
        assert_eq!(r.bindings, vec![("x".to_string(), 10)]);
        assert_eq!(r.kind, FaultKind::Error);
        assert_eq!(r.action, FaultAction::SkippedPoint);
        assert!(!report.partial);
    }

    #[test]
    fn quarantine_policy_drops_the_chunk_and_continues() {
        let lp = lowered(&dz_space());
        let opts = ParallelOptions {
            threads: 2,
            chunk_count: 16, // 64 values → chunk_len 4; x = 10 is in chunk 2
            fault_policy: FaultPolicy::QuarantineChunk,
            ..ParallelOptions::default()
        };
        let (out, report) = run_parallel_report(&lp, &opts, CountVisitor::default).unwrap();
        assert_eq!(out.visitor.count, 60, "one 4-value chunk dropped");
        assert_eq!(report.fault_counters.chunks_quarantined, 1);
        assert_eq!(report.faults[0].chunk, 2);
        assert!(!report.partial);
    }

    #[test]
    fn retry_policy_quarantines_after_exhaustion() {
        let lp = lowered(&dz_space());
        let opts = ParallelOptions {
            threads: 2,
            chunk_count: 16,
            fault_policy: FaultPolicy::Retry { max: 2, backoff_ms: 0 },
            ..ParallelOptions::default()
        };
        let (out, report) = run_parallel_report(&lp, &opts, CountVisitor::default).unwrap();
        // The fault is persistent, so every retry fails and the chunk is
        // quarantined; the record trail shows both retries.
        assert_eq!(out.visitor.count, 60);
        assert_eq!(report.fault_counters.retries, 2);
        assert_eq!(report.fault_counters.chunks_quarantined, 1);
        let actions: Vec<_> = report.faults.iter().map(|r| r.action).collect();
        assert_eq!(
            actions,
            vec![
                FaultAction::Retried,
                FaultAction::Retried,
                FaultAction::QuarantinedChunk
            ]
        );
        assert_eq!(report.faults.iter().map(|r| r.attempt).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn injected_panics_are_isolated_and_recorded() {
        let lp = lowered(&space());
        let clean = run_parallel(&lp, 2, CountVisitor::default).unwrap();
        let opts = ParallelOptions {
            threads: 2,
            chunk_count: 8,
            fault_policy: FaultPolicy::QuarantineChunk,
            injector: Some(FaultInjector::new(11).panic_rate(0.3)),
            ..ParallelOptions::default()
        };
        let (out, report) = run_parallel_report(&lp, &opts, CountVisitor::default).unwrap();
        assert!(report.fault_counters.panics > 0, "seed 11 at 30% must hit ≥ 1 of 8 chunks");
        assert!(out.visitor.count < clean.visitor.count);
        assert!(report.faults.iter().all(|r| r.kind == FaultKind::Panic));
        assert!(report.faults.iter().all(|r| r.error.contains("injected panic")));
    }

    #[test]
    fn abort_policy_surfaces_panic_as_structured_error() {
        let lp = lowered(&space());
        let opts = ParallelOptions {
            threads: 2,
            chunk_count: 8,
            injector: Some(FaultInjector::new(11).panic_rate(0.3)),
            ..ParallelOptions::default()
        };
        let err = run_parallel_report(&lp, &opts, CountVisitor::default).unwrap_err();
        let SweepError::WorkerPanic { chunk, message } = err else {
            panic!("expected WorkerPanic, got {err:?}")
        };
        assert!(chunk.is_some());
        assert!(message.contains("injected panic"));
    }

    #[test]
    fn stop_after_chunks_yields_partial_prefix() {
        let lp = lowered(&space());
        let progress = Arc::new(SweepProgress::default());
        let opts = ParallelOptions {
            threads: 2,
            chunk_count: 8,
            stop_after_chunks: 3,
            progress: Some(progress.clone()),
            ..ParallelOptions::default()
        };
        let (out, report) = run_parallel_report(&lp, &opts, CountVisitor::default).unwrap();
        assert!(report.partial);
        assert_eq!(progress.snapshot().chunks_done, 3);
        // The partial outcome is exactly the serial prefix of 3 chunks.
        let compiled = Compiled::new(lp.clone());
        let outer = compiled.outer_domain().unwrap();
        let prefix = &outer[..(3 * report.chunk_len).min(outer.len())];
        let serial = compiled.run_outer_chunk(prefix, CountVisitor::default()).unwrap();
        assert_eq!(out.visitor.count, serial.visitor.count);
        assert_eq!(out.stats.survivors, serial.stats.survivors);
    }

    #[test]
    fn cancel_token_stops_the_sweep_before_it_starts() {
        let lp = lowered(&space());
        let cancel = Arc::new(CancelToken::new());
        cancel.cancel();
        let opts = ParallelOptions {
            threads: 2,
            chunk_count: 8,
            cancel: Some(cancel),
            ..ParallelOptions::default()
        };
        let (out, report) = run_parallel_report(&lp, &opts, CountVisitor::default).unwrap();
        assert!(report.partial);
        assert_eq!(out.visitor.count, 0);
    }
}
