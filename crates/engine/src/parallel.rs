//! Multithreaded sweep evaluation — the paper's Section X-B observation that
//! parallelization "can be very beneficial at the outermost loop nests,
//! close to level 0".
//!
//! # Dynamic scheduling
//!
//! The driver realizes the outermost loop's domain once (level-0 iterators
//! depend only on constants by construction) and splits it into chunks that
//! are deliberately *finer* than one-per-thread. Workers then pull chunks
//! from a shared [`AtomicUsize`] cursor as they finish — a work-stealing-style
//! dynamic schedule with a single global queue.
//!
//! Static one-chunk-per-thread splitting (what this module did originally)
//! assumes the cost below each level-0 value is uniform. DAG-hoisted pruning
//! makes it anything but: a level-0 constraint can cut an entire subtree
//! after one comparison, while a neighbouring value fans out into millions of
//! tuples, so one unlucky thread ends up serializing the sweep. With dynamic
//! chunk pulling the fast threads simply take more chunks; the
//! [`SweepReport::imbalance`](crate::telemetry::SweepReport::imbalance)
//! metric makes the difference observable.
//!
//! Chunk granularity adapts to the shape of the plan via
//! [`LoweredPlan::static_fanout_below_outer`]: when every inner domain is
//! statically sized, subtree costs are near-uniform and a modest number of
//! chunks per thread suffices; when inner domains depend on outer variables
//! (the skewed regime), the driver cuts finer chunks.
//!
//! # Determinism contract
//!
//! For a given plan, [`run_parallel`] and [`run_parallel_report`] produce
//! results **bit-for-bit identical to the serial [`Compiled::run`] and to
//! themselves at every thread count**:
//!
//! * each chunk is evaluated with a private visitor and statistics block
//!   (no shared mutable state on the hot path);
//! * per-chunk results are merged *in chunk order* — which worker happened
//!   to execute a chunk never affects the merged outcome;
//! * chunk boundaries only partition the level-0 domain, so concatenating
//!   chunk results in order reproduces the serial visit order exactly;
//! * preamble (constants-only) constraints are recorded once, not per chunk.
//!
//! Only the *telemetry* (worker timings, chunks-per-worker) varies run to
//! run; survivors, visit order and [`PruneStats`] do not. This is enforced
//! by the determinism regression suite in `tests/determinism.rs`.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use beast_core::error::EvalError;
use beast_core::ir::LoweredPlan;

use crate::compiled::{Compiled, EngineOptions};
use crate::stats::{BlockStats, PruneStats};
use crate::telemetry::{SweepProgress, SweepReport, WorkerTelemetry};
use crate::visit::Visitor;
use crate::walker::SweepOutcome;

/// Chunks per thread when inner loop domains are statically sized (near-
/// uniform subtree cost; chunks mainly serve scheduling slack).
const CHUNKS_PER_THREAD_UNIFORM: usize = 8;

/// Chunks per thread when some inner domain depends on outer variables or
/// is opaque (skewed subtree cost; fine chunks are what balances the load).
const CHUNKS_PER_THREAD_SKEWED: usize = 32;

/// Configuration for [`run_parallel_report`].
#[derive(Debug, Clone, Default)]
pub struct ParallelOptions {
    /// Worker threads (values below 1 are treated as 1).
    pub threads: usize,
    /// Scheduler chunks per thread; 0 picks automatically from the plan's
    /// static fanout (fine chunks for skewed spaces, coarser for uniform).
    pub chunks_per_thread: usize,
    /// Optional shared progress counters, bumped once per completed chunk.
    pub progress: Option<Arc<SweepProgress>>,
    /// Compiled-engine options (interval block pruning is on by default;
    /// results are identical either way, see the determinism contract).
    pub engine: EngineOptions,
}

impl ParallelOptions {
    /// Options for `threads` workers with automatic chunk sizing.
    pub fn new(threads: usize) -> ParallelOptions {
        ParallelOptions { threads, ..ParallelOptions::default() }
    }
}

/// Run a lowered plan across `threads` worker threads.
///
/// `make_visitor` constructs one private visitor per scheduler chunk; the
/// per-chunk results are merged in chunk order, so the merged visitor sees
/// points in exactly the serial order regardless of thread count or
/// scheduling — see the module-level determinism contract.
///
/// With `threads == 1` this degenerates to a serial run with identical
/// statistics to [`Compiled::run`].
pub fn run_parallel<V, F>(
    lp: &LoweredPlan,
    threads: usize,
    make_visitor: F,
) -> Result<SweepOutcome<V>, EvalError>
where
    V: Visitor + Send,
    F: Fn() -> V + Sync,
{
    run_parallel_report(lp, &ParallelOptions::new(threads), make_visitor)
        .map(|(outcome, _)| outcome)
}

/// [`run_parallel`] plus a [`SweepReport`] with the pruning funnel,
/// per-worker timings and scheduler telemetry.
///
/// The sweep outcome obeys the module-level determinism contract; only the
/// report's timing fields vary between runs.
pub fn run_parallel_report<V, F>(
    lp: &LoweredPlan,
    opts: &ParallelOptions,
    make_visitor: F,
) -> Result<(SweepOutcome<V>, SweepReport), EvalError>
where
    V: Visitor + Send,
    F: Fn() -> V + Sync,
{
    let threads = opts.threads.max(1);
    let t_start = Instant::now();
    let compiled = Compiled::with_options(lp.clone(), opts.engine);
    compiled.lint_denied()?;
    let space = lp.plan.space();

    let mut stats = PruneStats::new(space.constraints().len());
    let mut blocks = BlockStats::default();
    // Preamble constraints (constants only) run once, recorded here.
    if !compiled.preamble_record(&mut stats)? {
        let report = SweepReport::new(
            space,
            &stats,
            &blocks,
            threads,
            0,
            0,
            0,
            t_start.elapsed(),
            vec![],
            compiled.schedule_telemetry(None),
            compiled.lint_summary(),
        );
        return Ok((
            SweepOutcome { stats, blocks, schedule: None, visitor: make_visitor() },
            report,
        ));
    }

    let outer = compiled.outer_domain()?;
    if outer.is_empty() {
        let report = SweepReport::new(
            space,
            &stats,
            &blocks,
            threads,
            0,
            0,
            0,
            t_start.elapsed(),
            vec![],
            compiled.schedule_telemetry(None),
            compiled.lint_summary(),
        );
        return Ok((
            SweepOutcome { stats, blocks, schedule: None, visitor: make_visitor() },
            report,
        ));
    }

    let chunk_len = chunk_len_for(lp, outer.len(), threads, opts.chunks_per_thread);
    let chunks: Vec<&[i64]> = outer.chunks(chunk_len).collect();
    if let Some(progress) = &opts.progress {
        progress.chunks_total.store(chunks.len(), Ordering::Relaxed);
        progress.chunks_done.store(0, Ordering::Relaxed);
        progress.tuples_decided.store(0, Ordering::Relaxed);
    }

    let n_workers = threads.min(chunks.len());
    let cursor = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);

    // Each worker drains the shared cursor, producing (chunk index, outcome)
    // pairs; merging happens afterwards in chunk-index order so the result
    // is independent of the race for chunks.
    let worker_loop = |worker: usize| -> Result<WorkerOutput<V>, EvalError> {
        let mut output = WorkerOutput {
            outcomes: Vec::new(),
            telemetry: WorkerTelemetry {
                worker,
                chunks: 0,
                busy: Duration::ZERO,
                evaluated: 0,
                survivors: 0,
            },
        };
        loop {
            if abort.load(Ordering::Relaxed) {
                break;
            }
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= chunks.len() {
                break;
            }
            let t0 = Instant::now();
            let out = match compiled.run_outer_chunk(chunks[i], make_visitor()) {
                Ok(out) => out,
                Err(e) => {
                    abort.store(true, Ordering::Relaxed);
                    return Err(e);
                }
            };
            output.telemetry.busy += t0.elapsed();
            output.telemetry.chunks += 1;
            output.telemetry.evaluated += out.stats.evaluated.iter().sum::<u64>();
            output.telemetry.survivors += out.stats.survivors;
            if let Some(progress) = &opts.progress {
                progress.chunks_done.fetch_add(1, Ordering::Relaxed);
                progress
                    .tuples_decided
                    .fetch_add(out.stats.survivors + out.stats.total_pruned(), Ordering::Relaxed);
            }
            output.outcomes.push((i, out));
        }
        Ok(output)
    };

    let worker_results: Vec<Result<WorkerOutput<V>, EvalError>> = if n_workers == 1 {
        vec![worker_loop(0)]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n_workers)
                .map(|w| scope.spawn(move || worker_loop(w)))
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        })
    };

    let mut by_chunk: Vec<Option<SweepOutcome<V>>> = Vec::new();
    by_chunk.resize_with(chunks.len(), || None);
    let mut workers = Vec::with_capacity(n_workers);
    for result in worker_results {
        let output = result?;
        workers.push(output.telemetry);
        for (i, out) in output.outcomes {
            debug_assert!(by_chunk[i].is_none(), "chunk {i} evaluated twice");
            by_chunk[i] = Some(out);
        }
    }
    workers.sort_by_key(|w| w.worker);

    // Merge in chunk order — this is what makes the outcome independent of
    // which worker ran which chunk. Adaptive-schedule state is chunk-local,
    // so the representative final order reported is chunk 0's: it is the
    // one order that is deterministic across thread counts (chunk 0 always
    // covers the same level-0 prefix).
    let mut merged_visitor: Option<V> = None;
    let mut schedule = None;
    for (i, out) in by_chunk.into_iter().enumerate() {
        let out = out.expect("every chunk evaluated exactly once");
        stats.merge(&out.stats);
        blocks.merge(&out.blocks);
        if i == 0 {
            schedule = out.schedule;
        }
        merged_visitor = Some(match merged_visitor {
            None => out.visitor,
            Some(mut acc) => {
                acc.merge(out.visitor);
                acc
            }
        });
    }
    let report = SweepReport::new(
        space,
        &stats,
        &blocks,
        threads,
        outer.len(),
        chunk_len,
        chunks.len(),
        t_start.elapsed(),
        workers,
        compiled.schedule_telemetry(schedule.as_deref()),
        compiled.lint_summary(),
    );
    Ok((
        SweepOutcome {
            stats,
            blocks,
            schedule,
            visitor: merged_visitor.unwrap_or_else(make_visitor),
        },
        report,
    ))
}

/// Pick the number of level-0 values per scheduler chunk.
///
/// With one thread the whole domain is one chunk (serial fast path). With
/// more, the domain is cut into `threads × chunks_per_thread` pieces, where
/// `chunks_per_thread` comes from the caller or, automatically, from whether
/// the plan's inner loop domains are statically sized
/// ([`LoweredPlan::static_fanout_below_outer`]): dependent or opaque inner
/// domains mean skewed subtree costs and get 4× finer chunks.
fn chunk_len_for(
    lp: &LoweredPlan,
    outer_len: usize,
    threads: usize,
    chunks_per_thread: usize,
) -> usize {
    if threads <= 1 {
        return outer_len;
    }
    let per_thread = if chunks_per_thread > 0 {
        chunks_per_thread
    } else if lp.static_fanout_below_outer().is_some() {
        CHUNKS_PER_THREAD_UNIFORM
    } else {
        CHUNKS_PER_THREAD_SKEWED
    };
    outer_len.div_ceil(threads.saturating_mul(per_thread).max(1)).max(1)
}

/// What one worker hands back: per-chunk outcomes plus its telemetry.
struct WorkerOutput<V> {
    outcomes: Vec<(usize, SweepOutcome<V>)>,
    telemetry: WorkerTelemetry,
}

#[cfg(test)]
mod tests {
    use super::*;
    use beast_core::constraint::ConstraintClass;
    use beast_core::expr::var;
    use beast_core::plan::{Plan, PlanOptions};
    use beast_core::space::Space;

    use crate::visit::{CollectVisitor, CountVisitor};

    fn lowered(space: &std::sync::Arc<Space>) -> LoweredPlan {
        let plan = Plan::new(space, PlanOptions::default()).unwrap();
        LoweredPlan::new(&plan).unwrap()
    }

    fn space() -> std::sync::Arc<Space> {
        Space::builder("par")
            .constant("cap", 300)
            .range("a", 1, 33)
            .range("b", 1, 33)
            .range_step("c", var("a"), 65, var("a"))
            .derived("abc", var("a") * var("b") + var("c"))
            .constraint("over", ConstraintClass::Hard, var("abc").gt(var("cap")))
            .build()
            .unwrap()
    }

    #[test]
    fn parallel_matches_serial_for_any_thread_count() {
        let lp = lowered(&space());
        let serial = Compiled::new(lp.clone()).run(CountVisitor::default()).unwrap();
        for threads in [1, 2, 3, 8, 64] {
            let par = run_parallel(&lp, threads, CountVisitor::default).unwrap();
            assert_eq!(par.visitor.count, serial.visitor.count, "{threads} threads");
            assert_eq!(par.stats, serial.stats, "{threads} threads");
        }
    }

    #[test]
    fn chunk_order_gives_deterministic_collection() {
        let lp = lowered(&space());
        let names = Compiled::new(lp.clone()).point_names().clone();
        let serial = Compiled::new(lp.clone())
            .run(CollectVisitor::new(names.clone(), usize::MAX))
            .unwrap();
        let par = run_parallel(&lp, 4, || CollectVisitor::new(names.clone(), usize::MAX))
            .unwrap();
        assert_eq!(par.visitor.points, serial.visitor.points);
    }

    #[test]
    fn explicit_chunks_per_thread_respected() {
        let lp = lowered(&space());
        let opts = ParallelOptions {
            threads: 2,
            chunks_per_thread: 4,
            ..ParallelOptions::default()
        };
        let (_, report) = run_parallel_report(&lp, &opts, CountVisitor::default).unwrap();
        // 32 outer values into 2×4 = 8 target chunks → chunk_len 4.
        assert_eq!(report.chunk_len, 4);
        assert_eq!(report.chunks, 8);
    }

    #[test]
    fn skewed_plans_get_finer_chunks_than_uniform_ones() {
        // `space()` has a range_step loop depending on `a` → skewed.
        let skewed = lowered(&space());
        assert_eq!(skewed.static_fanout_below_outer(), None);
        assert_eq!(
            chunk_len_for(&skewed, 1024, 4, 0),
            1024usize.div_ceil(4 * CHUNKS_PER_THREAD_SKEWED)
        );
        let uniform = lowered(
            &Space::builder("uni")
                .range("a", 0, 1024)
                .range("b", 0, 7)
                .build()
                .unwrap(),
        );
        assert!(uniform.static_fanout_below_outer().is_some());
        assert_eq!(
            chunk_len_for(&uniform, 1024, 4, 0),
            1024usize.div_ceil(4 * CHUNKS_PER_THREAD_UNIFORM)
        );
        // Serial runs never split.
        assert_eq!(chunk_len_for(&uniform, 1024, 1, 0), 1024);
    }

    #[test]
    fn report_accounts_for_all_chunks_and_work() {
        let lp = lowered(&space());
        let serial = Compiled::new(lp.clone()).run(CountVisitor::default()).unwrap();
        let (out, report) =
            run_parallel_report(&lp, &ParallelOptions::new(4), CountVisitor::default).unwrap();
        assert_eq!(out.stats, serial.stats);
        assert_eq!(report.chunks, report.outer_len.div_ceil(report.chunk_len));
        let worker_chunks: u64 = report.workers.iter().map(|w| w.chunks).sum();
        assert_eq!(worker_chunks, report.chunks as u64);
        let worker_survivors: u64 = report.workers.iter().map(|w| w.survivors).sum();
        assert_eq!(worker_survivors, report.survivors);
        // Workers never record the preamble, so their evaluation totals sum
        // to the merged totals minus the preamble-recorded ones (none here).
        let worker_evaluated: u64 = report.workers.iter().map(|w| w.evaluated).sum();
        assert_eq!(worker_evaluated, report.evaluated);
        assert!(report.imbalance() >= 1.0);
    }

    #[test]
    fn progress_counters_reach_totals() {
        let lp = lowered(&space());
        let progress = Arc::new(SweepProgress::default());
        let opts = ParallelOptions {
            threads: 4,
            chunks_per_thread: 0,
            progress: Some(progress.clone()),
            ..ParallelOptions::default()
        };
        let (out, report) = run_parallel_report(&lp, &opts, CountVisitor::default).unwrap();
        let snap = progress.snapshot();
        assert_eq!(snap.chunks_done, snap.chunks_total);
        assert_eq!(snap.chunks_total, report.chunks);
        assert_eq!(snap.tuples_decided, out.stats.survivors + out.stats.total_pruned());
        assert!((progress.fraction_done() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn more_threads_than_outer_values() {
        let s = Space::builder("tiny").range("x", 0, 3).build().unwrap();
        let lp = lowered(&s);
        let out = run_parallel(&lp, 16, CountVisitor::default).unwrap();
        assert_eq!(out.visitor.count, 3);
    }

    #[test]
    fn preamble_rejection_short_circuits() {
        let s = Space::builder("pre")
            .constant("off", 1)
            .range("x", 0, 1000)
            .constraint("disabled", ConstraintClass::Generic, var("off").eq(1))
            .build()
            .unwrap();
        let lp = lowered(&s);
        let out = run_parallel(&lp, 4, CountVisitor::default).unwrap();
        assert_eq!(out.visitor.count, 0);
        assert_eq!(out.stats.pruned[0], 1);
        assert_eq!(out.stats.evaluated[0], 1);
    }

    #[test]
    fn empty_outer_domain() {
        let s = Space::builder("empty").range("x", 5, 5).build().unwrap();
        let lp = lowered(&s);
        let out = run_parallel(&lp, 4, CountVisitor::default).unwrap();
        assert_eq!(out.visitor.count, 0);
    }

    #[test]
    fn errors_propagate_from_workers() {
        let s = Space::builder("dz")
            .range("x", 0, 64)
            .derived("bad", var("x") / (var("x") - 10))
            .build()
            .unwrap();
        let lp = lowered(&s);
        let err = run_parallel(&lp, 4, CountVisitor::default).unwrap_err();
        assert_eq!(err, EvalError::DivisionByZero);
    }
}
