//! Multithreaded sweep evaluation — the paper's Section X-B observation that
//! parallelization "can be very beneficial at the outermost loop nests,
//! close to level 0".
//!
//! The driver realizes the outermost loop's domain once (level-0 iterators
//! depend only on constants by construction), splits it into chunks, and runs
//! the compiled backend over each chunk on its own OS thread with a private
//! slot array, statistics block and visitor. Results are merged on join —
//! no shared mutable state, no locks on the hot path.

use beast_core::error::EvalError;
use beast_core::ir::LoweredPlan;

use crate::compiled::Compiled;
use crate::stats::PruneStats;
use crate::visit::Visitor;
use crate::walker::SweepOutcome;

/// Run a lowered plan across `threads` worker threads.
///
/// `make_visitor` constructs one private visitor per worker; the per-worker
/// results are merged (in chunk order, so collectors see deterministic point
/// order) into a single outcome.
///
/// With `threads == 1` this degenerates to a serial run with identical
/// statistics to [`Compiled::run`].
pub fn run_parallel<V, F>(
    lp: &LoweredPlan,
    threads: usize,
    make_visitor: F,
) -> Result<SweepOutcome<V>, EvalError>
where
    V: Visitor + Send,
    F: Fn() -> V + Sync,
{
    let threads = threads.max(1);
    let compiled = Compiled::new(lp.clone());
    let space = lp.plan.space();

    let mut stats = PruneStats::new(space.constraints().len());
    // Preamble constraints (constants only) run once, recorded here.
    if !compiled.preamble_record(&mut stats)? {
        return Ok(SweepOutcome { stats, visitor: make_visitor() });
    }

    let outer = compiled.outer_domain()?;
    if outer.is_empty() {
        return Ok(SweepOutcome { stats, visitor: make_visitor() });
    }

    // Contiguous chunks; ceil division so every value lands in a chunk.
    let chunk_len = outer.len().div_ceil(threads);
    let chunks: Vec<&[i64]> = outer.chunks(chunk_len).collect();

    let compiled_ref = &compiled;
    let make_ref = &make_visitor;
    let results: Vec<Result<SweepOutcome<V>, EvalError>> =
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|chunk| {
                    scope.spawn(move |_| {
                        compiled_ref.run_outer_chunk(chunk, make_ref())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        })
        .expect("thread scope");

    let mut merged_visitor: Option<V> = None;
    for result in results {
        let out = result?;
        stats.merge(&out.stats);
        merged_visitor = Some(match merged_visitor {
            None => out.visitor,
            Some(mut acc) => {
                acc.merge(out.visitor);
                acc
            }
        });
    }
    Ok(SweepOutcome {
        stats,
        visitor: merged_visitor.unwrap_or_else(make_visitor),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use beast_core::constraint::ConstraintClass;
    use beast_core::expr::var;
    use beast_core::plan::{Plan, PlanOptions};
    use beast_core::space::Space;

    use crate::visit::{CollectVisitor, CountVisitor};

    fn lowered(space: &std::sync::Arc<Space>) -> LoweredPlan {
        let plan = Plan::new(space, PlanOptions::default()).unwrap();
        LoweredPlan::new(&plan).unwrap()
    }

    fn space() -> std::sync::Arc<Space> {
        Space::builder("par")
            .constant("cap", 300)
            .range("a", 1, 33)
            .range("b", 1, 33)
            .range_step("c", var("a"), 65, var("a"))
            .derived("abc", var("a") * var("b") + var("c"))
            .constraint("over", ConstraintClass::Hard, var("abc").gt(var("cap")))
            .build()
            .unwrap()
    }

    #[test]
    fn parallel_matches_serial_for_any_thread_count() {
        let lp = lowered(&space());
        let serial = Compiled::new(lp.clone()).run(CountVisitor::default()).unwrap();
        for threads in [1, 2, 3, 8, 64] {
            let par = run_parallel(&lp, threads, CountVisitor::default).unwrap();
            assert_eq!(par.visitor.count, serial.visitor.count, "{threads} threads");
            assert_eq!(par.stats, serial.stats, "{threads} threads");
        }
    }

    #[test]
    fn chunk_order_gives_deterministic_collection() {
        let lp = lowered(&space());
        let names = Compiled::new(lp.clone()).point_names().clone();
        let serial = Compiled::new(lp.clone())
            .run(CollectVisitor::new(names.clone(), usize::MAX))
            .unwrap();
        let par = run_parallel(&lp, 4, || CollectVisitor::new(names.clone(), usize::MAX))
            .unwrap();
        assert_eq!(par.visitor.points, serial.visitor.points);
    }

    #[test]
    fn more_threads_than_outer_values() {
        let s = Space::builder("tiny").range("x", 0, 3).build().unwrap();
        let lp = lowered(&s);
        let out = run_parallel(&lp, 16, CountVisitor::default).unwrap();
        assert_eq!(out.visitor.count, 3);
    }

    #[test]
    fn preamble_rejection_short_circuits() {
        let s = Space::builder("pre")
            .constant("off", 1)
            .range("x", 0, 1000)
            .constraint("disabled", ConstraintClass::Generic, var("off").eq(1))
            .build()
            .unwrap();
        let lp = lowered(&s);
        let out = run_parallel(&lp, 4, CountVisitor::default).unwrap();
        assert_eq!(out.visitor.count, 0);
        assert_eq!(out.stats.pruned[0], 1);
        assert_eq!(out.stats.evaluated[0], 1);
    }

    #[test]
    fn empty_outer_domain() {
        let s = Space::builder("empty").range("x", 5, 5).build().unwrap();
        let lp = lowered(&s);
        let out = run_parallel(&lp, 4, CountVisitor::default).unwrap();
        assert_eq!(out.visitor.count, 0);
    }
}
