//! The *bytecode VM*: a register-machine evaluation backend whose cost model
//! mirrors Lua's, used to reproduce Fig. 18 of the paper.
//!
//! The lowered plan is compiled to a flat instruction stream executed by a
//! dispatch loop over `i64` registers — faster than the hash-map walker
//! (Lua's registers vs Python's dicts, the ~5× gap the paper measures), but
//! still paying interpreter dispatch per operation, unlike the compiled
//! backend.
//!
//! Loop compilation comes in three styles, matching the paper's Lua
//! variants:
//!
//! * [`VmStyle::NumericFor`] — a dedicated `ForPrep`/`ForLoop` instruction
//!   pair keeps the control state in fixed registers (Lua's numeric `for`,
//!   the fastest variant in Fig. 18);
//! * [`VmStyle::While`] — the bound and stride expressions are re-evaluated
//!   through the register file on every iteration (Lua `while`);
//! * [`VmStyle::RepeatUntil`] — post-test loop with an explicit emptiness
//!   pre-check (Lua `repeat ... until`).

use std::sync::Arc;

use beast_core::error::EvalError;
use beast_core::expr::Builtin;
use beast_core::ir::{IntBinOp, IntExpr, LBody, LIter, LStep, LoweredPlan};
use beast_core::iterator::Realized;

use crate::compiled::SlotBindings;
use crate::point::PointRef;
use crate::stats::{BlockStats, LaneStats, PruneStats};
use crate::visit::Visitor;
use crate::walker::SweepOutcome;

/// Loop-compilation strategy, the experimental variable of Fig. 18.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VmStyle {
    /// Lua-style numeric `for` with dedicated control instructions.
    #[default]
    NumericFor,
    /// `while` loop: condition (and stride) re-evaluated every iteration.
    While,
    /// `repeat ... until` post-test loop with emptiness pre-check.
    RepeatUntil,
}

/// One VM instruction. Registers are `u16` indices; jump targets are
/// instruction indices.
#[derive(Debug, Clone, PartialEq)]
enum Op {
    /// `regs[dst] = k`
    LoadK { dst: u16, k: i64 },
    /// `regs[dst] = regs[src]`
    Move { dst: u16, src: u16 },
    /// `regs[dst] = regs[a] <op> regs[b]` (non-short-circuit ops only).
    Bin { op: IntBinOp, dst: u16, a: u16, b: u16 },
    /// `regs[dst] = -regs[a]`
    Neg { dst: u16, a: u16 },
    /// `regs[dst] = !regs[a]` (0/1)
    Not { dst: u16, a: u16 },
    /// `regs[dst] = |regs[a]|`
    Abs { dst: u16, a: u16 },
    /// Two-argument builtin.
    Call2 { f: Builtin, dst: u16, a: u16, b: u16 },
    /// Unconditional jump.
    Jmp { to: u32 },
    /// Jump if `regs[r] == 0`.
    JmpIfZero { r: u16, to: u32 },
    /// Jump if `regs[r] != 0`.
    JmpIfNonZero { r: u16, to: u32 },
    /// Numeric-for prologue: control block at `base` = (current, stop, step),
    /// already initialized. If the range is empty jump `to`; else copy
    /// current into `slot`.
    ForPrep { base: u16, slot: u16, to: u32 },
    /// Numeric-for back-edge: advance, test, copy into `slot`, jump `to`
    /// (the body start) while in range.
    ForLoop { base: u16, slot: u16, to: u32 },
    /// Realize iterator `iter` (list/opaque) into iterator-state `state`.
    IterInit { state: u16, iter: u32 },
    /// Advance iterator-state `state`, writing into `dst`; jump `to` when
    /// exhausted.
    IterNext { state: u16, dst: u16, to: u32 },
    /// Evaluate opaque derived `derived` into `dst` via closure callback.
    DefineOpaque { derived: u32, dst: u16 },
    /// Record constraint `constraint` with value `regs[r]`; if nonzero,
    /// prune by jumping `to` (the innermost loop's continue point).
    Check { constraint: u32, r: u16, to: u32 },
    /// Opaque constraint via closure callback; record and prune like `Check`.
    CheckOpaque { constraint: u32, to: u32 },
    /// Survivor: feed the named slots to the visitor, then jump `to`
    /// (the innermost loop's continue point).
    Visit { to: u32 },
    /// End of program.
    Halt,
}

/// Placeholder jump target fixed up when the enclosing loop closes.
const PENDING: u32 = u32::MAX;

/// A compiled VM program for one lowered plan.
pub struct Vm {
    lp: LoweredPlan,
    style: VmStyle,
    ops: Vec<Op>,
    n_regs: u16,
    n_states: u16,
    point_names: Arc<[Arc<str>]>,
}

impl Vm {
    /// Compile a lowered plan with the given loop style.
    pub fn compile(lp: &LoweredPlan, style: VmStyle) -> Vm {
        let mut c = Compiler::new(lp, style);
        c.compile_steps(0);
        c.ops.push(Op::Halt);
        // Any pruning jumps left unpatched target Halt (no enclosing loop —
        // preamble checks).
        let halt = (c.ops.len() - 1) as u32;
        for op in &mut c.ops {
            let to = match op {
                Op::Jmp { to }
                | Op::JmpIfZero { to, .. }
                | Op::JmpIfNonZero { to, .. }
                | Op::ForPrep { to, .. }
                | Op::ForLoop { to, .. }
                | Op::IterNext { to, .. }
                | Op::Check { to, .. }
                | Op::CheckOpaque { to, .. }
                | Op::Visit { to } => to,
                _ => continue,
            };
            if *to == PENDING {
                *to = halt;
            }
        }
        let point_names: Arc<[Arc<str>]> =
            Arc::from(lp.slot_names.clone().into_boxed_slice());
        Vm {
            lp: lp.clone(),
            style,
            ops: c.ops,
            n_regs: c.max_reg + 1,
            n_states: c.n_states,
            point_names,
        }
    }

    /// Names reported for visited points (slot order).
    pub fn point_names(&self) -> &Arc<[Arc<str>]> {
        &self.point_names
    }

    /// The loop style this program was compiled with.
    pub fn style(&self) -> VmStyle {
        self.style
    }

    /// Number of instructions (useful for tests and reports).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the program is trivially empty (never: there is always Halt).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Execute the program, feeding survivors to the visitor.
    ///
    /// Dispatch goes through a *handler table*: `Op::opcode` maps every
    /// instruction to a dense index into a fixed `[Handler<V>; N_OPCODES]`
    /// array of monomorphic function pointers, so the hot loop is an indexed
    /// load plus an indirect call instead of a branch tree over the enum.
    /// Each handler returns a `Ctl` describing where the program counter
    /// goes next.
    pub fn run<V: Visitor>(&self, visitor: V) -> Result<SweepOutcome<V>, EvalError> {
        let space = self.lp.plan.space();
        let table = handler_table::<V>();
        let mut ex = Exec {
            regs: vec![0i64; self.n_regs as usize],
            states: (0..self.n_states).map(|_| Cursor::empty()).collect(),
            stats: PruneStats::new(space.constraints().len()),
            visitor,
            lp: &self.lp,
            n_slots: self.lp.n_slots as usize,
        };

        let ops = &self.ops[..];
        let mut pc: usize = 0;
        loop {
            let op = &ops[pc];
            match table[op.opcode()](&mut ex, op)? {
                Ctl::Next => pc += 1,
                Ctl::Jump(to) => pc = to,
                Ctl::Halt => break,
            }
        }
        let Exec { stats, visitor, .. } = ex;
        Ok(SweepOutcome {
            stats,
            blocks: BlockStats::default(),
            lanes: LaneStats::default(),
            schedule: None,
            visitor,
        })
    }
}

impl Op {
    /// Dense index of this instruction's handler in the dispatch table.
    fn opcode(&self) -> usize {
        match self {
            Op::LoadK { .. } => 0,
            Op::Move { .. } => 1,
            Op::Bin { .. } => 2,
            Op::Neg { .. } => 3,
            Op::Not { .. } => 4,
            Op::Abs { .. } => 5,
            Op::Call2 { .. } => 6,
            Op::Jmp { .. } => 7,
            Op::JmpIfZero { .. } => 8,
            Op::JmpIfNonZero { .. } => 9,
            Op::ForPrep { .. } => 10,
            Op::ForLoop { .. } => 11,
            Op::IterInit { .. } => 12,
            Op::IterNext { .. } => 13,
            Op::DefineOpaque { .. } => 14,
            Op::Check { .. } => 15,
            Op::CheckOpaque { .. } => 16,
            Op::Visit { .. } => 17,
            Op::Halt => 18,
        }
    }
}

// ---------------------------------------------------------------------------
// Handler-table dispatch
// ---------------------------------------------------------------------------

/// Where the program counter goes after a handler runs.
enum Ctl {
    /// Fall through to the next instruction.
    Next,
    /// Jump to an absolute instruction index.
    Jump(usize),
    /// Stop the program.
    Halt,
}

/// Mutable execution context threaded through every opcode handler.
struct Exec<'a, V> {
    regs: Vec<i64>,
    states: Vec<Cursor>,
    stats: PruneStats,
    visitor: V,
    lp: &'a LoweredPlan,
    n_slots: usize,
}

/// One opcode handler, monomorphized per visitor type.
type Handler<V> = fn(&mut Exec<'_, V>, &Op) -> Result<Ctl, EvalError>;

/// Number of distinct opcodes — the handler-table width.
const N_OPCODES: usize = 19;

/// Build the dispatch table, indexed by [`Op::opcode`]. The table is a plain
/// array of `fn` pointers, so each slot has a fixed target and every handler
/// stays small enough for the operand decode to inline.
fn handler_table<V: Visitor>() -> [Handler<V>; N_OPCODES] {
    [
        h_load_k,
        h_move,
        h_bin,
        h_neg,
        h_not,
        h_abs,
        h_call2,
        h_jmp,
        h_jmp_if_zero,
        h_jmp_if_nonzero,
        h_for_prep,
        h_for_loop,
        h_iter_init,
        h_iter_next,
        h_define_opaque,
        h_check,
        h_check_opaque,
        h_visit,
        h_halt,
    ]
}

fn h_load_k<V: Visitor>(ex: &mut Exec<'_, V>, op: &Op) -> Result<Ctl, EvalError> {
    let Op::LoadK { dst, k } = op else { unreachable!("mis-dispatched opcode") };
    ex.regs[*dst as usize] = *k;
    Ok(Ctl::Next)
}

fn h_move<V: Visitor>(ex: &mut Exec<'_, V>, op: &Op) -> Result<Ctl, EvalError> {
    let Op::Move { dst, src } = op else { unreachable!("mis-dispatched opcode") };
    ex.regs[*dst as usize] = ex.regs[*src as usize];
    Ok(Ctl::Next)
}

fn h_bin<V: Visitor>(ex: &mut Exec<'_, V>, op: &Op) -> Result<Ctl, EvalError> {
    let Op::Bin { op: bin, dst, a, b } = op else { unreachable!("mis-dispatched opcode") };
    let x = ex.regs[*a as usize];
    let y = ex.regs[*b as usize];
    ex.regs[*dst as usize] = match bin {
        IntBinOp::Add => x.wrapping_add(y),
        IntBinOp::Sub => x.wrapping_sub(y),
        IntBinOp::Mul => x.wrapping_mul(y),
        IntBinOp::Div => {
            if y == 0 {
                return Err(EvalError::DivisionByZero);
            }
            x.wrapping_div(y)
        }
        IntBinOp::FloorDiv => {
            if y == 0 {
                return Err(EvalError::DivisionByZero);
            }
            x.div_euclid(y)
        }
        IntBinOp::Rem => {
            if y == 0 {
                return Err(EvalError::DivisionByZero);
            }
            x.wrapping_rem(y)
        }
        IntBinOp::Lt => i64::from(x < y),
        IntBinOp::Le => i64::from(x <= y),
        IntBinOp::Gt => i64::from(x > y),
        IntBinOp::Ge => i64::from(x >= y),
        IntBinOp::Eq => i64::from(x == y),
        IntBinOp::Ne => i64::from(x != y),
        IntBinOp::And | IntBinOp::Or => {
            unreachable!("short-circuit ops compile to jumps")
        }
    };
    Ok(Ctl::Next)
}

fn h_neg<V: Visitor>(ex: &mut Exec<'_, V>, op: &Op) -> Result<Ctl, EvalError> {
    let Op::Neg { dst, a } = op else { unreachable!("mis-dispatched opcode") };
    ex.regs[*dst as usize] = ex.regs[*a as usize].wrapping_neg();
    Ok(Ctl::Next)
}

fn h_not<V: Visitor>(ex: &mut Exec<'_, V>, op: &Op) -> Result<Ctl, EvalError> {
    let Op::Not { dst, a } = op else { unreachable!("mis-dispatched opcode") };
    ex.regs[*dst as usize] = i64::from(ex.regs[*a as usize] == 0);
    Ok(Ctl::Next)
}

fn h_abs<V: Visitor>(ex: &mut Exec<'_, V>, op: &Op) -> Result<Ctl, EvalError> {
    let Op::Abs { dst, a } = op else { unreachable!("mis-dispatched opcode") };
    ex.regs[*dst as usize] = ex.regs[*a as usize].wrapping_abs();
    Ok(Ctl::Next)
}

fn h_call2<V: Visitor>(ex: &mut Exec<'_, V>, op: &Op) -> Result<Ctl, EvalError> {
    let Op::Call2 { f, dst, a, b } = op else { unreachable!("mis-dispatched opcode") };
    let x = ex.regs[*a as usize];
    let y = ex.regs[*b as usize];
    ex.regs[*dst as usize] = match f {
        Builtin::Min => x.min(y),
        Builtin::Max => x.max(y),
        Builtin::DivCeil => {
            if y == 0 {
                return Err(EvalError::DivisionByZero);
            }
            (x + y - 1).div_euclid(y)
        }
        Builtin::Gcd => {
            let (mut a, mut b) = (x.unsigned_abs(), y.unsigned_abs());
            while b != 0 {
                let t = a % b;
                a = b;
                b = t;
            }
            a as i64
        }
        Builtin::RoundUp => {
            if y == 0 {
                return Err(EvalError::DivisionByZero);
            }
            (x + y - 1).div_euclid(y) * y
        }
        Builtin::Abs => unreachable!("unary"),
    };
    Ok(Ctl::Next)
}

fn h_jmp<V: Visitor>(_ex: &mut Exec<'_, V>, op: &Op) -> Result<Ctl, EvalError> {
    let Op::Jmp { to } = op else { unreachable!("mis-dispatched opcode") };
    Ok(Ctl::Jump(*to as usize))
}

fn h_jmp_if_zero<V: Visitor>(ex: &mut Exec<'_, V>, op: &Op) -> Result<Ctl, EvalError> {
    let Op::JmpIfZero { r, to } = op else { unreachable!("mis-dispatched opcode") };
    Ok(if ex.regs[*r as usize] == 0 { Ctl::Jump(*to as usize) } else { Ctl::Next })
}

fn h_jmp_if_nonzero<V: Visitor>(ex: &mut Exec<'_, V>, op: &Op) -> Result<Ctl, EvalError> {
    let Op::JmpIfNonZero { r, to } = op else { unreachable!("mis-dispatched opcode") };
    Ok(if ex.regs[*r as usize] != 0 { Ctl::Jump(*to as usize) } else { Ctl::Next })
}

fn h_for_prep<V: Visitor>(ex: &mut Exec<'_, V>, op: &Op) -> Result<Ctl, EvalError> {
    let Op::ForPrep { base, slot, to } = op else { unreachable!("mis-dispatched opcode") };
    let base = *base as usize;
    let cur = ex.regs[base];
    let stop = ex.regs[base + 1];
    let step = ex.regs[base + 2];
    if (step > 0 && cur < stop) || (step < 0 && cur > stop) {
        ex.regs[*slot as usize] = cur;
        Ok(Ctl::Next)
    } else {
        Ok(Ctl::Jump(*to as usize))
    }
}

fn h_for_loop<V: Visitor>(ex: &mut Exec<'_, V>, op: &Op) -> Result<Ctl, EvalError> {
    let Op::ForLoop { base, slot, to } = op else { unreachable!("mis-dispatched opcode") };
    let base = *base as usize;
    let step = ex.regs[base + 2];
    let next = ex.regs[base].wrapping_add(step);
    ex.regs[base] = next;
    let stop = ex.regs[base + 1];
    if (step > 0 && next < stop) || (step < 0 && next > stop) {
        ex.regs[*slot as usize] = next;
        Ok(Ctl::Jump(*to as usize))
    } else {
        Ok(Ctl::Next)
    }
}

fn h_iter_init<V: Visitor>(ex: &mut Exec<'_, V>, op: &Op) -> Result<Ctl, EvalError> {
    let Op::IterInit { state, iter } = op else { unreachable!("mis-dispatched opcode") };
    let space = ex.lp.plan.space();
    let realized = {
        let view = SlotBindings {
            names: &ex.lp.slot_names,
            slots: &ex.regs[..ex.n_slots],
            consts: space.consts(),
        };
        space.realize_iter(*iter as usize, &view)?
    };
    ex.states[*state as usize] = Cursor::new(realized);
    Ok(Ctl::Next)
}

fn h_iter_next<V: Visitor>(ex: &mut Exec<'_, V>, op: &Op) -> Result<Ctl, EvalError> {
    let Op::IterNext { state, dst, to } = op else { unreachable!("mis-dispatched opcode") };
    match ex.states[*state as usize].next()? {
        Some(v) => {
            ex.regs[*dst as usize] = v;
            Ok(Ctl::Next)
        }
        None => Ok(Ctl::Jump(*to as usize)),
    }
}

fn h_define_opaque<V: Visitor>(ex: &mut Exec<'_, V>, op: &Op) -> Result<Ctl, EvalError> {
    let Op::DefineOpaque { derived, dst } = op else { unreachable!("mis-dispatched opcode") };
    let space = ex.lp.plan.space();
    let v = {
        let view = SlotBindings {
            names: &ex.lp.slot_names,
            slots: &ex.regs[..ex.n_slots],
            consts: space.consts(),
        };
        space.deriveds()[*derived as usize].kind.eval(&view)?
    };
    ex.regs[*dst as usize] = v.as_int()?;
    Ok(Ctl::Next)
}

fn h_check<V: Visitor>(ex: &mut Exec<'_, V>, op: &Op) -> Result<Ctl, EvalError> {
    let Op::Check { constraint, r, to } = op else { unreachable!("mis-dispatched opcode") };
    let rejected = ex.regs[*r as usize] != 0;
    ex.stats.record(*constraint as usize, rejected);
    Ok(if rejected { Ctl::Jump(*to as usize) } else { Ctl::Next })
}

fn h_check_opaque<V: Visitor>(ex: &mut Exec<'_, V>, op: &Op) -> Result<Ctl, EvalError> {
    let Op::CheckOpaque { constraint, to } = op else { unreachable!("mis-dispatched opcode") };
    let space = ex.lp.plan.space();
    let rejected = {
        let view = SlotBindings {
            names: &ex.lp.slot_names,
            slots: &ex.regs[..ex.n_slots],
            consts: space.consts(),
        };
        space.constraints()[*constraint as usize].kind.rejects(&view)?
    };
    ex.stats.record(*constraint as usize, rejected);
    Ok(if rejected { Ctl::Jump(*to as usize) } else { Ctl::Next })
}

fn h_visit<V: Visitor>(ex: &mut Exec<'_, V>, op: &Op) -> Result<Ctl, EvalError> {
    let Op::Visit { to } = op else { unreachable!("mis-dispatched opcode") };
    ex.stats.record_survivor();
    let view = PointRef::Slots {
        names: &ex.lp.slot_names,
        slots: &ex.regs[..ex.n_slots],
    };
    ex.visitor.visit(&view);
    Ok(Ctl::Jump(*to as usize))
}

fn h_halt<V: Visitor>(_ex: &mut Exec<'_, V>, _op: &Op) -> Result<Ctl, EvalError> {
    Ok(Ctl::Halt)
}

/// Runtime cursor over a realized domain (list/opaque loops).
struct Cursor {
    realized: Realized,
    idx: usize,
}

impl Cursor {
    fn empty() -> Cursor {
        Cursor { realized: Realized::Values(Vec::new()), idx: 0 }
    }

    fn new(realized: Realized) -> Cursor {
        Cursor { realized, idx: 0 }
    }

    fn next(&mut self) -> Result<Option<i64>, EvalError> {
        match &self.realized {
            Realized::Range { start, stop, step } => {
                if *step == 0 {
                    return Ok(None);
                }
                let v = start.wrapping_add((self.idx as i64).wrapping_mul(*step));
                let in_range = if *step > 0 { v < *stop } else { v > *stop };
                if in_range {
                    self.idx += 1;
                    Ok(Some(v))
                } else {
                    Ok(None)
                }
            }
            Realized::Values(values) => {
                if self.idx < values.len() {
                    let v = values[self.idx].as_int()?;
                    self.idx += 1;
                    Ok(Some(v))
                } else {
                    Ok(None)
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Compiler
// ---------------------------------------------------------------------------

struct LoopCtx {
    /// Instruction indices whose `to` must be patched to the continue point.
    continue_fixups: Vec<usize>,
    /// Instruction indices whose `to` must be patched to the loop exit.
    exit_fixups: Vec<usize>,
}

struct Compiler<'a> {
    lp: &'a LoweredPlan,
    style: VmStyle,
    ops: Vec<Op>,
    n_states: u16,
    max_reg: u16,
    temp_base: u16,
    loop_stack: Vec<LoopCtx>,
}

impl<'a> Compiler<'a> {
    fn new(lp: &'a LoweredPlan, style: VmStyle) -> Compiler<'a> {
        // Register layout: [0, n_slots) named variables; then 3 control regs
        // per loop depth for numeric-for; temporaries above.
        let n_loops = lp
            .steps
            .iter()
            .filter(|s| matches!(s, LStep::Bind { .. }))
            .count() as u16;
        let temp_base = lp.n_slots as u16 + 3 * n_loops;
        Compiler {
            lp,
            style,
            ops: Vec::new(),
            n_states: 0,
            max_reg: temp_base,
            temp_base,
            loop_stack: Vec::new(),
        }
    }

    fn touch(&mut self, r: u16) {
        self.max_reg = self.max_reg.max(r);
    }

    fn here(&self) -> u32 {
        self.ops.len() as u32
    }

    fn patch(&mut self, idx: usize, target: u32) {
        match &mut self.ops[idx] {
            Op::Jmp { to }
            | Op::JmpIfZero { to, .. }
            | Op::JmpIfNonZero { to, .. }
            | Op::ForPrep { to, .. }
            | Op::ForLoop { to, .. }
            | Op::IterNext { to, .. }
            | Op::Check { to, .. }
            | Op::CheckOpaque { to, .. }
            | Op::Visit { to } => *to = target,
            other => panic!("cannot patch {other:?}"),
        }
    }

    /// Compile `expr` placing the result in `dst`; `tmp` is the next free
    /// temporary register.
    fn expr(&mut self, e: &IntExpr, dst: u16, tmp: u16) {
        self.touch(dst);
        self.touch(tmp);
        match e {
            IntExpr::Const(k) => self.ops.push(Op::LoadK { dst, k: *k }),
            IntExpr::Slot(s) => self.ops.push(Op::Move { dst, src: *s as u16 }),
            IntExpr::Neg(a) => {
                self.expr(a, dst, tmp);
                self.ops.push(Op::Neg { dst, a: dst });
            }
            IntExpr::Not(a) => {
                self.expr(a, dst, tmp);
                self.ops.push(Op::Not { dst, a: dst });
            }
            IntExpr::Abs(a) => {
                self.expr(a, dst, tmp);
                self.ops.push(Op::Abs { dst, a: dst });
            }
            IntExpr::Ternary(c, t, f) => {
                self.expr(c, dst, tmp);
                let jz = self.ops.len();
                self.ops.push(Op::JmpIfZero { r: dst, to: PENDING });
                self.expr(t, dst, tmp);
                let jend = self.ops.len();
                self.ops.push(Op::Jmp { to: PENDING });
                let felse = self.here();
                self.patch(jz, felse);
                self.expr(f, dst, tmp);
                let end = self.here();
                self.patch(jend, end);
            }
            IntExpr::Call2(f, a, b) => {
                self.expr(a, dst, tmp);
                self.expr(b, tmp, tmp + 1);
                self.ops.push(Op::Call2 { f: *f, dst, a: dst, b: tmp });
            }
            IntExpr::Bin(op, a, b) => match op {
                IntBinOp::And => {
                    self.expr(a, dst, tmp);
                    let jz = self.ops.len();
                    self.ops.push(Op::JmpIfZero { r: dst, to: PENDING });
                    self.expr(b, dst, tmp);
                    // Normalize to 0/1: dst = (dst != 0).
                    self.ops.push(Op::LoadK { dst: tmp, k: 0 });
                    self.ops.push(Op::Bin { op: IntBinOp::Ne, dst, a: dst, b: tmp });
                    let jend = self.ops.len();
                    self.ops.push(Op::Jmp { to: PENDING });
                    let lfalse = self.here();
                    self.patch(jz, lfalse);
                    self.ops.push(Op::LoadK { dst, k: 0 });
                    let end = self.here();
                    self.patch(jend, end);
                }
                IntBinOp::Or => {
                    self.expr(a, dst, tmp);
                    let jnz = self.ops.len();
                    self.ops.push(Op::JmpIfNonZero { r: dst, to: PENDING });
                    self.expr(b, dst, tmp);
                    self.ops.push(Op::LoadK { dst: tmp, k: 0 });
                    self.ops.push(Op::Bin { op: IntBinOp::Ne, dst, a: dst, b: tmp });
                    let jend = self.ops.len();
                    self.ops.push(Op::Jmp { to: PENDING });
                    let ltrue = self.here();
                    self.patch(jnz, ltrue);
                    self.ops.push(Op::LoadK { dst, k: 1 });
                    let end = self.here();
                    self.patch(jend, end);
                }
                _ => {
                    self.expr(a, dst, tmp);
                    self.expr(b, tmp, tmp + 1);
                    self.ops.push(Op::Bin { op: *op, dst, a: dst, b: tmp });
                }
            },
        }
    }

    fn compile_steps(&mut self, pos: usize) {
        if pos >= self.lp.steps.len() {
            return;
        }
        let tmp = self.temp_base;
        match &self.lp.steps[pos] {
            LStep::Bind { slot, depth, domain, iter } => {
                let slot = *slot as u16;
                let ctrl = self.lp.n_slots as u16 + 3 * (*depth as u16);
                self.touch(ctrl + 2);
                match domain {
                    LIter::Range { start, stop, step } => {
                        self.compile_range_loop(
                            slot,
                            ctrl,
                            &start.clone(),
                            &stop.clone(),
                            &step.clone(),
                            pos,
                        );
                    }
                    LIter::Values(_) | LIter::Opaque { .. } => {
                        // List/opaque domains use the generic iterator path
                        // in every style.
                        let state = self.n_states;
                        self.n_states += 1;
                        self.ops.push(Op::IterInit { state, iter: *iter as u32 });
                        let top = self.here();
                        let next_idx = self.ops.len();
                        self.ops.push(Op::IterNext { state, dst: slot, to: PENDING });
                        self.loop_stack
                            .push(LoopCtx { continue_fixups: vec![], exit_fixups: vec![next_idx] });
                        self.compile_steps(pos + 1);
                        let ctx = self.loop_stack.pop().expect("loop ctx");
                        // Continue point: jump back to IterNext.
                        for f in ctx.continue_fixups {
                            self.patch(f, top);
                        }
                        self.ops.push(Op::Jmp { to: top });
                        let exit = self.here();
                        for f in ctx.exit_fixups {
                            self.patch(f, exit);
                        }
                    }
                }
            }
            LStep::Define { slot, body, derived } => {
                match body {
                    LBody::Expr(e) => {
                        let e = e.clone();
                        self.expr(&e, *slot as u16, tmp);
                    }
                    LBody::Opaque => self.ops.push(Op::DefineOpaque {
                        derived: *derived as u32,
                        dst: *slot as u16,
                    }),
                }
                self.compile_steps(pos + 1);
            }
            LStep::Check { constraint, body } => {
                let cidx = *constraint as u32;
                match body {
                    LBody::Expr(e) => {
                        let e = e.clone();
                        self.expr(&e, tmp, tmp + 1);
                        let idx = self.ops.len();
                        self.ops.push(Op::Check { constraint: cidx, r: tmp, to: PENDING });
                        if let Some(ctx) = self.loop_stack.last_mut() {
                            ctx.continue_fixups.push(idx);
                        }
                    }
                    LBody::Opaque => {
                        let idx = self.ops.len();
                        self.ops.push(Op::CheckOpaque { constraint: cidx, to: PENDING });
                        if let Some(ctx) = self.loop_stack.last_mut() {
                            ctx.continue_fixups.push(idx);
                        }
                    }
                }
                self.compile_steps(pos + 1);
            }
            LStep::Visit => {
                let idx = self.ops.len();
                self.ops.push(Op::Visit { to: PENDING });
                if let Some(ctx) = self.loop_stack.last_mut() {
                    ctx.continue_fixups.push(idx);
                }
            }
        }
    }

    fn compile_range_loop(
        &mut self,
        slot: u16,
        ctrl: u16,
        start: &IntExpr,
        stop: &IntExpr,
        step: &IntExpr,
        pos: usize,
    ) {
        let tmp = self.temp_base;
        match self.style {
            VmStyle::NumericFor => {
                // Control block: ctrl = current, ctrl+1 = stop, ctrl+2 = step.
                self.expr(start, ctrl, tmp);
                self.expr(stop, ctrl + 1, tmp);
                self.expr(step, ctrl + 2, tmp);
                let prep_idx = self.ops.len();
                self.ops.push(Op::ForPrep { base: ctrl, slot, to: PENDING });
                let body_top = self.here();
                self.loop_stack
                    .push(LoopCtx { continue_fixups: vec![], exit_fixups: vec![prep_idx] });
                self.compile_steps(pos + 1);
                let ctx = self.loop_stack.pop().expect("ctx");
                let cont = self.here();
                for f in ctx.continue_fixups {
                    self.patch(f, cont);
                }
                self.ops.push(Op::ForLoop { base: ctrl, slot, to: body_top });
                let exit = self.here();
                for f in ctx.exit_fixups {
                    self.patch(f, exit);
                }
            }
            VmStyle::While => {
                // var = start; while in_range(var) { body; var += step } —
                // stop and step are RE-EVALUATED each iteration, the cost
                // signature of a `while` in the paper's measurement.
                self.expr(start, slot, tmp);
                let top = self.here();
                let cond = self.emit_in_range_check(slot, stop, step);
                let jz_idx = self.ops.len();
                self.ops.push(Op::JmpIfZero { r: cond, to: PENDING });
                self.loop_stack
                    .push(LoopCtx { continue_fixups: vec![], exit_fixups: vec![jz_idx] });
                self.compile_steps(pos + 1);
                let ctx = self.loop_stack.pop().expect("ctx");
                let cont = self.here();
                for f in ctx.continue_fixups {
                    self.patch(f, cont);
                }
                // var += step (re-evaluate step).
                self.expr(step, tmp, tmp + 1);
                self.ops.push(Op::Bin { op: IntBinOp::Add, dst: slot, a: slot, b: tmp });
                self.ops.push(Op::Jmp { to: top });
                let exit = self.here();
                for f in ctx.exit_fixups {
                    self.patch(f, exit);
                }
            }
            VmStyle::RepeatUntil => {
                // var = start; if !in_range(var) goto exit;
                // repeat { body; var += step } until !in_range(var)
                self.expr(start, slot, tmp);
                let cond = self.emit_in_range_check(slot, stop, step);
                let jz_idx = self.ops.len();
                self.ops.push(Op::JmpIfZero { r: cond, to: PENDING });
                let body_top = self.here();
                self.loop_stack
                    .push(LoopCtx { continue_fixups: vec![], exit_fixups: vec![jz_idx] });
                self.compile_steps(pos + 1);
                let ctx = self.loop_stack.pop().expect("ctx");
                let cont = self.here();
                for f in ctx.continue_fixups {
                    self.patch(f, cont);
                }
                self.expr(step, tmp, tmp + 1);
                self.ops.push(Op::Bin { op: IntBinOp::Add, dst: slot, a: slot, b: tmp });
                let cond = self.emit_in_range_check(slot, stop, step);
                self.ops.push(Op::JmpIfNonZero { r: cond, to: body_top });
                let exit = self.here();
                for f in ctx.exit_fixups {
                    self.patch(f, exit);
                }
            }
        }
    }

    /// Emit `(step > 0 && var < stop) || (step < 0 && var > stop)` handling
    /// dynamic step signs; returns the register holding the 0/1 result.
    fn emit_in_range_check(&mut self, var: u16, stop: &IntExpr, step: &IntExpr) -> u16 {
        let tmp = self.temp_base;
        let (r_stop, r_step, r_zero, r_c1, r_c2, r_res) =
            (tmp, tmp + 1, tmp + 2, tmp + 3, tmp + 4, tmp + 5);
        self.touch(r_res + 1);
        self.expr(stop, r_stop, r_res + 1);
        self.expr(step, r_step, r_res + 1);
        // Fast path for the overwhelmingly common case of a constant,
        // positive step: a single comparison, like real generated code.
        if let Some(k) = step.as_const() {
            if k > 0 {
                self.ops.push(Op::Bin { op: IntBinOp::Lt, dst: r_res, a: var, b: r_stop });
                return r_res;
            }
            if k < 0 {
                self.ops.push(Op::Bin { op: IntBinOp::Gt, dst: r_res, a: var, b: r_stop });
                return r_res;
            }
        }
        self.ops.push(Op::LoadK { dst: r_zero, k: 0 });
        // c1 = step > 0 && var < stop  (bitwise-style: both are 0/1, use Mul)
        self.ops.push(Op::Bin { op: IntBinOp::Gt, dst: r_c1, a: r_step, b: r_zero });
        self.ops.push(Op::Bin { op: IntBinOp::Lt, dst: r_c2, a: var, b: r_stop });
        self.ops.push(Op::Bin { op: IntBinOp::Mul, dst: r_c1, a: r_c1, b: r_c2 });
        // c2 = step < 0 && var > stop
        self.ops.push(Op::Bin { op: IntBinOp::Lt, dst: r_res, a: r_step, b: r_zero });
        self.ops.push(Op::Bin { op: IntBinOp::Gt, dst: r_c2, a: var, b: r_stop });
        self.ops.push(Op::Bin { op: IntBinOp::Mul, dst: r_res, a: r_res, b: r_c2 });
        // res = c1 | c2 (sum of disjoint 0/1 flags)
        self.ops.push(Op::Bin { op: IntBinOp::Add, dst: r_res, a: r_res, b: r_c1 });
        r_res
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beast_core::constraint::ConstraintClass;
    use beast_core::expr::{min2, var};
    use beast_core::plan::{Plan, PlanOptions};
    use beast_core::space::Space;
    use beast_core::value::Value;

    use crate::visit::{CollectVisitor, CountVisitor};

    fn lowered(space: &std::sync::Arc<Space>) -> LoweredPlan {
        let plan = Plan::new(space, PlanOptions::default()).unwrap();
        LoweredPlan::new(&plan).unwrap()
    }

    fn mini_space() -> std::sync::Arc<Space> {
        Space::builder("mini")
            .constant("cap", 20)
            .range("a", 1, 5)
            .range_step("b", var("a"), 13, var("a"))
            .derived("ab", var("a") * var("b"))
            .constraint("over", ConstraintClass::Hard, var("ab").gt(var("cap")))
            .build()
            .unwrap()
    }

    #[test]
    fn all_styles_agree() {
        let space = mini_space();
        let lp = lowered(&space);
        let mut results = Vec::new();
        for style in [VmStyle::NumericFor, VmStyle::While, VmStyle::RepeatUntil] {
            let vm = Vm::compile(&lp, style);
            let out = vm
                .run(CollectVisitor::new(vm.point_names().clone(), 10_000))
                .unwrap();
            let pts: Vec<(i64, i64, i64)> = out
                .visitor
                .points
                .iter()
                .map(|p| (p.get_int("a"), p.get_int("b"), p.get_int("ab")))
                .collect();
            results.push((out.stats, pts));
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2]);
        assert!(!results[0].1.is_empty());
    }

    #[test]
    fn matches_brute_force() {
        let space = mini_space();
        let lp = lowered(&space);
        let vm = Vm::compile(&lp, VmStyle::NumericFor);
        let out = vm.run(CountVisitor::default()).unwrap();
        let mut expected = 0u64;
        for a in 1..5i64 {
            let mut b = a;
            while b < 13 {
                if a * b <= 20 {
                    expected += 1;
                }
                b += a;
            }
        }
        assert_eq!(out.visitor.count, expected);
    }

    #[test]
    fn empty_ranges_run_zero_times() {
        let space = Space::builder("empty")
            .range("x", 5, 5)
            .build()
            .unwrap();
        let lp = lowered(&space);
        for style in [VmStyle::NumericFor, VmStyle::While, VmStyle::RepeatUntil] {
            let vm = Vm::compile(&lp, style);
            let out = vm.run(CountVisitor::default()).unwrap();
            assert_eq!(out.visitor.count, 0, "style {style:?}");
        }
    }

    #[test]
    fn negative_steps() {
        let space = Space::builder("down")
            .range_step("x", 9, 0, -3)
            .build()
            .unwrap();
        let lp = lowered(&space);
        for style in [VmStyle::NumericFor, VmStyle::While, VmStyle::RepeatUntil] {
            let vm = Vm::compile(&lp, style);
            let out = vm
                .run(CollectVisitor::new(vm.point_names().clone(), 10))
                .unwrap();
            let xs: Vec<i64> = out.visitor.points.iter().map(|p| p.get_int("x")).collect();
            assert_eq!(xs, vec![9, 6, 3], "style {style:?}");
        }
    }

    #[test]
    fn list_iterators() {
        let space = Space::builder("list")
            .list("x", [2i64, 7, 1])
            .build()
            .unwrap();
        let lp = lowered(&space);
        let vm = Vm::compile(&lp, VmStyle::NumericFor);
        let out = vm
            .run(CollectVisitor::new(vm.point_names().clone(), 10))
            .unwrap();
        let xs: Vec<i64> = out.visitor.points.iter().map(|p| p.get_int("x")).collect();
        assert_eq!(xs, vec![2, 7, 1]);
    }

    #[test]
    fn opaque_iterators_deriveds_constraints() {
        let space = Space::builder("opaque")
            .constant("cap", 6)
            .range("n", 1, 6)
            .deferred_iter("d", &["n"], |env| {
                let n = env.require_int("n")?;
                Ok(Realized::Range { start: n, stop: 0, step: -1 })
            })
            .derived_fn("dd", &["d"], |env| Ok(Value::Int(env.require_int("d")? * 2)))
            .constraint_fn("big", ConstraintClass::Soft, &["dd", "cap"], |env| {
                Ok(env.require_int("dd")? > env.require_int("cap")?)
            })
            .build()
            .unwrap();
        let lp = lowered(&space);
        let vm = Vm::compile(&lp, VmStyle::NumericFor);
        let out = vm.run(CountVisitor::default()).unwrap();
        // survivors: pairs (n, d) with d in n..1 and 2d <= 6.
        let mut expected = 0u64;
        for n in 1..6i64 {
            for d in (1..=n).rev() {
                if 2 * d <= 6 {
                    expected += 1;
                }
            }
        }
        assert_eq!(out.visitor.count, expected);
    }

    #[test]
    fn builtins_compile() {
        let space = Space::builder("builtins")
            .range("x", 1, 10)
            .derived("m", min2(var("x"), 5))
            .constraint("over", ConstraintClass::Generic, var("m").ge(5))
            .build()
            .unwrap();
        let lp = lowered(&space);
        let vm = Vm::compile(&lp, VmStyle::NumericFor);
        let out = vm.run(CountVisitor::default()).unwrap();
        // x in 1..10, keep min(x,5) < 5 → x in 1..=4.
        assert_eq!(out.visitor.count, 4);
    }

    #[test]
    fn short_circuit_logic_compiles() {
        // x != 0 && 12 % x == 0 — division by zero must not happen at x=0.
        let space = Space::builder("sc")
            .range("x", 0, 13)
            .constraint(
                "not_divisor",
                ConstraintClass::Generic,
                var("x").ne(0).and((twelve() % var("x")).eq(0)).not(),
            )
            .build()
            .unwrap();
        fn twelve() -> beast_core::expr::E {
            beast_core::expr::lit(12)
        }
        let lp = lowered(&space);
        let vm = Vm::compile(&lp, VmStyle::NumericFor);
        let out = vm.run(CountVisitor::default()).unwrap();
        // Divisors of 12 in 1..12: 1,2,3,4,6,12 → 6 survivors.
        assert_eq!(out.visitor.count, 6);
    }

    #[test]
    fn program_length_reasonable() {
        let space = mini_space();
        let lp = lowered(&space);
        let vm = Vm::compile(&lp, VmStyle::NumericFor);
        assert!(vm.len() > 5);
        assert!(!vm.is_empty());
    }
}
