//! The *bytecode VM*: a register-machine evaluation backend whose cost model
//! mirrors Lua's, used to reproduce Fig. 18 of the paper.
//!
//! The lowered plan is compiled to a flat instruction stream executed by a
//! dispatch loop over `i64` registers — faster than the hash-map walker
//! (Lua's registers vs Python's dicts, the ~5× gap the paper measures), but
//! still paying interpreter dispatch per operation, unlike the compiled
//! backend.
//!
//! Loop compilation comes in three styles, matching the paper's Lua
//! variants:
//!
//! * [`VmStyle::NumericFor`] — a dedicated `ForPrep`/`ForLoop` instruction
//!   pair keeps the control state in fixed registers (Lua's numeric `for`,
//!   the fastest variant in Fig. 18);
//! * [`VmStyle::While`] — the bound and stride expressions are re-evaluated
//!   through the register file on every iteration (Lua `while`);
//! * [`VmStyle::RepeatUntil`] — post-test loop with an explicit emptiness
//!   pre-check (Lua `repeat ... until`).

use std::sync::Arc;

use beast_core::error::EvalError;
use beast_core::expr::Builtin;
use beast_core::ir::{IntBinOp, IntExpr, LBody, LIter, LStep, LoweredPlan};
use beast_core::iterator::Realized;

use crate::compiled::SlotBindings;
use crate::point::PointRef;
use crate::stats::{BlockStats, PruneStats};
use crate::visit::Visitor;
use crate::walker::SweepOutcome;

/// Loop-compilation strategy, the experimental variable of Fig. 18.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VmStyle {
    /// Lua-style numeric `for` with dedicated control instructions.
    #[default]
    NumericFor,
    /// `while` loop: condition (and stride) re-evaluated every iteration.
    While,
    /// `repeat ... until` post-test loop with emptiness pre-check.
    RepeatUntil,
}

/// One VM instruction. Registers are `u16` indices; jump targets are
/// instruction indices.
#[derive(Debug, Clone, PartialEq)]
enum Op {
    /// `regs[dst] = k`
    LoadK { dst: u16, k: i64 },
    /// `regs[dst] = regs[src]`
    Move { dst: u16, src: u16 },
    /// `regs[dst] = regs[a] <op> regs[b]` (non-short-circuit ops only).
    Bin { op: IntBinOp, dst: u16, a: u16, b: u16 },
    /// `regs[dst] = -regs[a]`
    Neg { dst: u16, a: u16 },
    /// `regs[dst] = !regs[a]` (0/1)
    Not { dst: u16, a: u16 },
    /// `regs[dst] = |regs[a]|`
    Abs { dst: u16, a: u16 },
    /// Two-argument builtin.
    Call2 { f: Builtin, dst: u16, a: u16, b: u16 },
    /// Unconditional jump.
    Jmp { to: u32 },
    /// Jump if `regs[r] == 0`.
    JmpIfZero { r: u16, to: u32 },
    /// Jump if `regs[r] != 0`.
    JmpIfNonZero { r: u16, to: u32 },
    /// Numeric-for prologue: control block at `base` = (current, stop, step),
    /// already initialized. If the range is empty jump `to`; else copy
    /// current into `slot`.
    ForPrep { base: u16, slot: u16, to: u32 },
    /// Numeric-for back-edge: advance, test, copy into `slot`, jump `to`
    /// (the body start) while in range.
    ForLoop { base: u16, slot: u16, to: u32 },
    /// Realize iterator `iter` (list/opaque) into iterator-state `state`.
    IterInit { state: u16, iter: u32 },
    /// Advance iterator-state `state`, writing into `dst`; jump `to` when
    /// exhausted.
    IterNext { state: u16, dst: u16, to: u32 },
    /// Evaluate opaque derived `derived` into `dst` via closure callback.
    DefineOpaque { derived: u32, dst: u16 },
    /// Record constraint `constraint` with value `regs[r]`; if nonzero,
    /// prune by jumping `to` (the innermost loop's continue point).
    Check { constraint: u32, r: u16, to: u32 },
    /// Opaque constraint via closure callback; record and prune like `Check`.
    CheckOpaque { constraint: u32, to: u32 },
    /// Survivor: feed the named slots to the visitor, then jump `to`
    /// (the innermost loop's continue point).
    Visit { to: u32 },
    /// End of program.
    Halt,
}

/// Placeholder jump target fixed up when the enclosing loop closes.
const PENDING: u32 = u32::MAX;

/// A compiled VM program for one lowered plan.
pub struct Vm {
    lp: LoweredPlan,
    style: VmStyle,
    ops: Vec<Op>,
    n_regs: u16,
    n_states: u16,
    point_names: Arc<[Arc<str>]>,
}

impl Vm {
    /// Compile a lowered plan with the given loop style.
    pub fn compile(lp: &LoweredPlan, style: VmStyle) -> Vm {
        let mut c = Compiler::new(lp, style);
        c.compile_steps(0);
        c.ops.push(Op::Halt);
        // Any pruning jumps left unpatched target Halt (no enclosing loop —
        // preamble checks).
        let halt = (c.ops.len() - 1) as u32;
        for op in &mut c.ops {
            let to = match op {
                Op::Jmp { to }
                | Op::JmpIfZero { to, .. }
                | Op::JmpIfNonZero { to, .. }
                | Op::ForPrep { to, .. }
                | Op::ForLoop { to, .. }
                | Op::IterNext { to, .. }
                | Op::Check { to, .. }
                | Op::CheckOpaque { to, .. }
                | Op::Visit { to } => to,
                _ => continue,
            };
            if *to == PENDING {
                *to = halt;
            }
        }
        let point_names: Arc<[Arc<str>]> =
            Arc::from(lp.slot_names.clone().into_boxed_slice());
        Vm {
            lp: lp.clone(),
            style,
            ops: c.ops,
            n_regs: c.max_reg + 1,
            n_states: c.n_states,
            point_names,
        }
    }

    /// Names reported for visited points (slot order).
    pub fn point_names(&self) -> &Arc<[Arc<str>]> {
        &self.point_names
    }

    /// The loop style this program was compiled with.
    pub fn style(&self) -> VmStyle {
        self.style
    }

    /// Number of instructions (useful for tests and reports).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the program is trivially empty (never: there is always Halt).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Execute the program, feeding survivors to the visitor.
    pub fn run<V: Visitor>(&self, visitor: V) -> Result<SweepOutcome<V>, EvalError> {
        let space = self.lp.plan.space();
        let n_slots = self.lp.n_slots as usize;
        let mut regs = vec![0i64; self.n_regs as usize];
        let mut states: Vec<Cursor> = (0..self.n_states).map(|_| Cursor::empty()).collect();
        let mut stats = PruneStats::new(space.constraints().len());
        let mut visitor = visitor;

        let ops = &self.ops[..];
        let mut pc: usize = 0;
        loop {
            match ops[pc] {
                Op::LoadK { dst, k } => {
                    regs[dst as usize] = k;
                    pc += 1;
                }
                Op::Move { dst, src } => {
                    regs[dst as usize] = regs[src as usize];
                    pc += 1;
                }
                Op::Bin { op, dst, a, b } => {
                    let x = regs[a as usize];
                    let y = regs[b as usize];
                    regs[dst as usize] = match op {
                        IntBinOp::Add => x.wrapping_add(y),
                        IntBinOp::Sub => x.wrapping_sub(y),
                        IntBinOp::Mul => x.wrapping_mul(y),
                        IntBinOp::Div => {
                            if y == 0 {
                                return Err(EvalError::DivisionByZero);
                            }
                            x.wrapping_div(y)
                        }
                        IntBinOp::FloorDiv => {
                            if y == 0 {
                                return Err(EvalError::DivisionByZero);
                            }
                            x.div_euclid(y)
                        }
                        IntBinOp::Rem => {
                            if y == 0 {
                                return Err(EvalError::DivisionByZero);
                            }
                            x.wrapping_rem(y)
                        }
                        IntBinOp::Lt => i64::from(x < y),
                        IntBinOp::Le => i64::from(x <= y),
                        IntBinOp::Gt => i64::from(x > y),
                        IntBinOp::Ge => i64::from(x >= y),
                        IntBinOp::Eq => i64::from(x == y),
                        IntBinOp::Ne => i64::from(x != y),
                        IntBinOp::And | IntBinOp::Or => {
                            unreachable!("short-circuit ops compile to jumps")
                        }
                    };
                    pc += 1;
                }
                Op::Neg { dst, a } => {
                    regs[dst as usize] = regs[a as usize].wrapping_neg();
                    pc += 1;
                }
                Op::Not { dst, a } => {
                    regs[dst as usize] = i64::from(regs[a as usize] == 0);
                    pc += 1;
                }
                Op::Abs { dst, a } => {
                    regs[dst as usize] = regs[a as usize].wrapping_abs();
                    pc += 1;
                }
                Op::Call2 { f, dst, a, b } => {
                    let x = regs[a as usize];
                    let y = regs[b as usize];
                    regs[dst as usize] = match f {
                        Builtin::Min => x.min(y),
                        Builtin::Max => x.max(y),
                        Builtin::DivCeil => {
                            if y == 0 {
                                return Err(EvalError::DivisionByZero);
                            }
                            (x + y - 1).div_euclid(y)
                        }
                        Builtin::Gcd => {
                            let (mut a, mut b) = (x.unsigned_abs(), y.unsigned_abs());
                            while b != 0 {
                                let t = a % b;
                                a = b;
                                b = t;
                            }
                            a as i64
                        }
                        Builtin::RoundUp => {
                            if y == 0 {
                                return Err(EvalError::DivisionByZero);
                            }
                            (x + y - 1).div_euclid(y) * y
                        }
                        Builtin::Abs => unreachable!("unary"),
                    };
                    pc += 1;
                }
                Op::Jmp { to } => pc = to as usize,
                Op::JmpIfZero { r, to } => {
                    pc = if regs[r as usize] == 0 { to as usize } else { pc + 1 };
                }
                Op::JmpIfNonZero { r, to } => {
                    pc = if regs[r as usize] != 0 { to as usize } else { pc + 1 };
                }
                Op::ForPrep { base, slot, to } => {
                    let cur = regs[base as usize];
                    let stop = regs[base as usize + 1];
                    let step = regs[base as usize + 2];
                    let runnable =
                        (step > 0 && cur < stop) || (step < 0 && cur > stop);
                    if runnable {
                        regs[slot as usize] = cur;
                        pc += 1;
                    } else {
                        pc = to as usize;
                    }
                }
                Op::ForLoop { base, slot, to } => {
                    let step = regs[base as usize + 2];
                    let next = regs[base as usize].wrapping_add(step);
                    regs[base as usize] = next;
                    let stop = regs[base as usize + 1];
                    let in_range = (step > 0 && next < stop) || (step < 0 && next > stop);
                    if in_range {
                        regs[slot as usize] = next;
                        pc = to as usize;
                    } else {
                        pc += 1;
                    }
                }
                Op::IterInit { state, iter } => {
                    let realized = {
                        let view = SlotBindings {
                            names: &self.lp.slot_names,
                            slots: &regs[..n_slots],
                            consts: space.consts(),
                        };
                        space.realize_iter(iter as usize, &view)?
                    };
                    states[state as usize] = Cursor::new(realized);
                    pc += 1;
                }
                Op::IterNext { state, dst, to } => match states[state as usize].next()? {
                    Some(v) => {
                        regs[dst as usize] = v;
                        pc += 1;
                    }
                    None => pc = to as usize,
                },
                Op::DefineOpaque { derived, dst } => {
                    let v = {
                        let view = SlotBindings {
                            names: &self.lp.slot_names,
                            slots: &regs[..n_slots],
                            consts: space.consts(),
                        };
                        space.deriveds()[derived as usize].kind.eval(&view)?
                    };
                    regs[dst as usize] = v.as_int()?;
                    pc += 1;
                }
                Op::Check { constraint, r, to } => {
                    let rejected = regs[r as usize] != 0;
                    stats.record(constraint as usize, rejected);
                    pc = if rejected { to as usize } else { pc + 1 };
                }
                Op::CheckOpaque { constraint, to } => {
                    let rejected = {
                        let view = SlotBindings {
                            names: &self.lp.slot_names,
                            slots: &regs[..n_slots],
                            consts: space.consts(),
                        };
                        space.constraints()[constraint as usize].kind.rejects(&view)?
                    };
                    stats.record(constraint as usize, rejected);
                    pc = if rejected { to as usize } else { pc + 1 };
                }
                Op::Visit { to } => {
                    stats.record_survivor();
                    let view = PointRef::Slots {
                        names: &self.lp.slot_names,
                        slots: &regs[..n_slots],
                    };
                    visitor.visit(&view);
                    pc = to as usize;
                }
                Op::Halt => break,
            }
        }
        Ok(SweepOutcome { stats, blocks: BlockStats::default(), schedule: None, visitor })
    }
}

/// Runtime cursor over a realized domain (list/opaque loops).
struct Cursor {
    realized: Realized,
    idx: usize,
}

impl Cursor {
    fn empty() -> Cursor {
        Cursor { realized: Realized::Values(Vec::new()), idx: 0 }
    }

    fn new(realized: Realized) -> Cursor {
        Cursor { realized, idx: 0 }
    }

    fn next(&mut self) -> Result<Option<i64>, EvalError> {
        match &self.realized {
            Realized::Range { start, stop, step } => {
                if *step == 0 {
                    return Ok(None);
                }
                let v = start.wrapping_add((self.idx as i64).wrapping_mul(*step));
                let in_range = if *step > 0 { v < *stop } else { v > *stop };
                if in_range {
                    self.idx += 1;
                    Ok(Some(v))
                } else {
                    Ok(None)
                }
            }
            Realized::Values(values) => {
                if self.idx < values.len() {
                    let v = values[self.idx].as_int()?;
                    self.idx += 1;
                    Ok(Some(v))
                } else {
                    Ok(None)
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Compiler
// ---------------------------------------------------------------------------

struct LoopCtx {
    /// Instruction indices whose `to` must be patched to the continue point.
    continue_fixups: Vec<usize>,
    /// Instruction indices whose `to` must be patched to the loop exit.
    exit_fixups: Vec<usize>,
}

struct Compiler<'a> {
    lp: &'a LoweredPlan,
    style: VmStyle,
    ops: Vec<Op>,
    n_states: u16,
    max_reg: u16,
    temp_base: u16,
    loop_stack: Vec<LoopCtx>,
}

impl<'a> Compiler<'a> {
    fn new(lp: &'a LoweredPlan, style: VmStyle) -> Compiler<'a> {
        // Register layout: [0, n_slots) named variables; then 3 control regs
        // per loop depth for numeric-for; temporaries above.
        let n_loops = lp
            .steps
            .iter()
            .filter(|s| matches!(s, LStep::Bind { .. }))
            .count() as u16;
        let temp_base = lp.n_slots as u16 + 3 * n_loops;
        Compiler {
            lp,
            style,
            ops: Vec::new(),
            n_states: 0,
            max_reg: temp_base,
            temp_base,
            loop_stack: Vec::new(),
        }
    }

    fn touch(&mut self, r: u16) {
        self.max_reg = self.max_reg.max(r);
    }

    fn here(&self) -> u32 {
        self.ops.len() as u32
    }

    fn patch(&mut self, idx: usize, target: u32) {
        match &mut self.ops[idx] {
            Op::Jmp { to }
            | Op::JmpIfZero { to, .. }
            | Op::JmpIfNonZero { to, .. }
            | Op::ForPrep { to, .. }
            | Op::ForLoop { to, .. }
            | Op::IterNext { to, .. }
            | Op::Check { to, .. }
            | Op::CheckOpaque { to, .. }
            | Op::Visit { to } => *to = target,
            other => panic!("cannot patch {other:?}"),
        }
    }

    /// Compile `expr` placing the result in `dst`; `tmp` is the next free
    /// temporary register.
    fn expr(&mut self, e: &IntExpr, dst: u16, tmp: u16) {
        self.touch(dst);
        self.touch(tmp);
        match e {
            IntExpr::Const(k) => self.ops.push(Op::LoadK { dst, k: *k }),
            IntExpr::Slot(s) => self.ops.push(Op::Move { dst, src: *s as u16 }),
            IntExpr::Neg(a) => {
                self.expr(a, dst, tmp);
                self.ops.push(Op::Neg { dst, a: dst });
            }
            IntExpr::Not(a) => {
                self.expr(a, dst, tmp);
                self.ops.push(Op::Not { dst, a: dst });
            }
            IntExpr::Abs(a) => {
                self.expr(a, dst, tmp);
                self.ops.push(Op::Abs { dst, a: dst });
            }
            IntExpr::Ternary(c, t, f) => {
                self.expr(c, dst, tmp);
                let jz = self.ops.len();
                self.ops.push(Op::JmpIfZero { r: dst, to: PENDING });
                self.expr(t, dst, tmp);
                let jend = self.ops.len();
                self.ops.push(Op::Jmp { to: PENDING });
                let felse = self.here();
                self.patch(jz, felse);
                self.expr(f, dst, tmp);
                let end = self.here();
                self.patch(jend, end);
            }
            IntExpr::Call2(f, a, b) => {
                self.expr(a, dst, tmp);
                self.expr(b, tmp, tmp + 1);
                self.ops.push(Op::Call2 { f: *f, dst, a: dst, b: tmp });
            }
            IntExpr::Bin(op, a, b) => match op {
                IntBinOp::And => {
                    self.expr(a, dst, tmp);
                    let jz = self.ops.len();
                    self.ops.push(Op::JmpIfZero { r: dst, to: PENDING });
                    self.expr(b, dst, tmp);
                    // Normalize to 0/1: dst = (dst != 0).
                    self.ops.push(Op::LoadK { dst: tmp, k: 0 });
                    self.ops.push(Op::Bin { op: IntBinOp::Ne, dst, a: dst, b: tmp });
                    let jend = self.ops.len();
                    self.ops.push(Op::Jmp { to: PENDING });
                    let lfalse = self.here();
                    self.patch(jz, lfalse);
                    self.ops.push(Op::LoadK { dst, k: 0 });
                    let end = self.here();
                    self.patch(jend, end);
                }
                IntBinOp::Or => {
                    self.expr(a, dst, tmp);
                    let jnz = self.ops.len();
                    self.ops.push(Op::JmpIfNonZero { r: dst, to: PENDING });
                    self.expr(b, dst, tmp);
                    self.ops.push(Op::LoadK { dst: tmp, k: 0 });
                    self.ops.push(Op::Bin { op: IntBinOp::Ne, dst, a: dst, b: tmp });
                    let jend = self.ops.len();
                    self.ops.push(Op::Jmp { to: PENDING });
                    let ltrue = self.here();
                    self.patch(jnz, ltrue);
                    self.ops.push(Op::LoadK { dst, k: 1 });
                    let end = self.here();
                    self.patch(jend, end);
                }
                _ => {
                    self.expr(a, dst, tmp);
                    self.expr(b, tmp, tmp + 1);
                    self.ops.push(Op::Bin { op: *op, dst, a: dst, b: tmp });
                }
            },
        }
    }

    fn compile_steps(&mut self, pos: usize) {
        if pos >= self.lp.steps.len() {
            return;
        }
        let tmp = self.temp_base;
        match &self.lp.steps[pos] {
            LStep::Bind { slot, depth, domain, iter } => {
                let slot = *slot as u16;
                let ctrl = self.lp.n_slots as u16 + 3 * (*depth as u16);
                self.touch(ctrl + 2);
                match domain {
                    LIter::Range { start, stop, step } => {
                        self.compile_range_loop(
                            slot,
                            ctrl,
                            &start.clone(),
                            &stop.clone(),
                            &step.clone(),
                            pos,
                        );
                    }
                    LIter::Values(_) | LIter::Opaque { .. } => {
                        // List/opaque domains use the generic iterator path
                        // in every style.
                        let state = self.n_states;
                        self.n_states += 1;
                        self.ops.push(Op::IterInit { state, iter: *iter as u32 });
                        let top = self.here();
                        let next_idx = self.ops.len();
                        self.ops.push(Op::IterNext { state, dst: slot, to: PENDING });
                        self.loop_stack
                            .push(LoopCtx { continue_fixups: vec![], exit_fixups: vec![next_idx] });
                        self.compile_steps(pos + 1);
                        let ctx = self.loop_stack.pop().expect("loop ctx");
                        // Continue point: jump back to IterNext.
                        for f in ctx.continue_fixups {
                            self.patch(f, top);
                        }
                        self.ops.push(Op::Jmp { to: top });
                        let exit = self.here();
                        for f in ctx.exit_fixups {
                            self.patch(f, exit);
                        }
                    }
                }
            }
            LStep::Define { slot, body, derived } => {
                match body {
                    LBody::Expr(e) => {
                        let e = e.clone();
                        self.expr(&e, *slot as u16, tmp);
                    }
                    LBody::Opaque => self.ops.push(Op::DefineOpaque {
                        derived: *derived as u32,
                        dst: *slot as u16,
                    }),
                }
                self.compile_steps(pos + 1);
            }
            LStep::Check { constraint, body } => {
                let cidx = *constraint as u32;
                match body {
                    LBody::Expr(e) => {
                        let e = e.clone();
                        self.expr(&e, tmp, tmp + 1);
                        let idx = self.ops.len();
                        self.ops.push(Op::Check { constraint: cidx, r: tmp, to: PENDING });
                        if let Some(ctx) = self.loop_stack.last_mut() {
                            ctx.continue_fixups.push(idx);
                        }
                    }
                    LBody::Opaque => {
                        let idx = self.ops.len();
                        self.ops.push(Op::CheckOpaque { constraint: cidx, to: PENDING });
                        if let Some(ctx) = self.loop_stack.last_mut() {
                            ctx.continue_fixups.push(idx);
                        }
                    }
                }
                self.compile_steps(pos + 1);
            }
            LStep::Visit => {
                let idx = self.ops.len();
                self.ops.push(Op::Visit { to: PENDING });
                if let Some(ctx) = self.loop_stack.last_mut() {
                    ctx.continue_fixups.push(idx);
                }
            }
        }
    }

    fn compile_range_loop(
        &mut self,
        slot: u16,
        ctrl: u16,
        start: &IntExpr,
        stop: &IntExpr,
        step: &IntExpr,
        pos: usize,
    ) {
        let tmp = self.temp_base;
        match self.style {
            VmStyle::NumericFor => {
                // Control block: ctrl = current, ctrl+1 = stop, ctrl+2 = step.
                self.expr(start, ctrl, tmp);
                self.expr(stop, ctrl + 1, tmp);
                self.expr(step, ctrl + 2, tmp);
                let prep_idx = self.ops.len();
                self.ops.push(Op::ForPrep { base: ctrl, slot, to: PENDING });
                let body_top = self.here();
                self.loop_stack
                    .push(LoopCtx { continue_fixups: vec![], exit_fixups: vec![prep_idx] });
                self.compile_steps(pos + 1);
                let ctx = self.loop_stack.pop().expect("ctx");
                let cont = self.here();
                for f in ctx.continue_fixups {
                    self.patch(f, cont);
                }
                self.ops.push(Op::ForLoop { base: ctrl, slot, to: body_top });
                let exit = self.here();
                for f in ctx.exit_fixups {
                    self.patch(f, exit);
                }
            }
            VmStyle::While => {
                // var = start; while in_range(var) { body; var += step } —
                // stop and step are RE-EVALUATED each iteration, the cost
                // signature of a `while` in the paper's measurement.
                self.expr(start, slot, tmp);
                let top = self.here();
                let cond = self.emit_in_range_check(slot, stop, step);
                let jz_idx = self.ops.len();
                self.ops.push(Op::JmpIfZero { r: cond, to: PENDING });
                self.loop_stack
                    .push(LoopCtx { continue_fixups: vec![], exit_fixups: vec![jz_idx] });
                self.compile_steps(pos + 1);
                let ctx = self.loop_stack.pop().expect("ctx");
                let cont = self.here();
                for f in ctx.continue_fixups {
                    self.patch(f, cont);
                }
                // var += step (re-evaluate step).
                self.expr(step, tmp, tmp + 1);
                self.ops.push(Op::Bin { op: IntBinOp::Add, dst: slot, a: slot, b: tmp });
                self.ops.push(Op::Jmp { to: top });
                let exit = self.here();
                for f in ctx.exit_fixups {
                    self.patch(f, exit);
                }
            }
            VmStyle::RepeatUntil => {
                // var = start; if !in_range(var) goto exit;
                // repeat { body; var += step } until !in_range(var)
                self.expr(start, slot, tmp);
                let cond = self.emit_in_range_check(slot, stop, step);
                let jz_idx = self.ops.len();
                self.ops.push(Op::JmpIfZero { r: cond, to: PENDING });
                let body_top = self.here();
                self.loop_stack
                    .push(LoopCtx { continue_fixups: vec![], exit_fixups: vec![jz_idx] });
                self.compile_steps(pos + 1);
                let ctx = self.loop_stack.pop().expect("ctx");
                let cont = self.here();
                for f in ctx.continue_fixups {
                    self.patch(f, cont);
                }
                self.expr(step, tmp, tmp + 1);
                self.ops.push(Op::Bin { op: IntBinOp::Add, dst: slot, a: slot, b: tmp });
                let cond = self.emit_in_range_check(slot, stop, step);
                self.ops.push(Op::JmpIfNonZero { r: cond, to: body_top });
                let exit = self.here();
                for f in ctx.exit_fixups {
                    self.patch(f, exit);
                }
            }
        }
    }

    /// Emit `(step > 0 && var < stop) || (step < 0 && var > stop)` handling
    /// dynamic step signs; returns the register holding the 0/1 result.
    fn emit_in_range_check(&mut self, var: u16, stop: &IntExpr, step: &IntExpr) -> u16 {
        let tmp = self.temp_base;
        let (r_stop, r_step, r_zero, r_c1, r_c2, r_res) =
            (tmp, tmp + 1, tmp + 2, tmp + 3, tmp + 4, tmp + 5);
        self.touch(r_res + 1);
        self.expr(stop, r_stop, r_res + 1);
        self.expr(step, r_step, r_res + 1);
        // Fast path for the overwhelmingly common case of a constant,
        // positive step: a single comparison, like real generated code.
        if let Some(k) = step.as_const() {
            if k > 0 {
                self.ops.push(Op::Bin { op: IntBinOp::Lt, dst: r_res, a: var, b: r_stop });
                return r_res;
            }
            if k < 0 {
                self.ops.push(Op::Bin { op: IntBinOp::Gt, dst: r_res, a: var, b: r_stop });
                return r_res;
            }
        }
        self.ops.push(Op::LoadK { dst: r_zero, k: 0 });
        // c1 = step > 0 && var < stop  (bitwise-style: both are 0/1, use Mul)
        self.ops.push(Op::Bin { op: IntBinOp::Gt, dst: r_c1, a: r_step, b: r_zero });
        self.ops.push(Op::Bin { op: IntBinOp::Lt, dst: r_c2, a: var, b: r_stop });
        self.ops.push(Op::Bin { op: IntBinOp::Mul, dst: r_c1, a: r_c1, b: r_c2 });
        // c2 = step < 0 && var > stop
        self.ops.push(Op::Bin { op: IntBinOp::Lt, dst: r_res, a: r_step, b: r_zero });
        self.ops.push(Op::Bin { op: IntBinOp::Gt, dst: r_c2, a: var, b: r_stop });
        self.ops.push(Op::Bin { op: IntBinOp::Mul, dst: r_res, a: r_res, b: r_c2 });
        // res = c1 | c2 (sum of disjoint 0/1 flags)
        self.ops.push(Op::Bin { op: IntBinOp::Add, dst: r_res, a: r_res, b: r_c1 });
        r_res
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beast_core::constraint::ConstraintClass;
    use beast_core::expr::{min2, var};
    use beast_core::plan::{Plan, PlanOptions};
    use beast_core::space::Space;
    use beast_core::value::Value;

    use crate::visit::{CollectVisitor, CountVisitor};

    fn lowered(space: &std::sync::Arc<Space>) -> LoweredPlan {
        let plan = Plan::new(space, PlanOptions::default()).unwrap();
        LoweredPlan::new(&plan).unwrap()
    }

    fn mini_space() -> std::sync::Arc<Space> {
        Space::builder("mini")
            .constant("cap", 20)
            .range("a", 1, 5)
            .range_step("b", var("a"), 13, var("a"))
            .derived("ab", var("a") * var("b"))
            .constraint("over", ConstraintClass::Hard, var("ab").gt(var("cap")))
            .build()
            .unwrap()
    }

    #[test]
    fn all_styles_agree() {
        let space = mini_space();
        let lp = lowered(&space);
        let mut results = Vec::new();
        for style in [VmStyle::NumericFor, VmStyle::While, VmStyle::RepeatUntil] {
            let vm = Vm::compile(&lp, style);
            let out = vm
                .run(CollectVisitor::new(vm.point_names().clone(), 10_000))
                .unwrap();
            let pts: Vec<(i64, i64, i64)> = out
                .visitor
                .points
                .iter()
                .map(|p| (p.get_int("a"), p.get_int("b"), p.get_int("ab")))
                .collect();
            results.push((out.stats, pts));
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2]);
        assert!(!results[0].1.is_empty());
    }

    #[test]
    fn matches_brute_force() {
        let space = mini_space();
        let lp = lowered(&space);
        let vm = Vm::compile(&lp, VmStyle::NumericFor);
        let out = vm.run(CountVisitor::default()).unwrap();
        let mut expected = 0u64;
        for a in 1..5i64 {
            let mut b = a;
            while b < 13 {
                if a * b <= 20 {
                    expected += 1;
                }
                b += a;
            }
        }
        assert_eq!(out.visitor.count, expected);
    }

    #[test]
    fn empty_ranges_run_zero_times() {
        let space = Space::builder("empty")
            .range("x", 5, 5)
            .build()
            .unwrap();
        let lp = lowered(&space);
        for style in [VmStyle::NumericFor, VmStyle::While, VmStyle::RepeatUntil] {
            let vm = Vm::compile(&lp, style);
            let out = vm.run(CountVisitor::default()).unwrap();
            assert_eq!(out.visitor.count, 0, "style {style:?}");
        }
    }

    #[test]
    fn negative_steps() {
        let space = Space::builder("down")
            .range_step("x", 9, 0, -3)
            .build()
            .unwrap();
        let lp = lowered(&space);
        for style in [VmStyle::NumericFor, VmStyle::While, VmStyle::RepeatUntil] {
            let vm = Vm::compile(&lp, style);
            let out = vm
                .run(CollectVisitor::new(vm.point_names().clone(), 10))
                .unwrap();
            let xs: Vec<i64> = out.visitor.points.iter().map(|p| p.get_int("x")).collect();
            assert_eq!(xs, vec![9, 6, 3], "style {style:?}");
        }
    }

    #[test]
    fn list_iterators() {
        let space = Space::builder("list")
            .list("x", [2i64, 7, 1])
            .build()
            .unwrap();
        let lp = lowered(&space);
        let vm = Vm::compile(&lp, VmStyle::NumericFor);
        let out = vm
            .run(CollectVisitor::new(vm.point_names().clone(), 10))
            .unwrap();
        let xs: Vec<i64> = out.visitor.points.iter().map(|p| p.get_int("x")).collect();
        assert_eq!(xs, vec![2, 7, 1]);
    }

    #[test]
    fn opaque_iterators_deriveds_constraints() {
        let space = Space::builder("opaque")
            .constant("cap", 6)
            .range("n", 1, 6)
            .deferred_iter("d", &["n"], |env| {
                let n = env.require_int("n")?;
                Ok(Realized::Range { start: n, stop: 0, step: -1 })
            })
            .derived_fn("dd", &["d"], |env| Ok(Value::Int(env.require_int("d")? * 2)))
            .constraint_fn("big", ConstraintClass::Soft, &["dd", "cap"], |env| {
                Ok(env.require_int("dd")? > env.require_int("cap")?)
            })
            .build()
            .unwrap();
        let lp = lowered(&space);
        let vm = Vm::compile(&lp, VmStyle::NumericFor);
        let out = vm.run(CountVisitor::default()).unwrap();
        // survivors: pairs (n, d) with d in n..1 and 2d <= 6.
        let mut expected = 0u64;
        for n in 1..6i64 {
            for d in (1..=n).rev() {
                if 2 * d <= 6 {
                    expected += 1;
                }
            }
        }
        assert_eq!(out.visitor.count, expected);
    }

    #[test]
    fn builtins_compile() {
        let space = Space::builder("builtins")
            .range("x", 1, 10)
            .derived("m", min2(var("x"), 5))
            .constraint("over", ConstraintClass::Generic, var("m").ge(5))
            .build()
            .unwrap();
        let lp = lowered(&space);
        let vm = Vm::compile(&lp, VmStyle::NumericFor);
        let out = vm.run(CountVisitor::default()).unwrap();
        // x in 1..10, keep min(x,5) < 5 → x in 1..=4.
        assert_eq!(out.visitor.count, 4);
    }

    #[test]
    fn short_circuit_logic_compiles() {
        // x != 0 && 12 % x == 0 — division by zero must not happen at x=0.
        let space = Space::builder("sc")
            .range("x", 0, 13)
            .constraint(
                "not_divisor",
                ConstraintClass::Generic,
                var("x").ne(0).and((twelve() % var("x")).eq(0)).not(),
            )
            .build()
            .unwrap();
        fn twelve() -> beast_core::expr::E {
            beast_core::expr::lit(12)
        }
        let lp = lowered(&space);
        let vm = Vm::compile(&lp, VmStyle::NumericFor);
        let out = vm.run(CountVisitor::default()).unwrap();
        // Divisors of 12 in 1..12: 1,2,3,4,6,12 → 6 survivors.
        assert_eq!(out.visitor.count, 6);
    }

    #[test]
    fn program_length_reasonable() {
        let space = mini_space();
        let lp = lowered(&space);
        let vm = Vm::compile(&lp, VmStyle::NumericFor);
        assert!(vm.len() > 5);
        assert!(!vm.is_empty());
    }
}
