//! Vendored, std-only stand-in for the subset of the `criterion` 0.5 API
//! used by this workspace's benchmarks.
//!
//! The build environment has no access to crates.io, so the real `criterion`
//! crate can never resolve. This shim keeps every bench target source- and
//! CLI-compatible at the surface the workspace uses — `criterion_group!`,
//! `criterion_main!`, [`Criterion::benchmark_group`], `sample_size`,
//! `throughput`, `bench_function`, `bench_with_input`, [`Bencher::iter`],
//! [`black_box`] — while measuring with plain [`std::time::Instant`].
//!
//! Reported numbers are the minimum / median / mean over the sample set,
//! plus a throughput rate when [`Throughput`] was declared. There is no
//! statistical outlier analysis and no HTML report; the point is that
//! `cargo bench` runs and prints comparable wall-clock numbers without any
//! external dependency.
//!
//! When the harness detects that it is being run by `cargo test` (via the
//! `--test` flag libtest-style harnesses receive), every benchmark executes
//! exactly once so test runs stay fast.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work; forwards to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared work per iteration, used to derive a rate next to raw times.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    /// Parameter-only id, for groups whose benchmarks differ only in input.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Top-level benchmark driver; one per bench target.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // `cargo test` runs harness=false bench binaries with `--test`;
        // `cargo bench` passes `--bench`. Run one iteration in test mode.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            throughput: None,
            test_mode: self.test_mode,
            _criterion: self,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let test_mode = self.test_mode;
        run_one("", &id.into().id, 20, None, test_mode, &mut f);
        self
    }
}

/// A group of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    test_mode: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (minimum 1).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration work so a rate is printed next to times.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; this shim runs a fixed sample count
    /// rather than a time budget, so the duration is ignored.
    pub fn measurement_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &self.name,
            &id.into().id,
            self.sample_size,
            self.throughput,
            self.test_mode,
            &mut f,
        );
        self
    }

    /// Benchmark a closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &self.name,
            &id.into().id,
            self.sample_size,
            self.throughput,
            self.test_mode,
            &mut |b| f(b, input),
        );
        self
    }

    /// End the group (prints nothing extra; provided for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; [`Bencher::iter`] runs and times the
/// workload.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`, once per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        self.samples.clear();
        self.samples.reserve(self.sample_size);
        // One untimed warmup pass.
        black_box(f());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

fn run_one(
    group: &str,
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    test_mode: bool,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let label = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size: if test_mode { 1 } else { sample_size },
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<40} (no samples: bencher.iter was never called)");
        return;
    }
    if test_mode {
        println!("{label:<40} ok (test mode, 1 iteration)");
        return;
    }
    let mut sorted = b.samples.clone();
    sorted.sort();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => {
            format!("  {:>10.2} Melem/s", n as f64 / median.as_secs_f64() / 1e6)
        }
        Throughput::Bytes(n) => {
            format!("  {:>10.2} MiB/s", n as f64 / median.as_secs_f64() / (1024.0 * 1024.0))
        }
    });
    println!(
        "{label:<40} min {:>12?}  median {:>12?}  mean {:>12?}{}",
        min,
        median,
        mean,
        rate.unwrap_or_default()
    );
}

/// Bundle benchmark functions into a named group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("walker", 3).id, "walker/3");
        assert_eq!(BenchmarkId::from_parameter(8).id, "8");
    }

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion { test_mode: false };
        let mut group = c.benchmark_group("shim");
        group.sample_size(3).throughput(Throughput::Elements(10));
        let mut ran = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            });
        });
        group.finish();
        // 3 timed samples + 1 warmup.
        assert_eq!(ran, 4);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion { test_mode: true };
        let mut ran = 0usize;
        c.bench_function("once", |b| {
            b.iter(|| {
                ran += 1;
            });
        });
        // warmup + 1 sample.
        assert_eq!(ran, 2);
    }
}
