//! # beast — search-space generation and pruning for autotuners
//!
//! A Rust reproduction of *"Search Space Generation and Pruning System for
//! Autotuners"* (Luszczek, Gates, Kurzak, Danalis, Dongarra — IPDPSW 2016),
//! the search-space subsystem of the BEAST autotuning project.
//!
//! The facade re-exports the workspace crates:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `beast-core` | the declarative space DSL: iterators, derived variables, constraints, dependency DAG, loop-nest planning, integer IR |
//! | [`engine`] | `beast-engine` | evaluation backends: AST walker (Python cost model), bytecode VM (Lua cost model), compiled (generated-C cost model), multithreaded driver |
//! | [`codegen`] | `beast-codegen` | source generation to C, Rust, Python, Lua, Fortran and Java, with compile-and-run cross-checking |
//! | [`cuda`] | `beast-cuda` | device model: properties, compute-capability tables, occupancy |
//! | [`gpu_sim`] | `beast-gpu-sim` | functional tiled-GEMM simulator + analytic performance model |
//! | [`gemm`] | `beast-gemm` | the paper's model problem: the 15-dimensional GEMM space with 12 constraints |
//! | [`kernels`] | `beast-kernels` | real CPU substrates (blocked GEMM, batched Cholesky/TRSM) autotuned end-to-end |
//! | [`search`] | `beast-search` | statistical search: constraint-respecting sampling, random search, hill climbing, annealing |
//!
//! ## Quickstart
//!
//! ```
//! use beast::prelude::*;
//!
//! // Describe the space declaratively (Section V/VI of the paper).
//! let space = Space::builder("demo")
//!     .constant("max_threads", 1024)
//!     .range("dim_m", 1, 65)
//!     .range("dim_n", 1, 65)
//!     .range_step("blk_m", var("dim_m"), 129, var("dim_m"))
//!     .derived("threads", var("dim_m") * var("dim_n"))
//!     .constraint(
//!         "over_max_threads",
//!         ConstraintClass::Hard,
//!         var("threads").gt(var("max_threads")),
//!     )
//!     .constraint(
//!         "partial_warps",
//!         ConstraintClass::Soft,
//!         (var("threads") % 32).ne(0),
//!     )
//!     .build()
//!     .unwrap();
//!
//! // Plan (DAG-ordered loops, hoisted constraints), lower, evaluate.
//! let plan = Plan::new(&space, PlanOptions::default()).unwrap();
//! let lowered = LoweredPlan::new(&plan).unwrap();
//! let out = Compiled::new(lowered).run(CountVisitor::default()).unwrap();
//! assert!(out.visitor.count > 0);
//! ```

#![warn(missing_docs)]

pub use beast_codegen as codegen;
pub use beast_core as core;
pub use beast_cuda as cuda;
pub use beast_engine as engine;
pub use beast_gemm as gemm;
pub use beast_gpu_sim as gpu_sim;
pub use beast_kernels as kernels;
pub use beast_search as search;

/// One-stop imports for typical use.
pub mod prelude {
    pub use beast_core::prelude::*;
    pub use beast_engine::prelude::*;
}
