//! Closure (generator) iterators with internal state — the paper's prime
//! and Fibonacci examples (Figs. 3 and 6), applied to the use case the
//! paper names: "autotuning an FFT implementation for hard-to-optimize
//! problem sizes" (prime sizes force Rader's algorithm).
//!
//! ```sh
//! cargo run --release --example closure_iterators
//! ```

use beast::prelude::*;
use std::sync::Arc;

fn main() {
    // Fig. 3: a stateful prime generator — the iterator remembers the primes
    // found so far between yields.
    let space = Space::builder("fft_prime_sizes")
        .constant("max_size", 200)
        .closure_iter("size", &["max_size"], |env| {
            let max = env.require_int("max_size").unwrap_or(0);
            let mut old_primes: Vec<i64> = Vec::new();
            let mut n = 1i64;
            std::iter::from_fn(move || loop {
                n += 1;
                if n > max {
                    return None;
                }
                if old_primes.iter().all(|p| n % p != 0) {
                    old_primes.push(n);
                    return Some(Value::Int(n));
                }
            })
        })
        // Radix choices for the surrounding mixed-radix stages.
        .list("radix", [2i64, 4, 8])
        // Rader's algorithm maps a prime-size FFT to a (size-1) convolution;
        // prefer sizes where size-1 is divisible by the radix.
        .derived("rader_len", var("size") - 1)
        .constraint(
            "radix_mismatch",
            ConstraintClass::Soft,
            (var("rader_len") % var("radix")).ne(0),
        )
        .build()
        .expect("space builds");

    let plan = Plan::new(&space, PlanOptions::default()).expect("plan");
    // Closure iterators are opaque to the source generators but run in
    // every engine; use the walker here.
    let walker = Walker::new(&plan, LoopStyle::RangeLazy);
    let out = walker
        .run(CollectVisitor::new(walker.point_names().clone(), 1000))
        .expect("sweep");

    println!("{}", out.stats.render_funnel(&space));
    println!("prime FFT sizes with a matching Rader radix:");
    let mut by_radix: std::collections::BTreeMap<i64, Vec<i64>> = Default::default();
    for p in &out.visitor.points {
        by_radix.entry(p.get_int("radix")).or_default().push(p.get_int("size"));
    }
    for (radix, sizes) in by_radix {
        let shown: Vec<String> = sizes.iter().take(12).map(|s| s.to_string()).collect();
        println!("  radix {radix}: {} ...", shown.join(", "));
    }

    // Fig. 6: the Fibonacci closure, for comparison.
    let fib = Space::builder("fibonacci")
        .constant("max", 1000)
        .closure_iter("f", &["max"], |env| {
            let max = env.require_int("max").unwrap_or(0);
            let (mut k, mut n) = (1i64, 1i64);
            std::iter::from_fn(move || {
                if n > max {
                    return None;
                }
                let out = n;
                let next = n + k;
                k = n;
                n = next;
                Some(Value::Int(out))
            })
        })
        .build()
        .unwrap();
    let plan = Plan::new(&fib, PlanOptions::default()).unwrap();
    let walker = Walker::new(&plan, LoopStyle::RangeLazy);
    let out = walker
        .run(CollectVisitor::new(walker.point_names().clone(), 100))
        .unwrap();
    let fibs: Vec<i64> = out.visitor.points.iter().map(|p| p.get_int("f")).collect();
    println!("\nFibonacci numbers up to 1000 (Fig. 6): {fibs:?}");

    let _: Arc<Space> = fib; // spaces are shared, cheaply clonable handles
}
