//! Statistical search over the GEMM space — the paper's announced future
//! work (Section XII), implemented: compare exhaustive enumeration against
//! random search, hill climbing and simulated annealing at a fixed
//! evaluation budget.
//!
//! ```sh
//! cargo run --release --example statistical_search [max_dim] [budget] [rejection|direct]
//! ```

use beast::prelude::*;
use beast::search::{
    hill_climb, random_search, simulated_annealing, SamplerKind, SearchBudget,
};
use beast_gemm::{build_gemm_space, pointref_to_config, tune_gemm, GemmSpaceParams};
use beast_gpu_sim::estimate;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let max_dim: i64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(32);
    let evaluations: usize =
        std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(300);
    let sampler = match std::env::args().nth(3).as_deref() {
        Some("direct") => SamplerKind::Direct,
        _ => SamplerKind::Rejection,
    };

    let params = GemmSpaceParams::reduced(max_dim);
    let space = build_gemm_space(&params).expect("space builds");
    let plan = Plan::new(&space, PlanOptions::default()).expect("plan");
    let lp = LoweredPlan::new(&plan).expect("lowering");

    // Exhaustive reference (the paper's approach).
    let t0 = std::time::Instant::now();
    let exhaustive = tune_gemm(&params, 1, 4).expect("exhaustive sweep");
    let exhaustive_best = exhaustive.best[0].perf.gflops;
    println!(
        "exhaustive: {} survivors, best {exhaustive_best:.1} GFLOP/s in {:.2?}\n",
        exhaustive.survivors,
        t0.elapsed()
    );

    let device = params.device.clone();
    let cc = params.cc();
    let precision = params.precision;
    let score = move |p: &Point| {
        let names: Vec<std::sync::Arc<str>> = p.names().to_vec();
        let slots: Vec<i64> =
            p.values().iter().map(|v| v.as_int().expect("ints")).collect();
        let view = PointRef::Slots { names: &names, slots: &slots };
        estimate(&device, &cc, &pointref_to_config(&view), precision).gflops
    };

    let budget = SearchBudget { evaluations, attempts_per_sample: 100_000, sampler };
    println!(
        "{:<22} {:>10} {:>14} {:>10}",
        "method", "evals", "best GFLOP/s", "vs exh."
    );
    let report = |name: &str, out: &beast::search::SearchOutcome| {
        println!(
            "{:<22} {:>10} {:>14.1} {:>9.1}%",
            name,
            out.evaluations,
            out.best_score(),
            100.0 * out.best_score() / exhaustive_best
        );
    };
    println!(
        "{:<22} {:>10} {:>14.1} {:>9.1}%",
        "exhaustive (all)", exhaustive.survivors, exhaustive_best, 100.0
    );

    let out = random_search(&lp, StdRng::seed_from_u64(1), budget, score.clone()).unwrap();
    report("random search", &out);
    let out = hill_climb(&lp, StdRng::seed_from_u64(1), budget, 25, score.clone()).unwrap();
    report("hill climbing", &out);
    let out = simulated_annealing(
        &lp,
        StdRng::seed_from_u64(1),
        budget,
        exhaustive_best / 10.0,
        0.995,
        score,
    )
    .unwrap();
    report("simulated annealing", &out);
}
