//! Autotune the batched Cholesky substrate (the Table I workload) on this
//! machine: enumerate execution strategies with a BEAST space, time every
//! surviving configuration on a real batch, and compare the winner with the
//! library-style baseline.
//!
//! ```sh
//! cargo run --release --example batched_cholesky [n] [count]
//! ```

use std::time::Instant;

use beast_kernels::{
    autotune, batched_cholesky, batched_cholesky_space, cholesky_interleaved,
    point_to_batch_params, BatchParams, BatchStrategy, Dense, GemmParams, InterleavedBatch,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(24);
    let count: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(512);

    let mut rng = StdRng::seed_from_u64(42);
    let mats: Vec<Dense> = (0..count).map(|_| Dense::random_spd(n, &mut rng)).collect();
    let gemm = GemmParams::default_params();
    println!("workload: {count} SPD matrices of order {n}");

    // Library-style baseline: a blocked kernel configured for large
    // matrices, applied one matrix at a time.
    let baseline_params = BatchParams {
        strategy: BatchStrategy::PerMatrixBlocked { block: 64 },
        threads: 1,
        chunk: 1,
    };
    let mut work = mats.clone();
    let t0 = Instant::now();
    batched_cholesky(&mut work, &baseline_params, &gemm).expect("baseline factors");
    let baseline = t0.elapsed();
    println!("baseline (library-style blocked, per matrix): {baseline:.2?}");

    // The BEAST space over execution strategies.
    let space = batched_cholesky_space(n as i64, count as i64, 1).expect("space");
    println!(
        "search space: {} strategies after pruning duplicates",
        space.iters().len()
    );

    let outcome = autotune(&space, 256, 3, |point| {
        let params = point_to_batch_params(point);
        match params.strategy {
            BatchStrategy::Interleaved { width } => {
                // Batch-resident layout: conversion outside the timed region
                // (see EXPERIMENTS.md for the rationale).
                let mut packs: Vec<InterleavedBatch> =
                    mats.chunks(width.max(1)).map(InterleavedBatch::pack).collect();
                let t0 = Instant::now();
                for p in &mut packs {
                    cholesky_interleaved(p).expect("spd");
                }
                t0.elapsed()
            }
            _ => {
                let mut work = mats.clone();
                let t0 = Instant::now();
                batched_cholesky(&mut work, &params, &gemm).expect("spd");
                t0.elapsed()
            }
        }
    })
    .expect("autotune");

    println!("\ntimed {} surviving configurations; top five:", outcome.timed.len());
    for t in outcome.timed.iter().take(5) {
        let params = point_to_batch_params(&t.point);
        println!("  {:>10.2?}  {:?}", t.duration, params.strategy);
    }
    let best = outcome.best().expect("survivors");
    let speedup = baseline.as_secs_f64() / best.duration.as_secs_f64();
    println!(
        "\ntuned: {:.2?} → {:.2}x over the library-style baseline",
        best.duration, speedup
    );
}
