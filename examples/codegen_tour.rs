//! Tour of the translation system: one space, six languages, one canonical
//! output — and a live cross-check against every toolchain installed on
//! this machine.
//!
//! ```sh
//! cargo run --release --example codegen_tour
//! ```

use beast::codegen::{all_backends, all_toolchains, generate, ToolchainResult};
use beast::prelude::*;

fn main() {
    let space = Space::builder("tour")
        .constant("budget", 64)
        .range("a", 1, 13)
        .range_step("b", var("a"), 49, var("a"))
        .derived("ab", var("a") * var("b"))
        .derived(
            "weight",
            ternary(var("ab").gt(24), var("ab") - 24, var("ab")),
        )
        .constraint("over_budget", ConstraintClass::Hard, var("weight").gt(var("budget")))
        .constraint(
            "odd_b",
            ConstraintClass::Soft,
            var("a").ne(1).and((var("b") % 2).ne(0)),
        )
        .build()
        .expect("space builds");

    let plan = Plan::new(&space, PlanOptions::default()).expect("plan");
    let lowered = LoweredPlan::new(&plan).expect("lowering");

    // Ground truth from the in-process compiled engine.
    let compiled = Compiled::new(lowered.clone());
    let truth = compiled.run(CountVisitor::default()).expect("sweep");
    println!(
        "in-process engine: {} survivors, {} pruned\n",
        truth.visitor.count,
        truth.stats.total_pruned()
    );

    let program = beast::codegen::Program::from_lowered(&lowered).expect("translatable");
    let lowered_prog = beast::codegen::lower(&program);

    for (backend, toolchain) in all_backends().iter().zip(all_toolchains()) {
        let source = generate(&lowered, backend.as_ref()).unwrap();
        println!(
            "--- {} ({} lines) ---",
            backend.language(),
            source.lines().count()
        );
        match beast::codegen::generate_and_run(backend.as_ref(), &toolchain, &lowered_prog) {
            ToolchainResult::Ran { counts, .. } => {
                assert_eq!(counts.survivors, truth.visitor.count);
                println!(
                    "    ran: survivors={} checksum={}  ✓ matches the engine",
                    counts.survivors, counts.checksum
                );
            }
            ToolchainResult::Unavailable(tool) => {
                println!("    (not run: {tool} not installed)");
            }
            ToolchainResult::Failed { stage, detail } => {
                panic!("{} failed at {stage}: {detail}", backend.language());
            }
        }
    }
}
