//! Quickstart: describe a search space declaratively, prune it, and inspect
//! the survivors and the pruning funnel.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use beast::prelude::*;

fn main() {
    // A miniature GPU-flavored space: a thread grid, a tile size that must
    // be a multiple of the grid, and classic hard/soft constraints
    // (Sections V–VI of the paper).
    let space = Space::builder("quickstart")
        .constant("max_threads", 256)
        .constant("warp", 32)
        .range("dim_m", 1, 33)
        .range("dim_n", 1, 33)
        .range_step("blk_m", var("dim_m"), 129, var("dim_m"))
        .derived("threads", var("dim_m") * var("dim_n"))
        .derived("thr_m", var("blk_m") / var("dim_m"))
        .constraint(
            "over_max_threads",
            ConstraintClass::Hard,
            var("threads").gt(var("max_threads")),
        )
        .constraint(
            "partial_warps",
            ConstraintClass::Soft,
            (var("threads") % var("warp")).ne(0),
        )
        .constraint(
            "tiny_tile",
            ConstraintClass::Soft,
            var("thr_m").lt(2),
        )
        .build()
        .expect("space is well-formed");

    // The dependency DAG orders the loops and hoists each constraint to the
    // earliest loop where its inputs are bound (Section X).
    let plan = Plan::new(&space, PlanOptions::default()).expect("plan");
    println!("generated loop nest:\n{}", plan.render());

    // Lower to the integer IR and run the compiled engine.
    let lowered = LoweredPlan::new(&plan).expect("lowering");
    let compiled = Compiled::new(lowered);
    let out = compiled
        .run(CollectVisitor::new(compiled.point_names().clone(), 5))
        .expect("sweep");

    println!("{}", out.stats.render_funnel(&space));
    println!("first surviving points:");
    for p in &out.visitor.points {
        println!("  {p}");
    }

    // The same space, translated to standard C (the paper's Section I
    // pipeline) — print the first lines.
    let plan = Plan::new(&space, PlanOptions::default()).unwrap();
    let lowered = LoweredPlan::new(&plan).unwrap();
    let c_source = beast::codegen::generate(&lowered, &beast::codegen::CBackend)
        .expect("expression-only spaces translate");
    println!("\ngenerated C (first 12 lines):");
    for line in c_source.lines().take(12) {
        println!("  {line}");
    }
}
