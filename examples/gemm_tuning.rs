//! The paper's model problem end-to-end: build the 15-dimensional GEMM
//! search space (Figs. 10–15), sweep it with the multithreaded compiled
//! engine, score survivors with the analytic Kepler performance model, and
//! numerically verify the winner with the functional kernel simulator.
//!
//! ```sh
//! cargo run --release --example gemm_tuning [max_dim]
//! ```

use beast_gemm::{build_gemm_space, tune_gemm, verify_config, GemmSpaceParams};
use beast_gpu_sim::Transpose;

fn main() {
    let max_dim: i64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(48);

    let params = GemmSpaceParams::reduced(max_dim);
    let space = build_gemm_space(&params).expect("space builds");
    println!(
        "space `{}`: {} iterators, {} derived variables, {} constraints",
        space.name(),
        space.iters().len(),
        space.deriveds().len(),
        space.constraints().len()
    );

    let t0 = std::time::Instant::now();
    let outcome = tune_gemm(&params, 5, 4).expect("tuning sweep");
    println!(
        "\nswept {} survivors in {:.2?}; pruning removed {:.1}% of evaluated tuples\n",
        outcome.survivors,
        t0.elapsed(),
        100.0 * outcome.stats.pruned_fraction()
    );

    println!("top configurations (analytic model, Tesla K40c-derived):");
    for (rank, kernel) in outcome.best.iter().enumerate() {
        println!(
            "  #{rank}: {:>7.1} GFLOP/s ({:>4.1}% of {:.0} peak)  occ {:.2}  \
             dim {}x{} blk {}x{}x{} vec {}",
            kernel.perf.gflops,
            100.0 * kernel.perf.fraction_of_peak,
            outcome.peak_gflops,
            kernel.perf.occupancy,
            kernel.config.dim_m,
            kernel.config.dim_n,
            kernel.config.blk_m,
            kernel.config.blk_n,
            kernel.config.blk_k,
            kernel.config.dim_vec,
        );
    }

    if let Some(best) = outcome.best.first() {
        let err = verify_config(&best.config, Transpose::default());
        println!(
            "\nwinner simulated against the reference GEMM: max error {err:.2e} \
             ({} correctness constraints really held)",
            space
                .constraints()
                .iter()
                .filter(|c| c.class == beast::prelude::ConstraintClass::Correctness)
                .count()
        );
        assert!(err < 1e-10);
    }
}
